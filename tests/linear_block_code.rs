//! Cross-code property tests for the `LinearBlockCode` abstraction layer.
//!
//! Every property here is asserted for all three code families (SEC Hamming,
//! SEC-DED extended Hamming, DEC BCH) *through the trait*, so a new
//! implementation that violates the layer's contract fails these tests
//! before it ever reaches an experiment. Includes the determinism check that
//! `harp_sim::runner::parallel_map` matches the sequential path when driving
//! whole campaigns.

use std::collections::BTreeSet;

use proptest::prelude::*;

use harp_bch::BchCode;
use harp_ecc::analysis::{classify_decode, FailureDependence, GroundTruth};
use harp_ecc::{DecodeOutcome, ErrorSpace, ExtendedHammingCode, HammingCode, LinearBlockCode};
use harp_gf2::BitVec;
use harp_memsim::pattern::DataPattern;
use harp_memsim::FaultModel;
use harp_profiler::{ProfilerKind, ProfilingCampaign};

/// The three shipped implementations, boxed behind the trait.
fn all_codes(data_bits: usize, seed: u64) -> Vec<Box<dyn LinearBlockCode>> {
    vec![
        Box::new(HammingCode::random(data_bits, seed).expect("valid Hamming code")),
        Box::new(ExtendedHammingCode::random(data_bits, seed).expect("valid SEC-DED code")),
        Box::new(BchCode::dec(data_bits).expect("valid BCH code")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode → decode round-trips cleanly for every code family.
    #[test]
    fn encode_decode_round_trip_across_codes(
        seed in 0u64..200,
        data_value in any::<u64>(),
    ) {
        for code in all_codes(32, seed) {
            let data = BitVec::from_u64(32, data_value & 0xFFFF_FFFF);
            let result = code.decode(&code.encode(&data));
            prop_assert_eq!(&result.dataword, &data, "{}", code.description());
            prop_assert_eq!(&result.outcome, &DecodeOutcome::NoErrorDetected);
            prop_assert!(result.syndrome.is_zero());
        }
    }

    /// Valid codewords have zero syndrome through the kernel path, and the
    /// kernel agrees with the parity-check matrix on corrupted words.
    #[test]
    fn zero_syndrome_for_valid_codewords_across_codes(
        seed in 0u64..200,
        data_value in any::<u64>(),
        flip in 0usize..32,
    ) {
        for code in all_codes(32, seed) {
            let data = BitVec::from_u64(32, data_value & 0xFFFF_FFFF);
            let mut stored = code.encode(&data);
            prop_assert!(code.syndrome(&stored).is_zero(), "{}", code.description());
            stored.flip(flip);
            prop_assert_eq!(
                code.syndrome(&stored),
                code.parity_check_matrix().mul_vec(&stored)
            );
        }
    }

    /// Every code corrects any error of weight up to its stated capability.
    #[test]
    fn errors_within_capability_are_corrected(
        seed in 0u64..100,
        a in 0usize..32,
        b in 0usize..32,
    ) {
        for code in all_codes(32, seed) {
            let t = code.correction_capability();
            let data = BitVec::from_u64(32, 0xA5A5_5A5A);
            let positions: BTreeSet<usize> = [a, b].into_iter().take(t).collect();
            let error = BitVec::from_indices(
                code.codeword_len(),
                positions.iter().copied(),
            );
            let result = code.encode_corrupt_decode(&data, &error);
            prop_assert_eq!(&result.dataword, &data, "{}", code.description());
        }
    }

    /// Ground-truth classification agrees between Hamming and BCH accessed
    /// through the trait: a single raw error is a true correction for both,
    /// and classification never mislabels the injected pattern.
    #[test]
    fn direct_vs_indirect_classification_agreement(
        seed in 0u64..100,
        pos in 0usize..32,
    ) {
        let hamming = HammingCode::random(32, seed).unwrap();
        let bch = BchCode::dec(32).unwrap();
        let data = BitVec::ones(32);
        for code in [&hamming as &dyn LinearBlockCode, &bch as &dyn LinearBlockCode] {
            let raw = BitVec::from_indices(code.codeword_len(), [pos]);
            let result = code.encode_corrupt_decode(&data, &raw);
            prop_assert_eq!(
                classify_decode(code, &raw, &result),
                GroundTruth::CorrectedTrue { positions: vec![pos] },
                "{}", code.description()
            );
        }
    }

    /// The enumerated error space is exact for every family: direct and
    /// indirect sets partition the post-correction set, and repairing the
    /// direct bits bounds residual simultaneous errors by the capability.
    #[test]
    fn error_space_invariants_hold_across_codes(
        seed in 0u64..60,
        at_risk in proptest::collection::btree_set(0usize..32, 2..5),
    ) {
        let positions: Vec<usize> = at_risk.iter().copied().collect();
        for code in all_codes(32, seed) {
            let space = ErrorSpace::enumerate(
                code.as_ref(),
                &positions,
                FailureDependence::TrueCell,
            );
            let union: BTreeSet<usize> = space
                .direct_at_risk()
                .union(space.indirect_at_risk())
                .copied()
                .collect();
            prop_assert!(space.post_correction_at_risk().is_subset(&union));
            let direct = space.direct_at_risk().clone();
            prop_assert!(
                space.max_simultaneous_errors_outside(&direct)
                    <= code.correction_capability(),
                "{}", code.description()
            );
        }
    }
}

/// The generic campaign path produces identical results whether the word
/// population is mapped sequentially or across worker threads.
#[test]
fn parallel_map_campaigns_match_sequential_path() {
    let codes: Vec<HammingCode> = (0..8)
        .map(|seed| HammingCode::random(64, seed).unwrap())
        .collect();
    let run_one = |code: &HammingCode| {
        let campaign = ProfilingCampaign::new(
            code.clone(),
            FaultModel::uniform(&[3, 19, 42], 0.5),
            DataPattern::Random,
            11,
        );
        campaign.run(ProfilerKind::HarpA, 24)
    };
    let sequential = harp_sim::runner::parallel_map(&codes, 1, run_one);
    let parallel = harp_sim::runner::parallel_map(&codes, 4, run_one);
    let oversubscribed = harp_sim::runner::parallel_map(&codes, 64, run_one);
    assert_eq!(sequential, parallel);
    assert_eq!(sequential, oversubscribed);
}

/// The same profiler lineup completes a campaign against each code family
/// and only ever reports genuinely at-risk bits.
#[test]
fn generic_campaign_reports_only_at_risk_bits_for_every_family() {
    let at_risk = [2usize, 9, 21];
    let hamming = HammingCode::random(32, 5).unwrap();
    let secded = ExtendedHammingCode::random(32, 5).unwrap();
    let bch = BchCode::dec(32).unwrap();

    fn check<C: LinearBlockCode + Clone + 'static>(code: C, at_risk: &[usize]) {
        let campaign = ProfilingCampaign::new(
            code,
            FaultModel::uniform(at_risk, 0.75),
            DataPattern::Random,
            13,
        );
        let space = campaign.error_space();
        for kind in ProfilerKind::ALL {
            let result = campaign.run(kind, 48);
            for bit in result.final_identified() {
                assert!(
                    space.post_correction_at_risk().contains(&bit)
                        || space.direct_at_risk().contains(&bit),
                    "{kind}: bit {bit} is not at risk"
                );
            }
        }
    }

    check(hamming, &at_risk);
    check(secded, &at_risk);
    check(bch, &at_risk);
}
