//! Cross-code property tests for the `LinearBlockCode` abstraction layer.
//!
//! Every property here is asserted for all three code families (SEC Hamming,
//! SEC-DED extended Hamming, DEC BCH) *through the trait*, so a new
//! implementation that violates the layer's contract fails these tests
//! before it ever reaches an experiment. Includes the determinism check that
//! `harp_sim::runner::parallel_map` matches the sequential path when driving
//! whole campaigns.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use harp_bch::BchCode;
use harp_ecc::analysis::{classify_decode, FailureDependence, GroundTruth};
use harp_ecc::{DecodeOutcome, ErrorSpace, ExtendedHammingCode, HammingCode, LinearBlockCode};
use harp_gf2::BitVec;
use harp_memsim::pattern::DataPattern;
use harp_memsim::{BurstScratch, FaultModel, MemoryChip, ReadObservation};
use harp_profiler::{ProfilerKind, ProfilingCampaign};

/// The three shipped implementations, boxed behind the trait.
fn all_codes(data_bits: usize, seed: u64) -> Vec<Box<dyn LinearBlockCode>> {
    vec![
        Box::new(HammingCode::random(data_bits, seed).expect("valid Hamming code")),
        Box::new(ExtendedHammingCode::random(data_bits, seed).expect("valid SEC-DED code")),
        Box::new(BchCode::dec(data_bits).expect("valid BCH code")),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encode → decode round-trips cleanly for every code family.
    #[test]
    fn encode_decode_round_trip_across_codes(
        seed in 0u64..200,
        data_value in any::<u64>(),
    ) {
        for code in all_codes(32, seed) {
            let data = BitVec::from_u64(32, data_value & 0xFFFF_FFFF);
            let result = code.decode(&code.encode(&data));
            prop_assert_eq!(&result.dataword, &data, "{}", code.description());
            prop_assert_eq!(&result.outcome, &DecodeOutcome::NoErrorDetected);
            prop_assert!(result.syndrome.is_zero());
        }
    }

    /// Valid codewords have zero syndrome through the kernel path, and the
    /// kernel agrees with the parity-check matrix on corrupted words.
    #[test]
    fn zero_syndrome_for_valid_codewords_across_codes(
        seed in 0u64..200,
        data_value in any::<u64>(),
        flip in 0usize..32,
    ) {
        for code in all_codes(32, seed) {
            let data = BitVec::from_u64(32, data_value & 0xFFFF_FFFF);
            let mut stored = code.encode(&data);
            prop_assert!(code.syndrome(&stored).is_zero(), "{}", code.description());
            stored.flip(flip);
            prop_assert_eq!(
                code.syndrome(&stored),
                code.parity_check_matrix().mul_vec(&stored)
            );
        }
    }

    /// Every code corrects any error of weight up to its stated capability.
    #[test]
    fn errors_within_capability_are_corrected(
        seed in 0u64..100,
        a in 0usize..32,
        b in 0usize..32,
    ) {
        for code in all_codes(32, seed) {
            let t = code.correction_capability();
            let data = BitVec::from_u64(32, 0xA5A5_5A5A);
            let positions: BTreeSet<usize> = [a, b].into_iter().take(t).collect();
            let error = BitVec::from_indices(
                code.codeword_len(),
                positions.iter().copied(),
            );
            let result = code.encode_corrupt_decode(&data, &error);
            prop_assert_eq!(&result.dataword, &data, "{}", code.description());
        }
    }

    /// Ground-truth classification agrees between Hamming and BCH accessed
    /// through the trait: a single raw error is a true correction for both,
    /// and classification never mislabels the injected pattern.
    #[test]
    fn direct_vs_indirect_classification_agreement(
        seed in 0u64..100,
        pos in 0usize..32,
    ) {
        let hamming = HammingCode::random(32, seed).unwrap();
        let bch = BchCode::dec(32).unwrap();
        let data = BitVec::ones(32);
        for code in [&hamming as &dyn LinearBlockCode, &bch as &dyn LinearBlockCode] {
            let raw = BitVec::from_indices(code.codeword_len(), [pos]);
            let result = code.encode_corrupt_decode(&data, &raw);
            prop_assert_eq!(
                classify_decode(code, &raw, &result),
                GroundTruth::CorrectedTrue { positions: vec![pos] },
                "{}", code.description()
            );
        }
    }

    /// Burst reads are byte-identical to a word-at-a-time `read` loop with
    /// the same RNG stream, for every code family. The seeded chip mixes
    /// clean words (all-zero syndromes), single-error words, and multi-error
    /// words (beyond each code's correction capability), so every decode
    /// outcome — no-error, true correction, miscorrection, and
    /// detected-uncorrectable — flows through the comparison.
    #[test]
    fn burst_reads_match_scalar_reads_across_codes(
        seed in 0u64..100,
        probability in proptest::sample::select(vec![0.5f64, 1.0]),
        heavy in proptest::collection::btree_set(0usize..38, 3..6),
    ) {
        for code in all_codes(32, seed) {
            let n = code.codeword_len();
            let mut chip = MemoryChip::new(&*code, 8);
            // Word 0 stays clean; the rest cover increasing error weights.
            chip.set_fault_model(1, FaultModel::uniform(&[n - 1], probability));
            chip.set_fault_model(2, FaultModel::uniform(&[0, 7], probability));
            chip.set_fault_model(3, FaultModel::uniform(&[1, 2, 3], probability));
            let heavy: Vec<usize> = heavy.iter().map(|&b| b % n).collect();
            chip.set_fault_model(4, FaultModel::uniform(&heavy, probability));
            chip.set_fault_model(6, FaultModel::uniform(&[5, n - 2], 1.0));
            for word in 0..8 {
                let data = BitVec::from_u64(32, 0xF0F1_2345u64.rotate_left(word as u32));
                chip.write(word as usize, &data);
            }

            let mut scalar_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB512);
            let scalar: Vec<ReadObservation> =
                (0..8).map(|w| chip.read(w, &mut scalar_rng)).collect();

            let mut burst_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB512);
            let mut scratch = BurstScratch::new();
            let burst = chip.read_burst(0..8, &mut burst_rng, &mut scratch);

            prop_assert_eq!(burst, scalar.as_slice(), "{}", code.description());
            // Clean word sanity: the all-zero-syndrome path is exercised.
            prop_assert_eq!(
                &burst[0].decode_result().outcome,
                &DecodeOutcome::NoErrorDetected
            );
        }
    }

    /// `decode_with_syndrome_into` (the allocation-free burst half) agrees
    /// exactly with the reference `decode` for every family — including when
    /// invoked repeatedly on one reused `DecodeResult`, which must never
    /// leak state from a previous decode.
    #[test]
    fn syndrome_resolution_matches_reference_decode(
        seed in 0u64..100,
        weights in proptest::collection::vec(0usize..4, 4),
    ) {
        for code in all_codes(32, seed) {
            let n = code.codeword_len();
            let mut reused = harp_ecc::DecodeResult::default();
            for (i, &weight) in weights.iter().enumerate() {
                let error = BitVec::from_indices(
                    n,
                    (0..weight).map(|e| (e * 11 + i * 7) % n),
                );
                let stored = &code.encode(&BitVec::from_u64(32, 0x5EED_0000 + i as u64)) ^ &error;
                let reference = code.decode(&stored);
                let syndrome_word = code.syndrome_kernel().syndrome_word(&stored);
                code.decode_with_syndrome_into(&stored, syndrome_word, &mut reused);
                prop_assert_eq!(&reused, &reference, "{} weight {}", code.description(), weight);
            }
        }
    }

    /// The enumerated error space is exact for every family: direct and
    /// indirect sets partition the post-correction set, and repairing the
    /// direct bits bounds residual simultaneous errors by the capability.
    #[test]
    fn error_space_invariants_hold_across_codes(
        seed in 0u64..60,
        at_risk in proptest::collection::btree_set(0usize..32, 2..5),
    ) {
        let positions: Vec<usize> = at_risk.iter().copied().collect();
        for code in all_codes(32, seed) {
            let space = ErrorSpace::enumerate(
                code.as_ref(),
                &positions,
                FailureDependence::TrueCell,
            );
            let union: BTreeSet<usize> = space
                .direct_at_risk()
                .union(space.indirect_at_risk())
                .copied()
                .collect();
            prop_assert!(space.post_correction_at_risk().is_subset(&union));
            let direct = space.direct_at_risk().clone();
            prop_assert!(
                space.max_simultaneous_errors_outside(&direct)
                    <= code.correction_capability(),
                "{}", code.description()
            );
        }
    }
}

/// A code that implements only the required `LinearBlockCode` methods, so
/// burst reads resolve syndromes through the trait's *default*
/// `decode_with_syndrome_into` (the allocating `decode` fallback). New code
/// implementations must be correct on the burst path before they override
/// the fast path; this wrapper proves the default keeps the equivalence.
#[derive(Debug, Clone)]
struct MinimalCode(HammingCode);

impl LinearBlockCode for MinimalCode {
    fn layout(&self) -> harp_ecc::WordLayout {
        self.0.layout()
    }
    fn correction_capability(&self) -> usize {
        self.0.correction_capability()
    }
    fn parity_check_matrix(&self) -> &harp_gf2::Gf2Matrix {
        self.0.parity_check_matrix()
    }
    fn parity_block(&self) -> &harp_gf2::Gf2Matrix {
        self.0.parity_block()
    }
    fn syndrome_kernel(&self) -> &harp_gf2::SyndromeKernel {
        self.0.syndrome_kernel()
    }
    fn decode(&self, stored: &BitVec) -> harp_ecc::DecodeResult {
        self.0.decode(stored)
    }
    fn description(&self) -> String {
        format!("minimal wrapper of {}", self.0.description())
    }
    // Deliberately no decode_with_syndrome_into override.
}

#[test]
fn burst_reads_through_the_default_decode_fallback_match_scalar_reads() {
    let code = MinimalCode(HammingCode::random(64, 41).unwrap());
    let mut chip = MemoryChip::new(code, 4);
    chip.set_fault_model(1, FaultModel::uniform(&[8], 1.0));
    chip.set_fault_model(2, FaultModel::uniform(&[3, 60], 1.0));
    for word in 0..4 {
        chip.write(word, &BitVec::ones(64));
    }
    let mut scalar_rng = ChaCha8Rng::seed_from_u64(77);
    let scalar: Vec<ReadObservation> = (0..4).map(|w| chip.read(w, &mut scalar_rng)).collect();
    let mut burst_rng = ChaCha8Rng::seed_from_u64(77);
    let mut scratch = BurstScratch::new();
    assert_eq!(
        chip.read_burst(0..4, &mut burst_rng, &mut scratch),
        scalar.as_slice()
    );
}

/// The generic campaign path produces identical results whether the word
/// population is mapped sequentially or across worker threads.
#[test]
fn parallel_map_campaigns_match_sequential_path() {
    let codes: Vec<HammingCode> = (0..8)
        .map(|seed| HammingCode::random(64, seed).unwrap())
        .collect();
    let run_one = |code: &HammingCode| {
        let campaign = ProfilingCampaign::new(
            code.clone(),
            FaultModel::uniform(&[3, 19, 42], 0.5),
            DataPattern::Random,
            11,
        );
        campaign.run(ProfilerKind::HarpA, 24)
    };
    let sequential = harp_sim::runner::parallel_map(&codes, 1, run_one);
    let parallel = harp_sim::runner::parallel_map(&codes, 4, run_one);
    let oversubscribed = harp_sim::runner::parallel_map(&codes, 64, run_one);
    assert_eq!(sequential, parallel);
    assert_eq!(sequential, oversubscribed);
}

/// The same profiler lineup completes a campaign against each code family
/// and only ever reports genuinely at-risk bits.
#[test]
fn generic_campaign_reports_only_at_risk_bits_for_every_family() {
    let at_risk = [2usize, 9, 21];
    let hamming = HammingCode::random(32, 5).unwrap();
    let secded = ExtendedHammingCode::random(32, 5).unwrap();
    let bch = BchCode::dec(32).unwrap();

    fn check<C: LinearBlockCode + Clone + Send + 'static>(code: C, at_risk: &[usize]) {
        let campaign = ProfilingCampaign::new(
            code,
            FaultModel::uniform(at_risk, 0.75),
            DataPattern::Random,
            13,
        );
        let space = campaign.error_space();
        for kind in ProfilerKind::ALL {
            let result = campaign.run(kind, 48);
            for bit in result.final_identified() {
                assert!(
                    space.post_correction_at_risk().contains(&bit)
                        || space.direct_at_risk().contains(&bit),
                    "{kind}: bit {bit} is not at risk"
                );
            }
        }
    }

    check(hamming, &at_risk);
    check(secded, &at_risk);
    check(bch, &at_risk);
}

/// The SEC/SEC-DED visibility asymmetry: the same weight-2 data error that
/// a plain Hamming code (sometimes visibly) miscorrects is *detected* by
/// its extended counterpart — for every pair, and through the same trait.
#[test]
fn weight_2_data_errors_miscorrect_under_sec_but_are_detected_under_sec_ded() {
    for seed in [3u64, 9, 27] {
        let inner = HammingCode::random(16, seed).unwrap();
        let extended = ExtendedHammingCode::from_hamming(inner.clone());
        let mut visible_miscorrections = 0usize;
        for i in 0..16 {
            for j in (i + 1)..16 {
                let sec =
                    inner.decode_error_pattern(&BitVec::from_indices(inner.codeword_len(), [i, j]));
                // SEC applies *some* correction or detects — and when the
                // correction lands on a third data bit it is data-visible.
                if let Some(m) = sec.outcome.corrected_position() {
                    if m < 16 && m != i && m != j {
                        visible_miscorrections += 1;
                    }
                }
                let secded = extended
                    .decode_error_pattern(&BitVec::from_indices(extended.codeword_len(), [i, j]));
                assert_eq!(
                    secded.outcome,
                    DecodeOutcome::DetectedUncorrectable,
                    "seed {seed}: SEC-DED must detect pair ({i}, {j})"
                );
            }
        }
        assert!(
            visible_miscorrections > 0,
            "seed {seed}: a random (21, 16) Hamming code should visibly miscorrect some pair"
        );
    }
}

/// `data_visible_equivalent` tells a Hamming code apart from its own
/// extended counterpart exactly at the weights where the SEC/SEC-DED
/// asymmetry is observable: they agree at weight 1 (both correct every
/// single error) and differ at weights 2 and 3.
#[test]
fn data_visible_equivalence_distinguishes_a_code_from_its_extension() {
    use harp_beer::{data_visible_equivalent, MiscorrectionProfile};
    for seed in [5u64, 14] {
        let inner = HammingCode::random(16, seed).unwrap();
        // Precondition: the inner code has at least one data-visible pair
        // miscorrection (which the extension turns into a detection).
        assert!(
            MiscorrectionProfile::from_code(&inner).miscorrecting_pair_count() > 0,
            "seed {seed}"
        );
        let extended = ExtendedHammingCode::from_hamming(inner.clone());
        assert!(data_visible_equivalent(&inner, &extended, 1), "seed {seed}");
        assert!(
            !data_visible_equivalent(&inner, &extended, 2),
            "seed {seed}"
        );
        assert!(
            !data_visible_equivalent(&inner, &extended, 3),
            "seed {seed}"
        );
    }
}
