//! Differential equivalence suite for cell-batched campaigns.
//!
//! `harp_profiler::CampaignBatch` scrubs every word of a sweep cell with one
//! multi-word burst per round; `ProfilingCampaign::run_profiler` is the
//! scalar reference that runs each word alone through one-word bursts. The
//! properties here prove the batched engine is a pure execution-plan change:
//! for **every profiler kind** and **every code family** (SEC Hamming,
//! SEC-DED extended Hamming, DEC BCH), batched per-round snapshots are
//! byte-identical to the scalar reference — including 1-word cells, cells
//! whose words carry heterogeneous fault models (different at-risk sets,
//! per-bit probabilities, and data-dependence behaviours), and words whose
//! cell membership changes.
//!
//! This layer is what makes hot-path rewrites of the campaign engine safe to
//! keep making: any future change that perturbs a single RNG draw, write
//! order, or snapshot breaks these tests before it reaches an experiment.

use proptest::prelude::*;

use harp_bch::BchCode;
use harp_ecc::analysis::FailureDependence;
use harp_ecc::{ExtendedHammingCode, HammingCode, LinearBlockCode};
use harp_memsim::pattern::DataPattern;
use harp_memsim::{AtRiskBit, FaultModel};
use harp_profiler::{BatchWord, CampaignBatch, Profiler, ProfilerKind, ProfilingCampaign};

/// Dataword length shared by all three families in this suite.
const DATA_BITS: usize = 32;

/// Profiling rounds per campaign (enough for every profiler to act on
/// multi-round state: inversion schedules, bootstrapping, predictions).
const ROUNDS: usize = 10;

/// One generated word of a cell: raw at-risk positions (reduced modulo the
/// code's length), a per-bit probability, a dependence selector, and seeds.
type WordSpec = (Vec<usize>, f64, u8, u64);

fn dependence_from(selector: u8) -> FailureDependence {
    match selector % 3 {
        0 => FailureDependence::TrueCell,
        1 => FailureDependence::AntiCell,
        _ => FailureDependence::DataIndependent,
    }
}

/// Builds the fault model of one word for a specific code, folding the raw
/// positions into the code's own codeword length.
fn fault_model_for(code: &dyn LinearBlockCode, spec: &WordSpec) -> FaultModel {
    let (positions, probability, dependence, _) = spec;
    let n = code.codeword_len();
    let mut folded: Vec<usize> = positions.iter().map(|&p| p % n).collect();
    folded.sort_unstable();
    folded.dedup();
    FaultModel::new(
        folded
            .into_iter()
            .enumerate()
            .map(|(i, position)| {
                // Heterogeneous per-bit probabilities within one word: step
                // the configured probability down per position (clamped away
                // from zero so the bit stays live).
                let p = (probability - 0.1 * i as f64).max(0.25);
                AtRiskBit::new(position, p)
            })
            .collect(),
        dependence_from(*dependence),
    )
}

/// Asserts that every word of the batched cell produces snapshots
/// byte-identical to the scalar reference path, for the given profiler kind.
fn assert_cell_matches_scalar<C: LinearBlockCode + Clone + Send + 'static>(
    code: &C,
    specs: &[WordSpec],
    kind: ProfilerKind,
) {
    let words: Vec<BatchWord> = specs
        .iter()
        .map(|spec| BatchWord::new(fault_model_for(code, spec), DataPattern::Random, spec.3))
        .collect();
    let batch = CampaignBatch::new(code.clone(), words);
    let batched = batch.run(kind, ROUNDS);
    assert_eq!(batched.len(), specs.len());
    for (index, result) in batched.iter().enumerate() {
        let scalar = batch.scalar_campaign(index).run(kind, ROUNDS);
        assert_eq!(
            result,
            &scalar,
            "{} word {} of {}: batched != scalar ({})",
            kind,
            index,
            specs.len(),
            code.description()
        );
        // Byte-identical, not merely equal: the serialized archives match.
        assert_eq!(
            serde_json::to_string(result).expect("serializable"),
            serde_json::to_string(&scalar).expect("serializable")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline differential property: for random cells of 1–5 words
    /// with heterogeneous fault models, every profiler kind produces
    /// byte-identical snapshots through the batched and scalar paths, for
    /// all three code families.
    #[test]
    fn batched_cells_match_the_scalar_reference_for_all_kinds_and_codes(
        seed in 0u64..200,
        specs in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..64, 1..5),
                proptest::sample::select(vec![0.5f64, 0.75, 1.0]),
                any::<u8>(),
                any::<u64>(),
            ),
            1..5,
        ),
    ) {
        let hamming = HammingCode::random(DATA_BITS, seed).expect("valid Hamming code");
        let secded = ExtendedHammingCode::random(DATA_BITS, seed).expect("valid SEC-DED code");
        let bch = BchCode::dec(DATA_BITS).expect("valid BCH code");
        for kind in ProfilerKind::ALL {
            assert_cell_matches_scalar(&hamming, &specs, kind);
            assert_cell_matches_scalar(&secded, &specs, kind);
            assert_cell_matches_scalar(&bch, &specs, kind);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A word's snapshots do not depend on its cell membership: evaluated
    /// alone (a 1-word cell) or batched with arbitrary other words, the
    /// results are identical. This is the independence invariant that lets
    /// the sweep regroup words freely across shards.
    #[test]
    fn cell_membership_does_not_affect_a_words_snapshots(
        seed in 0u64..200,
        word in (
            proptest::collection::vec(0usize..64, 1..5),
            proptest::sample::select(vec![0.5f64, 1.0]),
            any::<u8>(),
            any::<u64>(),
        ),
        neighbors in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..64, 1..4),
                proptest::sample::select(vec![0.5f64, 1.0]),
                any::<u8>(),
                any::<u64>(),
            ),
            1..4,
        ),
        kind in proptest::sample::select(vec![
            ProfilerKind::HarpU,
            ProfilerKind::HarpA,
            ProfilerKind::Naive,
            ProfilerKind::Beep,
        ]),
    ) {
        let code = HammingCode::random(DATA_BITS, seed).expect("valid Hamming code");
        let make_batch_word =
            |spec: &WordSpec| BatchWord::new(fault_model_for(&code, spec), DataPattern::Random, spec.3);

        // 1-word cell.
        let alone = CampaignBatch::new(code.clone(), vec![make_batch_word(&word)]);
        let alone_result = alone.run(kind, ROUNDS).remove(0);
        // Scalar path (the non-batched reference).
        prop_assert_eq!(&alone_result, &alone.scalar_campaign(0).run(kind, ROUNDS));

        // Same word batched last in a cell of strangers.
        let mut words: Vec<BatchWord> = neighbors.iter().map(&make_batch_word).collect();
        words.push(make_batch_word(&word));
        let crowded = CampaignBatch::new(code.clone(), words);
        let crowded_results = crowded.run(kind, ROUNDS);
        prop_assert_eq!(
            crowded_results.last().expect("at least one word"),
            &alone_result,
            "{} changed snapshots when batched with {} neighbors",
            kind,
            neighbors.len()
        );
    }
}

/// Error-free words (no at-risk bits at all) batch cleanly alongside faulty
/// ones — the all-zero-syndrome burst slots must not perturb neighbors.
#[test]
fn error_free_words_batch_cleanly_with_faulty_neighbors() {
    let code = HammingCode::random(DATA_BITS, 41).expect("valid Hamming code");
    let batch = CampaignBatch::new(
        code,
        vec![
            BatchWord::new(FaultModel::none(), DataPattern::Random, 5),
            BatchWord::new(FaultModel::uniform(&[3, 17], 1.0), DataPattern::Random, 7),
            BatchWord::new(FaultModel::none(), DataPattern::Random, 9),
        ],
    );
    for kind in ProfilerKind::ALL {
        let batched = batch.run(kind, ROUNDS);
        for (index, result) in batched.iter().enumerate() {
            assert_eq!(
                result,
                &batch.scalar_campaign(index).run(kind, ROUNDS),
                "{kind} word {index}"
            );
        }
        // The error-free words identified nothing.
        assert!(batched[0].final_identified().is_empty());
        assert!(batched[2].final_identified().is_empty());
    }
}

/// The pre-instantiated-profiler entry point (`run_profilers`) matches the
/// scalar `run_profiler` reference word for word, so callers that thread
/// their own profiler state through a batch inherit the same guarantee.
#[test]
fn run_profilers_matches_scalar_run_profiler() {
    let code = BchCode::dec(DATA_BITS).expect("valid BCH code");
    let specs: Vec<(Vec<usize>, u64)> =
        vec![(vec![1, 9], 101), (vec![4], 103), (vec![2, 20, 33], 107)];
    let batch = CampaignBatch::new(
        code.clone(),
        specs
            .iter()
            .map(|(positions, seed)| {
                BatchWord::new(
                    FaultModel::uniform(positions, 0.5),
                    DataPattern::Random,
                    *seed,
                )
            })
            .collect(),
    );
    let mut batched_profilers: Vec<Box<dyn Profiler>> = specs
        .iter()
        .map(|&(_, seed)| ProfilerKind::HarpU.instantiate(&code, DataPattern::Random, seed))
        .collect();
    let batched = batch.run_profilers(&mut batched_profilers, ROUNDS);

    for (index, (positions, seed)) in specs.iter().enumerate() {
        let campaign = ProfilingCampaign::new(
            code.clone(),
            FaultModel::uniform(positions, 0.5),
            DataPattern::Random,
            *seed,
        );
        let mut scalar_profiler =
            ProfilerKind::HarpU.instantiate(&code, DataPattern::Random, *seed);
        let scalar = campaign.run_profiler(scalar_profiler.as_mut(), ROUNDS);
        assert_eq!(batched[index], scalar, "word {index}");
    }
}
