//! Torn-archive fuzzing: resuming from a damaged checkpoint archive must
//! either succeed or fail cleanly — it must **never panic**.
//!
//! A checkpoint archive is exactly the thing that exists *because* the
//! process hosting it can die mid-write: a torn rename, a half-synced page,
//! a bit flip on a bad disk. The resume path therefore treats the archive
//! as untrusted input. This suite property-tests that contract directly:
//! take a pristine mid-sweep archive, damage one file at a
//! property-chosen offset (truncate, byte flip, or deletion), and resume.
//!
//! Two outcomes are acceptable:
//!
//! * `Err` with a non-empty description (the damage was detected), or
//! * `Ok` — in which case the resumed sweep must advance to completion and
//!   assemble its result without panicking (e.g. a flipped byte inside a
//!   JSON string that still parses; torn-archive semantics also explicitly
//!   accept group files one generation *ahead* of the manifest).
//!
//! Any panic — the pre-fix failure mode for short word lists, corrupt RNG
//! cursors, oversized identified sets, and zeroed configuration fields —
//! fails the property. The nightly CI job runs this suite at elevated
//! `PROPTEST_CASES`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use harp_ecc::HammingCode;
use harp_profiler::ProfilerKind;
use harp_sim::checkpoint::ResumableSweep;
use harp_sim::EvaluationConfig;

/// Small enough that each accepted-then-completed case costs milliseconds.
fn tiny_config() -> EvaluationConfig {
    EvaluationConfig {
        data_bits: 16,
        num_codes: 1,
        words_per_code: 2,
        rounds: 6,
        error_counts: vec![2],
        probabilities: vec![0.5],
        threads: 1,
        ..EvaluationConfig::quick()
    }
}

fn make_code(seed: u64) -> HammingCode {
    HammingCode::random(16, seed).expect("16 data bits always yields a code")
}

/// Writes a pristine archive checkpointed mid-sweep (round 3 of 6) and
/// returns its files, manifest last (write order).
fn build_pristine(dir: &Path) -> Vec<PathBuf> {
    let config = tiny_config();
    let kinds = vec![
        ProfilerKind::HarpA,
        ProfilerKind::HarpU,
        ProfilerKind::Naive,
    ];
    let mut sweep = ResumableSweep::new(&config, &kinds, make_code);
    sweep.advance(3);
    sweep.write_archive(dir).expect("pristine archive");
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("archive dir")
        .map(|entry| entry.expect("entry").path())
        .collect();
    files.sort();
    files
}

/// One way to damage one file.
#[derive(Debug, Clone)]
enum Tear {
    /// Cut the file off at a fraction of its length (0 ⇒ empty file).
    Truncate(f64),
    /// XOR one byte at a fraction of the length with a nonzero mask.
    Flip(f64, u8),
    /// Remove the file entirely.
    Delete,
}

fn apply_tear(path: &Path, tear: &Tear) {
    match tear {
        Tear::Truncate(fraction) => {
            let bytes = std::fs::read(path).expect("readable archive file");
            let keep = ((bytes.len() as f64) * fraction) as usize;
            std::fs::write(path, &bytes[..keep.min(bytes.len())]).expect("truncate");
        }
        Tear::Flip(fraction, mask) => {
            let mut bytes = std::fs::read(path).expect("readable archive file");
            if bytes.is_empty() {
                return;
            }
            let index = (((bytes.len() - 1) as f64) * fraction) as usize;
            bytes[index] ^= if *mask == 0 { 1 } else { *mask };
            std::fs::write(path, bytes).expect("flip");
        }
        Tear::Delete => {
            std::fs::remove_file(path).expect("delete");
        }
    }
}

fn tear_strategy() -> impl Strategy<Value = Tear> {
    // Offsets as permille of the file length (the vendored proptest has no
    // float range strategy).
    (0u8..3, 0u32..1000, any::<u8>()).prop_map(|(kind, permille, mask)| {
        let at = f64::from(permille) / 1000.0;
        match kind {
            0 => Tear::Truncate(at),
            1 => Tear::Flip(at, mask),
            _ => Tear::Delete,
        }
    })
}

/// Unique scratch directory per case (proptest re-runs the closure).
fn case_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let id = COUNTER.fetch_add(1, Ordering::SeqCst);
    let dir = std::env::temp_dir().join(format!("harp_archive_torn_{}_{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("case dir");
    dir
}

proptest! {
    /// Damage one archive file anywhere: resume detects it (`Err` with a
    /// message) or absorbs it (`Ok` that runs to completion). Never a
    /// panic.
    #[test]
    fn resume_from_a_torn_archive_never_panics(
        file_selector in 0usize..64,
        tear in tear_strategy(),
    ) {
        let dir = case_dir();
        let files = build_pristine(&dir);
        let target = &files[file_selector % files.len()];
        apply_tear(target, &tear);

        match ResumableSweep::resume(&dir, make_code) {
            Err(err) => {
                prop_assert!(
                    !err.to_string().trim().is_empty(),
                    "rejection must explain itself"
                );
            }
            Ok(mut sweep) => {
                let rounds = sweep.config().rounds;
                sweep.advance(rounds);
                prop_assert!(sweep.is_complete());
                let result = sweep.into_sweep();
                prop_assert_eq!(result.rounds, rounds);
            }
        }
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// The pristine archive itself always resumes — the detector has no
    /// false positives on undamaged input, whatever the fuzzer explores.
    #[test]
    fn pristine_archives_always_resume(_nonce in 0u8..8) {
        let dir = case_dir();
        build_pristine(&dir);
        let mut sweep = ResumableSweep::resume(&dir, make_code).expect("pristine resume");
        let rounds = sweep.config().rounds;
        sweep.advance(rounds);
        prop_assert!(sweep.is_complete());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
