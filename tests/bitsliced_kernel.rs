//! Property suite for the bit-sliced syndrome layer (`harp_gf2::bitslice`
//! and the `SyndromeKernel` bit-sliced entry points).
//!
//! Three contracts, each over random shapes:
//!
//! 1. **Transpose round-trip** — slicing up to 64 codewords into `u64` lanes
//!    and reading any word back is the identity, for ragged tails (< 64
//!    words) and arbitrary bit lengths alike.
//! 2. **Packed equivalence** — `syndrome_words_bitsliced_into` is
//!    byte-identical to the per-word `syndrome_words_into` loop for random
//!    dense `H`, and its per-block masks flag exactly the words whose
//!    `syndrome_word` is nonzero.
//! 3. **Wide-syndrome fallback** — for kernels with more than 64 rows
//!    (where no packed syndrome word exists), `nonzero_masks_bitsliced_into`
//!    agrees with the allocating `syndrome` path on which words are clean.
//!
//! The nightly CI job runs this suite at elevated `PROPTEST_CASES`, next to
//! `campaign_equivalence` and the other differential suites.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use harp_gf2::bitslice::{slice_words, unslice_word, BLOCK_WORDS};
use harp_gf2::{BitVec, BitsliceScratch, Gf2Matrix, SyndromeKernel};

/// A random dense parity-check matrix (each entry set with probability 1/2,
/// plus a guaranteed nonzero column so masks exercise both values).
fn random_matrix(rows: usize, cols: usize, seed: u64) -> Gf2Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut h = Gf2Matrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            h.set(r, c, rng.gen_bool(0.5));
        }
    }
    h.set(0, 0, true);
    h
}

/// `count` random codewords of length `bits`, with roughly `density` of the
/// bits set (density 0 gives all-zero words, exercising the sparse skip).
fn random_words(count: usize, bits: usize, density: f64, seed: u64) -> Vec<BitVec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| (0..bits).map(|_| rng.gen_bool(density)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Slicing a block of up to 64 words into lanes and unslicing any index
    /// is the identity, for ragged counts and arbitrary bit lengths.
    #[test]
    fn transpose_round_trips_random_shapes(
        count in 1usize..=BLOCK_WORDS,
        bits in 1usize..=200,
        seed in any::<u64>(),
    ) {
        let words = random_words(count, bits, 0.5, seed);
        let mut lanes = Vec::new();
        let sliced = slice_words(&words, &mut lanes);
        prop_assert_eq!(sliced, count);
        prop_assert_eq!(lanes.len(), bits);
        for (index, word) in words.iter().enumerate() {
            prop_assert_eq!(&unslice_word(&lanes, index), word);
        }
        // Lane bits beyond the word count stay zero (ragged tail).
        for lane in &lanes {
            if count < BLOCK_WORDS {
                prop_assert_eq!(lane >> count, 0);
            }
        }
    }

    /// The bit-sliced packed pass is byte-identical to the per-word loop,
    /// and its masks flag exactly the nonzero `syndrome_word`s — across
    /// block-boundary word counts, densities (including all-zero inputs,
    /// the sparse skip path), and random dense `H`.
    #[test]
    fn bitsliced_packed_pass_matches_per_word_loop(
        rows in 1usize..=16,
        cols in 8usize..=150,
        count in 1usize..=130,
        density_choice in 0usize..3,
        seed in any::<u64>(),
    ) {
        // Mixed densities: all-zero inputs (the sparse skip path), sparse
        // error-like patterns, and dense stored words.
        let density = [0.0, 0.01, 0.5][density_choice];
        let kernel = SyndromeKernel::new(&random_matrix(rows, cols, seed));
        let words = random_words(count, cols, density, seed ^ 0x5EED);

        let mut reference = Vec::new();
        kernel.syndrome_words_into(&words, &mut reference);

        let mut packed = Vec::new();
        let mut masks = Vec::new();
        let mut scratch = BitsliceScratch::new();
        kernel.syndrome_words_bitsliced_into(&words, &mut packed, &mut masks, &mut scratch);

        prop_assert_eq!(&packed, &reference);
        prop_assert_eq!(masks.len(), count.div_ceil(BLOCK_WORDS));
        for (index, &word) in reference.iter().enumerate() {
            let flagged = masks[index / BLOCK_WORDS] >> (index % BLOCK_WORDS) & 1 == 1;
            prop_assert_eq!(flagged, word != 0, "word {}", index);
        }
        // Ragged-tail mask bits beyond the word count stay zero.
        let tail = count % BLOCK_WORDS;
        if tail != 0 {
            prop_assert_eq!(masks.last().unwrap() >> tail, 0);
        }
    }

    /// For kernels wider than 64 syndrome rows (no packed word exists) the
    /// mask-only fallback agrees with the allocating `syndrome` path.
    #[test]
    fn wide_kernel_masks_match_allocating_syndromes(
        rows in 65usize..=80,
        cols in 65usize..=150,
        count in 1usize..=70,
        density_choice in 0usize..3,
        seed in any::<u64>(),
    ) {
        let density = [0.0, 0.02, 0.5][density_choice];
        let kernel = SyndromeKernel::new(&random_matrix(rows, cols, seed));
        let words = random_words(count, cols, density, seed ^ 0xF00D);

        let mut masks = Vec::new();
        let mut scratch = BitsliceScratch::new();
        kernel.nonzero_masks_bitsliced_into(&words, &mut masks, &mut scratch);

        prop_assert_eq!(masks.len(), count.div_ceil(BLOCK_WORDS));
        for (index, word) in words.iter().enumerate() {
            let flagged = masks[index / BLOCK_WORDS] >> (index % BLOCK_WORDS) & 1 == 1;
            prop_assert_eq!(flagged, !kernel.syndrome(word).is_zero(), "word {}", index);
        }
    }
}
