//! Cross-family differential suite for BEER reconstruction.
//!
//! The reverse-engineering layer must be generic over the code-abstraction
//! seam: for **every supported [`CodeFamily`]** (SEC Hamming, SEC-DED
//! extended Hamming) and random secret codes at 8- and 16-bit datawords, the
//! full pipeline
//!
//! ```text
//! secret code → BeerCampaign::extract_visible_profile (black-box chip reads)
//!             → reconstruct_code (family-dispatched GF(2) constraint solve)
//!             → data_visible_equivalent(secret, recovered, 3)
//! ```
//!
//! must round-trip from observables alone. The SEC-DED leg is the hard one:
//! every data-bit pair is detected (carrying zero pairwise information), so
//! the reconstruction works entirely from the weight-3 pattern responses —
//! no code-specific analysis exists outside the `CodeFamily` dispatch.
//!
//! Like `campaign_equivalence.rs`, this suite runs at its default case
//! counts on every push and at an elevated `PROPTEST_CASES` count in the
//! nightly CI job.

use proptest::prelude::*;

use harp_beer::{
    data_visible_equivalent, reconstruct_code, BeerCampaign, CodeFamily, DecodeFlag,
    ReconstructError, VisibleErrorProfile,
};
use harp_ecc::{ExtendedHammingCode, HammingCode, LinearBlockCode};

/// The shared property body: secret → campaign profile → reconstruction →
/// weight-3 data-visible equivalence, all from outside the chip.
fn assert_roundtrip(family: CodeFamily, data_bits: usize, seed: u64) {
    let secret = family.random(data_bits, seed).expect("secret code");
    let campaign = BeerCampaign::new(data_bits);

    // The black-box campaign recovers exactly the ground-truth observables.
    let profile = campaign.extract_visible_profile(&secret);
    assert_eq!(&profile, &VisibleErrorProfile::from_code(&secret));

    let recovered = reconstruct_code(
        &profile,
        family,
        family.min_parity_bits(data_bits),
        seed ^ 0xD1CE,
        500_000,
    )
    .unwrap_or_else(|err| {
        panic!("{family} reconstruction failed for {data_bits}-bit seed {seed}: {err}")
    });
    assert_eq!(recovered.family(), family);
    assert!(profile.is_data_visible_consistent_with(&recovered));
    assert!(
        data_visible_equivalent(&secret, &recovered, 3),
        "recovered {} not weight-3 equivalent to secret (seed {seed})",
        recovered.description(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// SEC Hamming secrets round-trip through the family-generic pipeline.
    #[test]
    fn hamming_secrets_round_trip_from_observables(
        seed in 0u64..10_000,
        data_bits in proptest::sample::select(vec![8usize, 16]),
    ) {
        assert_roundtrip(CodeFamily::Hamming, data_bits, seed);
    }

    /// SEC-DED secrets round-trip from observables alone — the acceptance
    /// criterion of the cross-family generalization. All information comes
    /// from weight-3 patterns (every pair is detected).
    #[test]
    fn secded_secrets_round_trip_from_observables(
        seed in 0u64..10_000,
        data_bits in proptest::sample::select(vec![8usize, 16]),
    ) {
        assert_roundtrip(CodeFamily::ExtendedHamming, data_bits, seed);
    }

    /// The SEC/SEC-DED discrimination property: a secret whose pairs visibly
    /// miscorrect can never be explained by the extended family (its
    /// overall-parity row makes weight-2 miscorrections structurally
    /// impossible), and the solver reports the contradiction as
    /// `InconsistentProfile` rather than burning the attempt budget.
    #[test]
    fn sec_observables_are_inconsistent_with_the_extended_family(seed in 0u64..10_000) {
        let secret = HammingCode::random(16, seed).expect("secret code");
        let profile = VisibleErrorProfile::from_code(&secret);
        prop_assume!(profile.miscorrecting_pair_count() > 0);
        prop_assert_eq!(
            reconstruct_code(
                &profile,
                CodeFamily::ExtendedHamming,
                CodeFamily::ExtendedHamming.min_parity_bits(16),
                seed,
                1_000,
            ),
            Err(ReconstructError::InconsistentProfile)
        );
    }

    /// SEC-DED profiles really are pairwise-blank: the campaign observes a
    /// detected flag and no data flips beyond the charged pair, for every
    /// pair — so the pairwise `MiscorrectionProfile` view of a SEC-DED chip
    /// carries zero information.
    #[test]
    fn secded_pairs_observe_nothing(seed in 0u64..10_000) {
        let secret = ExtendedHammingCode::random(8, seed).expect("secret code");
        let profile = BeerCampaign::new(8).extract_visible_profile(&secret);
        for (&(i, j), response) in profile.pairs() {
            prop_assert_eq!(response.flag, DecodeFlag::Detected);
            prop_assert_eq!(&response.post_errors, &vec![i, j]);
        }
        prop_assert_eq!(profile.miscorrection_profile().miscorrecting_pair_count(), 0);
        // The weight-3 responses are what carry the columns.
        prop_assert!(profile.miscorrecting_triple_count() > 0);
    }

    /// Reconstruction is deterministic in its seed: the same observables and
    /// search seed recover the identical code.
    #[test]
    fn reconstruction_is_deterministic(
        seed in 0u64..10_000,
        family_selector in any::<bool>(),
    ) {
        let family = if family_selector {
            CodeFamily::Hamming
        } else {
            CodeFamily::ExtendedHamming
        };
        let secret = family.random(8, seed).expect("secret code");
        let profile = VisibleErrorProfile::from_code(&secret);
        let parity = family.min_parity_bits(8);
        let a = reconstruct_code(&profile, family, parity, 77, 500_000);
        let b = reconstruct_code(&profile, family, parity, 77, 500_000);
        prop_assert_eq!(a, b);
    }
}
