//! Steady-state allocation guard for the burst read path.
//!
//! `BurstScratch` grows geometrically and `clear()` keeps capacity, so a
//! campaign that alternates burst sizes (module line reads vs. controller
//! scrub ranges) must stop allocating once its scratch has seen each size
//! once. This test pins that down with a counting global allocator: after a
//! warm-up pass over both burst sizes, whole alternating read bursts run
//! with **zero** heap allocations for every code family.
//!
//! The test lives in its own integration-test binary because the counting
//! allocator is process-global: sharing a binary with concurrently running
//! tests would make the counter racy.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use harp_bch::BchCode;
use harp_ecc::{ExtendedHammingCode, HammingCode, LinearBlockCode};
use harp_gf2::BitVec;
use harp_memsim::{BurstScratch, FaultModel, MemoryChip};

/// Counts every allocation and reallocation made through the global
/// allocator (deallocations are not counted: freeing is fine, *acquiring*
/// in the steady state is the regression this test guards against).
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Scrub-range burst size (the large shape).
const LARGE_BURST: usize = 384;
/// Module line-read burst size (the small shape).
const SMALL_BURST: usize = 48;

/// A chip with a mix of clean, single-error, and multi-error words, so the
/// steady-state pass exercises every decode branch (clean short-circuit,
/// correction, detected-uncorrectable).
fn seeded_chip<C: LinearBlockCode>(code: C) -> MemoryChip<C> {
    let n = code.codeword_len();
    let k = code.data_len();
    let mut chip = MemoryChip::new(code, LARGE_BURST);
    let mut rng = ChaCha8Rng::seed_from_u64(0xA110C);
    for word in 0..LARGE_BURST {
        let data: BitVec = (0..k).map(|_| rand::Rng::gen_bool(&mut rng, 0.5)).collect();
        chip.write(word, &data);
        if word % 4 == 0 {
            let at_risk = [word % n, (word * 13 + 7) % n, (word * 29 + 3) % n];
            chip.set_fault_model(word, FaultModel::uniform(&at_risk[..1 + word % 3], 0.5));
        }
    }
    chip
}

fn alternating_bursts<C: LinearBlockCode>(
    chip: &MemoryChip<C>,
    rng: &mut ChaCha8Rng,
    scratch: &mut BurstScratch,
    rounds: usize,
) -> usize {
    let mut corrected = 0;
    for _ in 0..rounds {
        for range in [0..LARGE_BURST, 0..SMALL_BURST] {
            corrected += chip
                .read_burst(range, rng, scratch)
                .iter()
                .map(|o| o.decode_result().outcome.correction_count())
                .sum::<usize>();
        }
    }
    corrected
}

fn assert_steady_state<C: LinearBlockCode>(
    label: &str,
    chip: &MemoryChip<C>,
    rng: &mut ChaCha8Rng,
    scratch: &mut BurstScratch,
) {
    // Warm up: let the scratch and every observation's decode buffers reach
    // their steady-state capacity for both burst shapes.
    alternating_bursts(chip, rng, scratch, 2);

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let corrected = alternating_bursts(chip, rng, scratch, 8);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert!(corrected > 0, "{label}: decode branches not exercised");
    assert_eq!(
        after - before,
        0,
        "{label}: steady-state bursts performed heap allocations"
    );

    // `clear()` drops contents but keeps capacity, so the next burst after
    // a clear is still allocation-free.
    scratch.clear();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    alternating_bursts(chip, rng, scratch, 1);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "{label}: burst after clear() re-allocated"
    );
}

#[test]
fn steady_state_bursts_do_not_allocate() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut scratch = BurstScratch::new();
    let hamming = seeded_chip(HammingCode::random(64, 1).expect("valid code"));
    assert_steady_state("hamming", &hamming, &mut rng, &mut scratch);
    let secded = seeded_chip(ExtendedHammingCode::random(64, 1).expect("valid code"));
    assert_steady_state("secded", &secded, &mut rng, &mut scratch);
    let bch = seeded_chip(BchCode::dec(64).expect("valid code"));
    assert_steady_state("bch", &bch, &mut rng, &mut scratch);
}
