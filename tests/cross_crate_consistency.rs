//! Integration test: the analytical ground truth (harp-ecc's exact error-space
//! enumeration) agrees with the behavioural simulation stack (harp-memsim /
//! harp-profiler / harp-controller).

use std::collections::BTreeSet;

use harp_ecc::analysis::FailureDependence;
use harp_ecc::{ErrorSpace, HammingCode, SecondaryEcc};
use harp_gf2::BitVec;
use harp_memsim::pattern::DataPattern;
use harp_memsim::{FaultModel, MemoryChip};
use harp_profiler::{CoverageSeries, ProfilerKind, ProfilingCampaign};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn every_observed_post_correction_error_is_predicted_by_the_error_space() {
    for seed in 0..6u64 {
        let code = HammingCode::random(64, seed).unwrap();
        let at_risk: Vec<usize> = vec![seed as usize % 64, 17, 40, 66];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&at_risk, 0.5));
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABC);
        // Exercise several data patterns, as a profiler would.
        for round in 0..64usize {
            let data = match round % 3 {
                0 => BitVec::ones(64),
                1 => BitVec::from_indices(64, (0..64).filter(|i| i % 2 == 0)),
                _ => BitVec::from_u64(64, 0x0F0F_F0F0_1234_5678 ^ round as u64),
            };
            chip.write(0, &data);
            let obs = chip.read(0, &mut rng);
            for bit in obs.post_correction_errors() {
                assert!(
                    space.post_correction_at_risk().contains(&bit),
                    "seed {seed}: observed post-correction error at {bit} was not predicted"
                );
            }
            for bit in obs.direct_errors() {
                assert!(
                    space.direct_at_risk().contains(&bit),
                    "seed {seed}: observed direct error at {bit} was not predicted"
                );
            }
        }
    }
}

#[test]
fn harp_u_campaign_converges_exactly_to_the_direct_at_risk_set() {
    for seed in 0..4u64 {
        let code = HammingCode::random(64, 100 + seed).unwrap();
        let at_risk = [3usize, 19, 44, 63];
        let faults = FaultModel::uniform(&at_risk, 0.5);
        let campaign = ProfilingCampaign::new(code.clone(), faults, DataPattern::Random, seed);
        let space = campaign.error_space();
        let result = campaign.run(ProfilerKind::HarpU, 64);
        // HARP-U identifies exactly the direct at-risk set: no more, no less.
        assert_eq!(&result.final_identified(), space.direct_at_risk());
        // And the coverage series reports full coverage with <=1 residual
        // simultaneous error.
        let series = CoverageSeries::from_campaign(&result, &space);
        assert_eq!(series.final_direct_coverage(), 1.0);
        assert!(*series.max_simultaneous.last().unwrap() <= 1);
    }
}

#[test]
fn error_space_max_simultaneous_matches_controller_behaviour() {
    // If the error space says at most one simultaneous post-correction error
    // remains once the direct bits are repaired, then a controller with an
    // SEC secondary ECC must never deliver corrupted data.
    for seed in 0..4u64 {
        let code = HammingCode::random(64, 200 + seed).unwrap();
        let at_risk = [5usize, 23, 41, 59];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let direct: BTreeSet<usize> = space.direct_at_risk().clone();
        assert!(space.max_simultaneous_errors_outside(&direct) <= 1);

        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&at_risk, 1.0));
        let mut controller =
            harp_controller::MemoryController::new(chip, SecondaryEcc::ideal_sec());
        controller.profile_mut().mark_all(0, direct.iter().copied());
        controller.write(0, &BitVec::ones(64));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..100 {
            let outcome = controller.read(0, &mut rng);
            assert!(
                outcome.is_correct(),
                "seed {seed}: error escaped despite repaired direct bits"
            );
        }
    }
}

#[test]
fn harp_a_predictions_are_sound_across_the_stack() {
    // Every bit HARP-A predicts must be a genuine indirect at-risk bit of the
    // ground-truth error space (no false positives that would waste repair
    // resources).
    for seed in 0..4u64 {
        let code = HammingCode::random(64, 300 + seed).unwrap();
        let at_risk = [2usize, 11, 37, 58, 65];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let faults = FaultModel::uniform(&at_risk, 1.0);
        let campaign = ProfilingCampaign::new(code, faults, DataPattern::Charged, seed);
        let result = campaign.run(ProfilerKind::HarpA, 8);
        let predicted: BTreeSet<usize> = result
            .final_known()
            .difference(&result.final_identified())
            .copied()
            .collect();
        for bit in predicted {
            assert!(
                space.indirect_at_risk().contains(&bit),
                "seed {seed}: HARP-A predicted non-at-risk bit {bit}"
            );
        }
    }
}
