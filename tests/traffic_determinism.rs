//! Determinism suite for the live-traffic co-scheduler
//! (`harp_sim::traffic` and `harp_sim::experiments::ext_traffic`).
//!
//! The event clock's whole value is that the same seed reproduces the same
//! interleaving of demand reads, scrub bursts, and repair updates — no
//! matter the code family or how many worker threads carry the extension
//! sweep. Four contracts:
//!
//! 1. **Same seed, same report** — `run_traffic` is byte-identical across
//!    repeated runs for SEC Hamming, SEC-DED, and DEC BCH chips (struct
//!    equality *and* serialized-JSON equality, so hidden float drift has
//!    nowhere to hide).
//! 2. **Thread-count independence** — the extension-7 sweep at
//!    `threads = 1` equals the sweep at `threads = 8`, value for value and
//!    byte for byte.
//! 3. **Percentile properties** — latency percentiles are monotone in `p`
//!    and agree with a naive sort-and-interpolate reference.
//! 4. **Tie-break order** — the event queue pops equal timestamps in
//!    submission order, for arbitrary push sequences.
//!
//! The nightly CI job runs this suite at elevated `PROPTEST_CASES`, next
//! to `campaign_equivalence` and the other differential suites.

use proptest::prelude::*;

use harp_bch::BchCode;
use harp_ecc::{ExtendedHammingCode, HammingCode};
use harp_sim::config::EvaluationConfig;
use harp_sim::experiments::ext_traffic;
use harp_sim::traffic::{run_traffic, EventQueue, LatencySummary, TrafficConfig, TrafficReport};

/// The smoke-sized traffic shape used by the per-family identity checks,
/// with enough raw errors that repair updates actually flow.
fn smoke_traffic() -> TrafficConfig {
    TrafficConfig {
        rber: 0.02,
        ..TrafficConfig::smoke()
    }
}

/// Runs the config twice with independently constructed codes and demands
/// byte identity; returns the report for follow-up assertions.
fn assert_reproducible<C, F>(config: &TrafficConfig, family: &str, make_code: F) -> TrafficReport
where
    C: harp_ecc::LinearBlockCode,
    F: Fn() -> C,
{
    let first = run_traffic(config, make_code());
    let second = run_traffic(config, make_code());
    assert_eq!(first, second, "{family}: reports differ across runs");
    let first_json = serde_json::to_string(&first).expect("report serializes");
    let second_json = serde_json::to_string(&second).expect("report serializes");
    assert_eq!(
        first_json, second_json,
        "{family}: serialized reports differ across runs"
    );
    first
}

#[test]
fn same_seed_is_byte_identical_for_every_code_family() {
    let config = smoke_traffic();
    let hamming = assert_reproducible(&config, "SEC Hamming", || {
        HammingCode::random(config.data_bits, 0x7F).expect("valid SEC Hamming code")
    });
    let secded = assert_reproducible(&config, "SEC-DED", || {
        ExtendedHammingCode::random(config.data_bits, 0x7F).expect("valid SEC-DED code")
    });
    let bch = assert_reproducible(&config, "DEC BCH", || {
        BchCode::dec(config.data_bits).expect("valid DEC BCH code")
    });
    // Sanity: the runs actually exercised the co-scheduled path.
    for (family, report) in [
        ("SEC Hamming", &hamming),
        ("SEC-DED", &secded),
        ("DEC BCH", &bch),
    ] {
        assert!(report.demand_reads > 0, "{family}: no demand reads served");
        assert!(report.scrub_bursts > 0, "{family}: no scrub bursts issued");
    }
}

#[test]
fn seeds_actually_steer_the_traffic() {
    // The complement of the identity check: a different seed must produce a
    // different trace (otherwise the identity test proves nothing).
    let config = smoke_traffic();
    let reseeded = TrafficConfig {
        seed: config.seed ^ 0xDEAD_BEEF,
        ..config.clone()
    };
    let code = || HammingCode::random(config.data_bits, 0x7F).expect("valid code");
    assert_ne!(run_traffic(&config, code()), run_traffic(&reseeded, code()));
}

#[test]
fn extension_sweep_is_identical_across_thread_counts() {
    // The extension sweep shards (family, scrub, repair) cells across worker
    // threads; results must not depend on the shard layout. A
    // single-threaded run is the reference: an 8-thread run of the same
    // sweep must produce identical reports, value for value and byte for
    // byte.
    let mut config = EvaluationConfig::smoke();
    let base = TrafficConfig {
        rber: 0.02,
        ..TrafficConfig::smoke()
    };
    config.threads = 1;
    let single = ext_traffic::run_with_base(&config, &base);
    config.threads = 8;
    let multi = ext_traffic::run_with_base(&config, &base);

    assert_eq!(single, multi, "sweep differs across thread counts");
    assert_eq!(
        serde_json::to_string(&single).expect("result serializes"),
        serde_json::to_string(&multi).expect("result serializes"),
        "serialized sweeps differ across thread counts"
    );
    assert_eq!(single.render(), multi.render());
}

/// The reference percentile definition: sort, take the linearly
/// interpolated rank `p/100 * (n-1)`, written independently of
/// `harp_sim::stats::percentile`.
fn naive_percentile(latencies: &[u64], p: f64) -> Option<f64> {
    if latencies.is_empty() {
        return None;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    let frac = rank - low as f64;
    Some(sorted[low] as f64 * (1.0 - frac) + sorted[high] as f64 * frac)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Latency percentiles are monotone in `p` and match the naive
    /// sort-and-interpolate reference, for arbitrary samples.
    #[test]
    fn latency_percentiles_are_monotone_and_match_reference(
        latencies in proptest::collection::vec(0u64..10_000, 1..200),
    ) {
        let summary = LatencySummary::of(&latencies);
        prop_assert_eq!(summary.count, latencies.len());
        let points = [
            (50.0, summary.p50),
            (95.0, summary.p95),
            (99.0, summary.p99),
            (99.9, summary.p999),
        ];
        let mut previous = f64::NEG_INFINITY;
        for (p, value) in points {
            let value = value.expect("non-empty sample has percentiles");
            let reference = naive_percentile(&latencies, p).expect("non-empty");
            prop_assert!(
                (value - reference).abs() < 1e-9,
                "p{}: summary {} vs reference {}", p, value, reference
            );
            prop_assert!(value >= previous, "p{} = {} < p_prev = {}", p, value, previous);
            previous = value;
        }
        let max = *latencies.iter().max().expect("non-empty") as f64;
        prop_assert!(previous <= max, "p99.9 {} above max {}", previous, max);
        prop_assert_eq!(summary.max as f64, max);
    }

    /// Arbitrary percentile pairs from the shared helper are ordered too —
    /// the summary's fixed grid is not a special case.
    #[test]
    fn percentile_pairs_are_ordered(
        values in proptest::collection::vec(0u64..10_000, 1..100),
        lo_permille in 0u32..=1000,
        hi_permille in 0u32..=1000,
    ) {
        // Percentiles as permille of 100 (the vendored proptest has no
        // float range strategy).
        let (lo, hi) = if lo_permille <= hi_permille {
            (lo_permille, hi_permille)
        } else {
            (hi_permille, lo_permille)
        };
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let at = |permille: u32| {
            harp_sim::stats::percentile(&floats, f64::from(permille) / 10.0)
                .expect("non-empty sample")
        };
        prop_assert!(at(lo) <= at(hi), "p{} > p{}", lo, hi);
    }

    /// The event queue pops in (timestamp, submission) order for arbitrary
    /// push sequences — ties always drain in the order they were pushed.
    #[test]
    fn event_queue_breaks_timestamp_ties_by_submission_order(
        times in proptest::collection::vec(0u64..8, 1..200),
    ) {
        // Timestamps drawn from a tiny range so collisions are the norm.
        let mut queue = EventQueue::new();
        for (index, &time) in times.iter().enumerate() {
            let seq = queue.push(time, index);
            prop_assert_eq!(seq, index as u64, "sequence numbers are the push order");
        }

        let mut popped = Vec::new();
        while let Some(event) = queue.pop() {
            popped.push((event.time, event.seq, event.kind));
        }
        prop_assert!(queue.is_empty());
        prop_assert_eq!(popped.len(), times.len());

        // The reference order: a stable sort by timestamp alone, which
        // preserves push order within each timestamp.
        let mut expected: Vec<(u64, u64, usize)> = times
            .iter()
            .enumerate()
            .map(|(index, &time)| (time, index as u64, index))
            .collect();
        expected.sort_by_key(|&(time, _, _)| time);
        prop_assert_eq!(popped, expected);
    }
}
