//! Differential suite for campaign checkpoint/resume.
//!
//! A checkpoint is only trustworthy if resuming from it is *invisible*: a
//! campaign stopped after round `k` and restarted must finish byte-identical
//! to one that never stopped. The properties here prove that guarantee at
//! every layer of the stack:
//!
//! * **Campaign layer** — for **every profiler kind** and **every code
//!   family** (SEC Hamming, SEC-DED extended Hamming, DEC BCH), a
//!   [`BatchRun`] frozen at a random round, pushed through the full JSON
//!   encode → render → parse → decode round trip, and thawed produces
//!   snapshots byte-identical (serialized form included) to the
//!   uninterrupted run — even when interrupted twice.
//! * **Sweep layer** — a [`ResumableSweep`] driven through on-disk archives
//!   (`write_archive` → `resume`, twice) reconstructs exactly the
//!   [`CoverageSweep`] the one-shot [`run_coverage_sweep`] path computes,
//!   for all three code families.
//! * **Distribution layer** — two shard workers (`--shard 0/2` + `1/2`)
//!   plus [`merge_shards`] reproduce the single-process sweep exactly, and
//!   a merge with a missing shard fails loudly instead of returning a
//!   partial result.
//!
//! The nightly CI job runs this suite at elevated `PROPTEST_CASES`, next to
//! the campaign and kernel differential suites.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use harp_bch::BchCode;
use harp_ecc::{ExtendedHammingCode, HammingCode, LinearBlockCode};
use harp_memsim::pattern::DataPattern;
use harp_memsim::FaultModel;
use harp_profiler::{BatchRun, BatchWord, CampaignBatch, CampaignResult, ProfilerKind};
use harp_sim::checkpoint::{
    decode_campaign_checkpoint, encode_campaign_checkpoint, merge_shards, shard_file_name,
    ResumableSweep, ShardSpec,
};
use harp_sim::experiments::sweep::{run_coverage_sweep, run_coverage_sweep_with, CoverageSweep};
use harp_sim::minijson::Json;
use harp_sim::EvaluationConfig;

/// Dataword length shared by all three families in this suite.
const DATA_BITS: usize = 32;

/// Profiling rounds per campaign (enough for every profiler to act on
/// multi-round state: inversion schedules, bootstrapping, predictions).
const ROUNDS: usize = 10;

/// One generated word of a cell: raw at-risk positions (reduced modulo the
/// code's length), a shared per-bit probability, and an RNG seed.
type WordSpec = (Vec<usize>, f64, u64);

/// Builds one batch word for a specific code, folding the raw positions
/// into the code's own codeword length.
fn batch_word_for(code: &dyn LinearBlockCode, spec: &WordSpec) -> BatchWord {
    let (positions, probability, seed) = spec;
    let n = code.codeword_len();
    let mut folded: Vec<usize> = positions.iter().map(|&p| p % n).collect();
    folded.sort_unstable();
    folded.dedup();
    BatchWord::new(
        FaultModel::uniform(&folded, *probability),
        DataPattern::Random,
        *seed,
    )
}

/// The uninterrupted reference: the plain one-shot campaign path.
fn uninterrupted<C: LinearBlockCode + Clone + Send + 'static>(
    batch: &CampaignBatch<C>,
    kind: ProfilerKind,
) -> Vec<CampaignResult> {
    batch.run(kind, ROUNDS)
}

/// Runs the same campaign but frozen (and JSON round-tripped) at each round
/// in `freeze_at`, resuming from the decoded checkpoint every time.
fn interrupted<C: LinearBlockCode + Clone + Send + 'static>(
    batch: &CampaignBatch<C>,
    kind: ProfilerKind,
    freeze_at: &[usize],
) -> Vec<CampaignResult> {
    let mut run = BatchRun::new(batch, kind);
    for &round in freeze_at {
        run.advance(round - run.round());
        let frozen = run.checkpoint();
        // Full persistence round trip: encode → render → parse → decode.
        let rendered = encode_campaign_checkpoint(&frozen).render();
        let parsed = Json::parse(&rendered).expect("rendered checkpoint parses");
        let thawed = decode_campaign_checkpoint(&parsed).expect("rendered checkpoint decodes");
        assert_eq!(
            thawed, frozen,
            "{kind}: checkpoint changed across the JSON round trip"
        );
        run = BatchRun::resume(batch, &thawed);
        assert_eq!(run.round(), round);
    }
    run.advance(ROUNDS - run.round());
    run.results()
}

/// Asserts resumed == uninterrupted for one (code, kind) pair, comparing
/// both the structures and their serialized bytes.
fn assert_resume_is_invisible<C: LinearBlockCode + Clone + Send + 'static>(
    code: &C,
    specs: &[WordSpec],
    kind: ProfilerKind,
    freeze_at: &[usize],
) {
    let words: Vec<BatchWord> = specs
        .iter()
        .map(|spec| batch_word_for(code, spec))
        .collect();
    let batch = CampaignBatch::new(code.clone(), words);
    let reference = uninterrupted(&batch, kind);
    let resumed = interrupted(&batch, kind, freeze_at);
    assert_eq!(
        resumed,
        reference,
        "{} resumed at rounds {:?} diverged from the uninterrupted run ({})",
        kind,
        freeze_at,
        code.description()
    );
    // Byte-identical, not merely equal: the serialized archives match.
    assert_eq!(
        serde_json::to_string(&resumed).expect("serializable"),
        serde_json::to_string(&reference).expect("serializable")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The headline differential property: for random cells and two random
    /// interruption points (including round 0 and the final round as edge
    /// cases of the draw), every profiler kind finishes byte-identically
    /// after resume, for all three code families.
    #[test]
    fn resume_equals_uninterrupted_for_all_kinds_and_codes(
        seed in 0u64..200,
        specs in proptest::collection::vec(
            (
                proptest::collection::vec(0usize..64, 1..4),
                proptest::sample::select(vec![0.5f64, 0.75, 1.0]),
                any::<u64>(),
            ),
            1..4,
        ),
        first_freeze in 0usize..=ROUNDS,
        second_freeze in 0usize..=ROUNDS,
    ) {
        let mut freeze_at = [first_freeze, second_freeze];
        freeze_at.sort_unstable();
        let hamming = HammingCode::random(DATA_BITS, seed).expect("valid Hamming code");
        let secded = ExtendedHammingCode::random(DATA_BITS, seed).expect("valid SEC-DED code");
        let bch = BchCode::dec(DATA_BITS).expect("valid BCH code");
        for kind in ProfilerKind::ALL {
            assert_resume_is_invisible(&hamming, &specs, kind, &freeze_at);
            assert_resume_is_invisible(&secded, &specs, kind, &freeze_at);
            assert_resume_is_invisible(&bch, &specs, kind, &freeze_at);
        }
    }
}

/// A sweep configuration small enough to run the full distributed pipeline
/// in-process, but with multiple codes, cells, and words so the grouping
/// and ordering logic is actually exercised.
fn tiny_config() -> EvaluationConfig {
    EvaluationConfig {
        data_bits: DATA_BITS,
        num_codes: 2,
        words_per_code: 3,
        rounds: 12,
        error_counts: vec![2, 3],
        probabilities: vec![0.5],
        pattern: DataPattern::Random,
        base_seed: 0xC4EC_1D0F,
        threads: 2,
    }
}

/// Profilers used by the sweep-level tests (kept below the full set so the
/// in-process sweeps stay fast; the campaign-level property above already
/// covers every kind).
const SWEEP_PROFILERS: [ProfilerKind; 3] =
    [ProfilerKind::HarpU, ProfilerKind::Naive, ProfilerKind::Beep];

/// A unique scratch directory per test, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!(
            "harp_checkpoint_resume_{}_{}",
            name,
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir creatable");
        ScratchDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Asserts two sweeps are byte-identical, serialized form included.
fn assert_sweeps_identical(resumed: &CoverageSweep, reference: &CoverageSweep) {
    assert_eq!(resumed, reference);
    assert_eq!(
        serde_json::to_string(resumed).expect("serializable"),
        serde_json::to_string(reference).expect("serializable")
    );
}

/// Drives a sweep through two on-disk interruptions for an arbitrary code
/// family and asserts the result matches the given one-shot reference.
fn assert_archived_sweep_matches<C, F>(name: &str, make_code: F, reference: &CoverageSweep)
where
    C: LinearBlockCode + Clone + Send + 'static,
    F: Fn(u64) -> C + Copy,
{
    let scratch = ScratchDir::new(name);
    let config = tiny_config();

    // Run 4 rounds, archive, and forget the in-memory state.
    let mut first = ResumableSweep::new(&config, &SWEEP_PROFILERS, make_code);
    first.advance(4);
    first
        .write_archive(scratch.path())
        .expect("archive writable");
    drop(first);

    // Resume from disk, run 5 more rounds, archive again.
    let mut second = ResumableSweep::resume(scratch.path(), make_code).expect("archive readable");
    assert_eq!(second.round(), 4);
    second.advance(5);
    second
        .write_archive(scratch.path())
        .expect("archive writable");
    drop(second);

    // Resume once more and finish.
    let mut third = ResumableSweep::resume(scratch.path(), make_code).expect("archive readable");
    assert_eq!(third.round(), 9);
    third.advance(config.rounds - 9);
    assert!(third.is_complete());
    assert_sweeps_identical(&third.into_sweep(), reference);
}

/// The sweep-layer guarantee: stop/archive/resume twice, finish, and the
/// result is byte-identical to the uninterrupted one-shot sweep — for the
/// paper's SEC Hamming path and for the SEC-DED and BCH families.
#[test]
fn archived_sweeps_resume_byte_identically_for_all_code_families() {
    let config = tiny_config();

    let hamming_reference = run_coverage_sweep(&config, &SWEEP_PROFILERS);
    assert_archived_sweep_matches(
        "hamming",
        |seed| HammingCode::random(DATA_BITS, seed).expect("valid Hamming code"),
        &hamming_reference,
    );

    let secded_reference = run_coverage_sweep_with(&config, &SWEEP_PROFILERS, |seed| {
        ExtendedHammingCode::random(DATA_BITS, seed).expect("valid SEC-DED code")
    });
    assert_archived_sweep_matches(
        "secded",
        |seed| ExtendedHammingCode::random(DATA_BITS, seed).expect("valid SEC-DED code"),
        &secded_reference,
    );

    let bch_reference = run_coverage_sweep_with(&config, &SWEEP_PROFILERS, |_seed| {
        BchCode::dec(DATA_BITS).expect("valid BCH code")
    });
    assert_archived_sweep_matches(
        "bch",
        |_seed| BchCode::dec(DATA_BITS).expect("valid BCH code"),
        &bch_reference,
    );
}

/// The distribution-layer guarantee: two shard workers, each owning half
/// the code groups, plus the merge coordinator reproduce the one-shot
/// single-process sweep exactly — and the workers themselves survive an
/// on-disk interruption without perturbing the merged result.
#[test]
fn two_shard_workers_plus_merge_reproduce_the_single_process_sweep() {
    let scratch = ScratchDir::new("shards");
    let config = tiny_config();
    let make_code = |seed| HammingCode::random(DATA_BITS, seed).expect("valid Hamming code");
    let reference = run_coverage_sweep(&config, &SWEEP_PROFILERS);

    let mut shard_outputs = Vec::new();
    for index in 0..2 {
        let shard = ShardSpec::parse(&format!("{index}/2")).expect("valid shard spec");
        let dir = scratch.path().join(format!("worker{index}"));
        std::fs::create_dir_all(&dir).expect("worker dir creatable");

        // Each worker is itself interrupted mid-run and resumed from disk.
        let mut worker = ResumableSweep::sharded(&config, &SWEEP_PROFILERS, shard, make_code);
        assert!(worker.num_groups() < worker.total_groups());
        worker.advance(7);
        worker.write_archive(&dir).expect("archive writable");
        drop(worker);

        let mut worker = ResumableSweep::resume(&dir, make_code).expect("archive readable");
        assert_eq!(worker.shard(), shard);
        worker.advance(config.rounds - 7);
        assert!(worker.is_complete());

        let output = scratch.path().join(shard_file_name(shard));
        worker
            .write_shard_output(&output)
            .expect("shard output writable");
        shard_outputs.push(output);
    }

    let merged = merge_shards(&shard_outputs).expect("complete shard set merges");
    assert_sweeps_identical(&merged, &reference);

    // A merge missing one shard must fail loudly, never return a partial
    // sweep that looks complete.
    let error = merge_shards(&shard_outputs[..1]).expect_err("half a sweep must not merge");
    assert!(
        error.to_string().contains("missing"),
        "unexpected merge error: {error}"
    );
}
