//! End-to-end integration test: active profiling → error profile → repair
//! mechanism → reactive profiling, across all crates.
//!
//! This mirrors the paper's system model (Fig. 5): HARP's active phase runs
//! against the memory chip via the bypass read path, the identified bits seed
//! the memory controller's error profile, and normal operation relies on the
//! bit-repair mechanism plus the SEC secondary ECC for anything left over.

use harp_controller::MemoryController;
use harp_ecc::LinearBlockCode;
use harp_ecc::{HammingCode, SecondaryEcc};
use harp_gf2::BitVec;
use harp_memsim::fault::RetentionSampler;
use harp_memsim::pattern::DataPattern;
use harp_memsim::MemoryChip;
use harp_profiler::ProfilerKind;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds a chip with a moderate data-retention fault population.
fn build_chip(seed: u64, words: usize, rber: f64, probability: f64) -> MemoryChip {
    let code = HammingCode::random(64, seed).expect("valid code");
    let mut chip = MemoryChip::new(code.clone(), words);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA_07);
    let sampler = RetentionSampler::new(rber, probability);
    for word in 0..words {
        chip.set_fault_model(word, sampler.sample_word(code.codeword_len(), &mut rng));
    }
    chip
}

/// Runs an active profiling phase for every word of the chip and returns the
/// populated controller.
fn profile_actively(
    chip: MemoryChip,
    kind: ProfilerKind,
    rounds: usize,
    seed: u64,
) -> MemoryController {
    let mut controller = MemoryController::new(chip, SecondaryEcc::ideal_sec());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for word in 0..controller.chip().num_words() {
        let mut profiler = kind.instantiate(
            controller.chip().code(),
            DataPattern::Random,
            seed ^ word as u64,
        );
        for round in 0..rounds {
            let data = profiler.dataword_for_round(round);
            controller.chip_mut().write(word, &data);
            let observation = controller.chip().read(word, &mut rng);
            profiler.observe_round(round, &observation);
        }
        let known: Vec<usize> = profiler.known_at_risk().into_iter().collect();
        controller.profile_mut().mark_all(word, known);
    }
    controller
}

/// Exercises normal operation and returns (escaped error count, reactively
/// identified count).
fn run_normal_operation(
    controller: &mut MemoryController,
    accesses_per_word: usize,
    seed: u64,
) -> (usize, usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let payload = BitVec::ones(64);
    for word in 0..controller.chip().num_words() {
        controller.write(word, &payload);
    }
    let mut escaped = 0;
    let mut identified = 0;
    for _ in 0..accesses_per_word {
        for word in 0..controller.chip().num_words() {
            let outcome = controller.read(word, &mut rng);
            escaped += outcome.escaped_errors.len();
            identified += outcome.newly_identified.len();
        }
    }
    (escaped, identified)
}

#[test]
fn harp_active_phase_plus_reactive_profiling_prevents_all_escaped_errors() {
    let chip = build_chip(1, 24, 0.04, 0.75);
    let mut controller = profile_actively(chip, ProfilerKind::HarpU, 64, 11);
    assert!(
        controller.profile().total_bits() > 0,
        "active profiling should identify at-risk bits"
    );
    let (escaped, _identified) = run_normal_operation(&mut controller, 150, 21);
    // With all direct-error bits repaired, at most one indirect error occurs
    // at a time and the SEC secondary ECC catches it: nothing escapes.
    assert_eq!(escaped, 0, "errors escaped despite HARP profiling");
}

#[test]
fn harp_a_precomputation_reduces_reactive_identifications() {
    let chip = build_chip(2, 16, 0.04, 1.0);
    let mut harp_u = profile_actively(chip.clone(), ProfilerKind::HarpU, 32, 5);
    let mut harp_a = profile_actively(chip, ProfilerKind::HarpA, 32, 5);
    assert!(harp_a.profile().total_bits() >= harp_u.profile().total_bits());
    let (escaped_u, reactive_u) = run_normal_operation(&mut harp_u, 100, 7);
    let (escaped_a, reactive_a) = run_normal_operation(&mut harp_a, 100, 7);
    assert_eq!(escaped_u, 0);
    assert_eq!(escaped_a, 0);
    // HARP-A already knows (a superset of) what HARP-U would have to learn
    // reactively.
    assert!(reactive_a <= reactive_u);
}

#[test]
fn naive_profiling_leaves_multi_bit_errors_that_escape_the_secondary_ecc() {
    // With always-failing at-risk cells and a *short* active phase, Naive
    // misses bits (single-bit at-risk words never show up), so some words can
    // still produce multi-bit post-correction errors during operation.
    let chip = build_chip(3, 32, 0.05, 1.0);
    let mut naive = profile_actively(chip.clone(), ProfilerKind::Naive, 2, 9);
    let mut harp = profile_actively(chip, ProfilerKind::HarpU, 2, 9);
    let (escaped_naive, _) = run_normal_operation(&mut naive, 100, 13);
    let (escaped_harp, _) = run_normal_operation(&mut harp, 100, 13);
    assert_eq!(
        escaped_harp, 0,
        "HARP finds every direct bit in two rounds of charged data"
    );
    assert!(
        escaped_naive >= escaped_harp,
        "Naive should never beat HARP ({escaped_naive} vs {escaped_harp})"
    );
}

#[test]
fn reactive_profiling_safely_identifies_indirect_errors_once_direct_bits_are_repaired() {
    // HARP's key guarantee (§5.1): once every direct-error at-risk bit is in
    // the profile, at most one (indirect) post-correction error can occur at
    // a time, so the SEC secondary ECC identifies the remaining at-risk bits
    // safely during normal operation — and nothing ever escapes.
    use harp_ecc::analysis::FailureDependence;
    use harp_ecc::ErrorSpace;

    let code = HammingCode::random(64, 17).expect("valid code");
    let num_words = 8usize;
    let mut chip = MemoryChip::new(code.clone(), num_words);
    let mut indirect_truth: Vec<BTreeSet> = Vec::new();
    type BTreeSet = std::collections::BTreeSet<usize>;
    for word in 0..num_words {
        let at_risk = [word, word + 20, word + 40];
        chip.set_fault_model(word, harp_memsim::FaultModel::uniform(&at_risk, 0.5));
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        indirect_truth.push(space.indirect_at_risk().clone());
    }
    let mut controller = MemoryController::new(chip, SecondaryEcc::ideal_sec());
    // Seed the profile with exactly the direct at-risk bits (what HARP's
    // active phase would have produced).
    for word in 0..num_words {
        controller
            .profile_mut()
            .mark_all(word, [word, word + 20, word + 40]);
    }

    let payload = BitVec::ones(64);
    for word in 0..num_words {
        controller.write(word, &payload);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let mut escaped = 0usize;
    let mut reactively_identified: BTreeSet = BTreeSet::new();
    for _ in 0..400 {
        #[allow(clippy::needless_range_loop)]
        for word in 0..num_words {
            let outcome = controller.read(word, &mut rng);
            escaped += outcome.escaped_errors.len();
            for bit in outcome.newly_identified {
                reactively_identified.insert(word * 64 + bit);
                // Every reactively identified bit must be a genuine
                // indirect-error at-risk bit of that word.
                assert!(
                    indirect_truth[word].contains(&bit),
                    "word {word}: reactive profiling identified non-at-risk bit {bit}"
                );
            }
        }
    }
    assert_eq!(
        escaped, 0,
        "no error may escape once direct bits are repaired"
    );
    // At least one word has indirect at-risk bits under this configuration;
    // after 400 charged accesses at p = 0.5 the secondary ECC must have
    // caught some of them.
    let total_indirect: usize = indirect_truth.iter().map(|s| s.len()).sum();
    assert!(
        total_indirect > 0,
        "test configuration should expose indirect errors"
    );
    assert!(
        !reactively_identified.is_empty(),
        "reactive profiling identified nothing despite {total_indirect} indirect at-risk bits"
    );
}
