//! Differential equivalence suite for the burst-routed controller and
//! module read paths.
//!
//! `MemoryController::read_range` performs the chip phase of a whole word
//! range as one `MemoryChip::read_burst`; `MemoryModule::read` /
//! `read_bypass` run one burst per chip per line and assemble the cache line
//! through the precomputed `BitInterleaveMap`. The scalar twins —
//! `MemoryController::read` in a loop, `MemoryModule::read_scalar` /
//! `read_bypass_scalar` — are the deliberately simple reference
//! implementations. The properties here prove the burst paths are pure
//! execution-plan changes: for **every code family** (SEC Hamming, SEC-DED
//! extended Hamming, DEC BCH), burst outcomes are byte-identical to the
//! scalar reference — including reactive-profiling profile updates, repair
//! interactions, heterogeneous fault models, and every supported rank
//! geometry.
//!
//! This layer is what makes hot-path rewrites of the controller/module stack
//! safe to keep making: any change that perturbs a single RNG draw, decode,
//! or mapping lookup breaks these tests before it reaches an experiment.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use harp_bch::BchCode;
use harp_controller::MemoryController;
use harp_ecc::analysis::FailureDependence;
use harp_ecc::{ExtendedHammingCode, HammingCode, LinearBlockCode, SecondaryEcc};
use harp_gf2::BitVec;
use harp_memsim::{AtRiskBit, FaultModel, MemoryChip};
use harp_module::{MemoryModule, ModuleGeometry};

/// Dataword length of the controller-level properties (all three families
/// support it and it keeps BCH decoding fast).
const DATA_BITS: usize = 32;

/// Scrub rounds per property case — enough for reactive profiling to mark
/// bits in early rounds and repair them in later ones.
const ROUNDS: usize = 4;

/// One generated word: raw at-risk positions (reduced modulo the code's
/// codeword length), a per-bit probability, and a dependence selector.
type WordSpec = (Vec<usize>, f64, u8);

fn dependence_from(selector: u8) -> FailureDependence {
    match selector % 3 {
        0 => FailureDependence::TrueCell,
        1 => FailureDependence::AntiCell,
        _ => FailureDependence::DataIndependent,
    }
}

/// Builds the fault model of one word for a specific code, folding the raw
/// positions into the code's own codeword length.
fn fault_model_for(code: &dyn LinearBlockCode, spec: &WordSpec) -> FaultModel {
    let (positions, probability, dependence) = spec;
    let n = code.codeword_len();
    let mut folded: Vec<usize> = positions.iter().map(|&p| p % n).collect();
    folded.sort_unstable();
    folded.dedup();
    FaultModel::new(
        folded
            .into_iter()
            .map(|position| AtRiskBit::new(position, *probability))
            .collect(),
        dependence_from(*dependence),
    )
}

fn word_spec() -> impl Strategy<Value = WordSpec> {
    (
        proptest::collection::vec(0usize..512, 0..4),
        proptest::sample::select(vec![0.25f64, 0.5, 1.0]),
        any::<u8>(),
    )
}

/// Asserts that `read_range` over the whole chip reproduces the scalar
/// `read` loop byte for byte across several rounds, including the error
/// profile that reactive profiling accumulates along the way.
fn assert_controller_burst_matches_scalar<C: LinearBlockCode + Clone>(
    code: C,
    specs: &[WordSpec],
    seed: u64,
) {
    let build = |code: C| {
        let mut chip = MemoryChip::new(code, specs.len());
        for (word, spec) in specs.iter().enumerate() {
            chip.set_fault_model(word, fault_model_for(chip.code(), spec));
        }
        let mut controller = MemoryController::new(chip, SecondaryEcc::ideal_sec());
        for word in 0..specs.len() {
            let payload = if word % 2 == 0 {
                BitVec::ones(DATA_BITS)
            } else {
                (0..DATA_BITS).map(|i| i % 3 != 0).collect()
            };
            controller.write(word, &payload);
        }
        // A pre-seeded profile exercises the repair interaction.
        controller.profile_mut().mark(0, 1);
        controller
    };

    let mut scalar = build(code.clone());
    let mut scalar_rng = ChaCha8Rng::seed_from_u64(seed);
    let mut scalar_outcomes = Vec::new();
    for _round in 0..ROUNDS {
        for word in 0..specs.len() {
            scalar_outcomes.push(scalar.read(word, &mut scalar_rng));
        }
    }

    let mut burst = build(code.clone());
    let mut burst_rng = ChaCha8Rng::seed_from_u64(seed);
    let mut burst_outcomes = Vec::new();
    for _round in 0..ROUNDS {
        burst_outcomes.extend(burst.read_range(0..specs.len(), &mut burst_rng));
    }

    assert_eq!(
        burst_outcomes,
        scalar_outcomes,
        "burst != scalar ({})",
        code.description()
    );
    assert_eq!(
        burst.profile(),
        scalar.profile(),
        "reactive profiles diverged ({})",
        code.description()
    );
    // Byte-identical, not merely equal: the serialized archives match.
    assert_eq!(
        serde_json::to_string(&burst_outcomes).expect("serializable"),
        serde_json::to_string(&scalar_outcomes).expect("serializable")
    );
}

/// The 64-bit-on-die-word rank geometries (every family constructs a
/// 64-bit-dataword code).
fn geometries() -> Vec<ModuleGeometry> {
    vec![
        ModuleGeometry::single_chip_64(),
        ModuleGeometry::ddr5_style_subchannel(),
        ModuleGeometry::ddr4_style_rank(),
    ]
}

/// Asserts that the module's burst `read`/`read_bypass` reproduce the scalar
/// reference paths byte for byte across lines and rounds.
fn assert_module_burst_matches_scalar<C, E, F>(
    geometry: ModuleGeometry,
    specs: &[WordSpec],
    seed: u64,
    make_code: F,
) where
    C: LinearBlockCode + Clone,
    E: std::fmt::Debug,
    F: FnMut(u64) -> Result<C, E>,
{
    let lines = 2;
    let mut module =
        MemoryModule::heterogeneous_with(geometry, lines, seed, make_code).expect("module codes");
    let words_per_chip = geometry.ondie_words_per_chip();
    for (index, spec) in specs.iter().enumerate() {
        let chip = index % geometry.chips();
        let line = (index / geometry.chips()) % lines;
        let ondie_word = index % words_per_chip;
        let model = fault_model_for(module.chips()[chip].code(), spec);
        module.set_fault_model(chip, line, ondie_word, model);
    }
    for line in 0..lines {
        let payload: BitVec = (0..geometry.line_bits())
            .map(|i| (i + line) % 5 != 0)
            .collect();
        module.write(line, &payload);
    }

    let mut scalar_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5CA1);
    let mut burst_rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5CA1);
    for _round in 0..ROUNDS {
        for line in 0..lines {
            let scalar = module.read_scalar(line, &mut scalar_rng);
            let burst = module.read(line, &mut burst_rng);
            assert_eq!(burst, scalar, "decoded path diverged ({geometry})");
            assert_eq!(
                serde_json::to_string(&burst).expect("serializable"),
                serde_json::to_string(&scalar).expect("serializable")
            );
            let scalar = module.read_bypass_scalar(line, &mut scalar_rng);
            let burst = module.read_bypass(line, &mut burst_rng);
            assert_eq!(burst, scalar, "bypass path diverged ({geometry})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The headline controller property: for random multi-word chips with
    /// heterogeneous fault models, `read_range` reproduces the scalar read
    /// loop — outcomes and reactive profile — for all three code families.
    #[test]
    fn controller_read_range_is_byte_identical_to_scalar_reads(
        specs in proptest::collection::vec(word_spec(), 1..6),
        seed in any::<u64>(),
    ) {
        assert_controller_burst_matches_scalar(
            HammingCode::random(DATA_BITS, seed).expect("valid SEC Hamming code"),
            &specs,
            seed,
        );
        assert_controller_burst_matches_scalar(
            ExtendedHammingCode::random(DATA_BITS, seed).expect("valid SEC-DED code"),
            &specs,
            seed,
        );
        assert_controller_burst_matches_scalar(
            BchCode::dec(DATA_BITS).expect("valid DEC BCH code"),
            &specs,
            seed,
        );
    }

    /// The headline module property: for every 64-bit-word rank geometry and
    /// random heterogeneous fault placements, the burst line reads reproduce
    /// the scalar reference on both the decoded and bypass paths, for all
    /// three code families.
    #[test]
    fn module_burst_reads_are_byte_identical_to_scalar_reads(
        specs in proptest::collection::vec(word_spec(), 1..8),
        geometry_index in 0usize..3,
        seed in any::<u64>(),
    ) {
        let geometry = geometries()[geometry_index];
        let word_bits = geometry.ondie_word_bits();
        assert_module_burst_matches_scalar(geometry, &specs, seed, |chip_seed| {
            HammingCode::random(word_bits, chip_seed)
        });
        assert_module_burst_matches_scalar(geometry, &specs, seed, |chip_seed| {
            ExtendedHammingCode::random(word_bits, chip_seed)
        });
        let bch = BchCode::dec(word_bits).expect("valid DEC BCH code");
        assert_module_burst_matches_scalar(geometry, &specs, seed, |_chip_seed| {
            Ok::<_, harp_bch::BchError>(bch.clone())
        });
    }
}

/// A deterministic end-to-end spot check kept outside proptest so it runs
/// even under `PROPTEST_CASES=0`-style filtering: an uncorrectable pattern
/// must flow identically through both paths of both layers.
#[test]
fn uncorrectable_patterns_flow_identically_through_both_layers() {
    let specs: Vec<WordSpec> = vec![
        (vec![0, 1, 2], 1.0, 2),
        (vec![5], 1.0, 0),
        (Vec::new(), 0.5, 1),
    ];
    assert_controller_burst_matches_scalar(
        HammingCode::random(DATA_BITS, 9).expect("valid SEC Hamming code"),
        &specs,
        9,
    );
    let geometry = ModuleGeometry::ddr4_style_rank();
    assert_module_burst_matches_scalar(geometry, &specs, 9, |chip_seed| {
        HammingCode::random(geometry.ondie_word_bits(), chip_seed)
    });
}
