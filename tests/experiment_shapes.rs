//! Integration test: the reproduced experiments exhibit the qualitative
//! shapes reported in the paper, at a reduced Monte-Carlo scale.
//!
//! These are the "who wins, and roughly how" checks from DESIGN.md §4; the
//! absolute numbers differ from the paper (different sample sizes, different
//! random codes), but the orderings and end states must match.

use harp_profiler::ProfilerKind;
use harp_sim::experiments::{fig10, fig2, fig4, fig6, fig7, fig9, headline, sweep, table2};
use harp_sim::EvaluationConfig;

fn shape_config() -> EvaluationConfig {
    EvaluationConfig {
        num_codes: 3,
        words_per_code: 6,
        rounds: 128,
        error_counts: vec![2, 4],
        probabilities: vec![0.5],
        ..EvaluationConfig::quick()
    }
}

#[test]
fn fig2_shape_bit_granularity_repair_wastes_nothing_and_coarse_wastes_most() {
    let result = fig2::run();
    let at_1e3 = |g: usize| result.wasted_at(g, 1e-3).unwrap();
    assert_eq!(at_1e3(1), 0.0);
    assert!(at_1e3(1024) > at_1e3(64));
    assert!(at_1e3(64) > at_1e3(32));
    // The paper's headline: >99% waste for 1024-bit repair at RBER 6.8e-3.
    assert!(result.wasted_at(1024, 6.8e-3).unwrap() > 0.9);
}

#[test]
fn table2_shape_matches_closed_forms() {
    let result = table2::run();
    assert_eq!(result.rows.last().unwrap().post_correction_at_risk, 255);
    assert_eq!(result.rows[3].uncorrectable_patterns, 11);
}

#[test]
fn fig4_shape_post_correction_probabilities_decrease_with_error_count() {
    let config = shape_config();
    let result = fig4::run_with(&config, &[2, 4, 6], 0.5);
    let medians: Vec<f64> = result
        .points
        .iter()
        .map(|p| p.post_correction.median)
        .collect();
    // Pre-correction probability stays at ~0.5 throughout.
    for p in &result.points {
        assert!((p.pre_correction.median - 0.5).abs() < 0.2);
    }
    // Post-correction medians never exceed the pre-correction probability by
    // much and trend downwards.
    assert!(medians.iter().all(|&m| m <= 0.6));
    assert!(medians.last().unwrap() <= &(medians[0] + 0.05));
}

#[test]
fn fig6_and_fig7_shapes_harp_covers_fastest_and_bootstraps_fastest() {
    let config = shape_config();
    let shared_sweep = sweep::run_coverage_sweep(&config, &fig6::PROFILERS);
    let fig6_result = fig6::from_sweep(&shared_sweep);
    let fig7_result = fig7::from_sweep(&shared_sweep);

    for &count in &config.error_counts {
        let harp = fig6_result
            .series_for(ProfilerKind::HarpU, count, 0.5)
            .unwrap();
        let naive = fig6_result
            .series_for(ProfilerKind::Naive, count, 0.5)
            .unwrap();
        let beep = fig6_result
            .series_for(ProfilerKind::Beep, count, 0.5)
            .unwrap();
        // HARP ends at full coverage.
        assert!((harp.points.last().unwrap().1 - 1.0).abs() < 1e-9);
        // HARP dominates both baselines at every checkpoint.
        for ((_, h), (_, n)) in harp.points.iter().zip(&naive.points) {
            assert!(h + 1e-9 >= *n);
        }
        for ((_, h), (_, b)) in harp.points.iter().zip(&beep.points) {
            assert!(h + 1e-9 >= *b);
        }
        // Early-round advantage is strict: at round 1 HARP has already seen
        // every failing bit raw.
        assert!(harp.points[0].1 >= naive.points[0].1);

        let harp_boot = fig7_result.cell(ProfilerKind::HarpU, count, 0.5).unwrap();
        let naive_boot = fig7_result.cell(ProfilerKind::Naive, count, 0.5).unwrap();
        assert!(harp_boot.rounds_to_first_error.median <= naive_boot.rounds_to_first_error.median);
    }
}

#[test]
fn fig9_and_headline_shapes_harp_needs_only_sec_secondary_ecc() {
    let config = shape_config();
    let shared_sweep = sweep::run_coverage_sweep(&config, &fig9::PROFILERS);
    let fig9_result = fig9::from_sweep(&shared_sweep);

    for &count in &config.error_counts {
        for kind in [ProfilerKind::HarpU, ProfilerKind::HarpA] {
            let cell = fig9_result.cell(kind, count, 0.5).unwrap();
            let multi: f64 = cell.final_histogram.fractions[2..].iter().sum();
            assert!(multi < 1e-9, "{kind} still allows multi-bit errors");
        }
        // HARP reaches the <=1 state no later than Naive.
        let harp = fig9_result
            .rounds_to_single_error_p99(ProfilerKind::HarpU, count, 0.5)
            .unwrap();
        if let Some(naive) = fig9_result.rounds_to_single_error_p99(ProfilerKind::Naive, count, 0.5)
        {
            assert!(harp <= naive);
        }
    }

    let fig10_result = fig10::run(&config);
    let summary = headline::summarize(&config, &fig9_result, &fig10_result);
    for c in &summary.coverage {
        if let Some(ratio) = c.ratio {
            assert!(ratio <= 1.0 + 1e-9);
        }
    }
}

#[test]
fn sweep_experiments_are_identical_across_thread_counts() {
    // Cell-batched execution shards code groups across worker threads;
    // results must not depend on the shard layout. A single-threaded run is
    // the reference: an 8-thread run of the same sweep (and of the fig10
    // case study driving the same batch engine) must produce identical
    // reports, value for value and byte for byte.
    let mut config = EvaluationConfig {
        num_codes: 3,
        words_per_code: 4,
        rounds: 32,
        error_counts: vec![2, 4],
        probabilities: vec![0.5],
        ..EvaluationConfig::quick()
    };
    config.threads = 1;
    let single = sweep::run_coverage_sweep(&config, &fig6::PROFILERS);
    let single_fig10 = fig10::run_with_rbers(&config, &[0.05]);
    config.threads = 8;
    let multi = sweep::run_coverage_sweep(&config, &fig6::PROFILERS);
    let multi_fig10 = fig10::run_with_rbers(&config, &[0.05]);

    assert_eq!(single, multi, "sweep differs across thread counts");
    assert_eq!(
        single_fig10, multi_fig10,
        "fig10 case study differs across thread counts"
    );
    // Rendered experiment reports are identical too.
    assert_eq!(
        fig6::from_sweep(&single).render(),
        fig6::from_sweep(&multi).render()
    );
    assert_eq!(single_fig10.render(), multi_fig10.render());
}

#[test]
fn fig10_shape_harp_repairs_everything_and_is_fastest() {
    let config = EvaluationConfig {
        num_codes: 3,
        words_per_code: 12,
        rounds: 128,
        probabilities: vec![0.75],
        ..EvaluationConfig::quick()
    };
    let result = fig10::run_with_rbers(&config, &[0.05]);
    let harp = result.series_for(ProfilerKind::HarpU, 0.05, 0.75).unwrap();
    let naive = result.series_for(ProfilerKind::Naive, 0.05, 0.75).unwrap();
    let beep = result.series_for(ProfilerKind::Beep, 0.05, 0.75).unwrap();

    // HARP reaches zero BER after reactive profiling.
    let harp_zero = harp.rounds_to_zero_after().expect("HARP reaches zero BER");
    // Naive takes at least as long (and typically much longer).
    if let Some(naive_zero) = naive.rounds_to_zero_after() {
        assert!(harp_zero <= naive_zero)
    }
    // BEEP's final BER is no better than HARP's (the paper finds it never
    // reaches zero).
    assert!(beep.ber_after.last().unwrap().1 >= harp.ber_after.last().unwrap().1);
    // Before reactive profiling, HARP-A knows at least as much as HARP-U.
    let harp_a = result.series_for(ProfilerKind::HarpA, 0.05, 0.75).unwrap();
    assert!(harp_a.ber_before.last().unwrap().1 <= harp.ber_before.last().unwrap().1 + 1e-12);
}
