//! Protocol suite for the `harpd` daemon.
//!
//! Runs entirely over the deterministic in-process transport twin
//! ([`harp_server::transport::duplex`]) — the frames traverse the exact
//! render → bytes → parse path of the TCP transport, minus only the socket —
//! and locks down the daemon's two core guarantees:
//!
//! * **Differential** — two concurrent jobs served from the worker pool
//!   return sweeps *byte-identical* (via the deterministic
//!   [`encode_sweep`] rendering) to single-process
//!   [`run_coverage_sweep`] runs of the same configurations.
//! * **Crash durability** — a state directory left behind by a `kill -9`'d
//!   daemon (job record still `running`, archive at its last checkpoint) is
//!   picked up by the next daemon start, resumed from the checkpoint — not
//!   from round 0 — and completed byte-identical to the uninterrupted run.
//!   The same holds across a clean shutdown → restart handoff.
//!
//! Protocol-level misuse (unknown jobs, malformed frames, unusable submit
//! configurations) must answer with `error` frames on a connection that
//! stays usable, never with a dropped daemon.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use harp_ecc::HammingCode;
use harp_profiler::ProfilerKind;
use harp_server::client::{Client, WatchOutcome};
use harp_server::daemon::{Daemon, DaemonConfig, JOB_FILE};
use harp_server::transport::{duplex, FrameTransport, PairTransport};
use harp_sim::checkpoint::{encode_sweep, write_json_atomically, ResumableSweep};
use harp_sim::experiments::sweep::run_coverage_sweep;
use harp_sim::minijson::Json;
use harp_sim::EvaluationConfig;

/// A quick-scale sweep: small enough to finish in well under a second per
/// job, large enough to exercise multiple cells, codes, and checkpoints.
fn quick_scale(base_seed: u64) -> EvaluationConfig {
    EvaluationConfig {
        num_codes: 2,
        words_per_code: 3,
        rounds: 10,
        error_counts: vec![2, 3],
        probabilities: vec![0.5, 1.0],
        threads: 1,
        base_seed,
        ..EvaluationConfig::quick()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("harp_server_protocol_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Opens an in-process client connection to the daemon.
fn connect(daemon: &Daemon) -> Client<PairTransport> {
    let (client_end, server_end) = duplex();
    let handler = daemon.clone();
    std::thread::spawn(move || handler.handle(server_end));
    Client::new(client_end)
}

/// The deterministic byte rendering both sides are compared by.
fn reference_bytes(config: &EvaluationConfig, profilers: &[ProfilerKind]) -> String {
    encode_sweep(&run_coverage_sweep(config, profilers)).render()
}

fn watch_to_bytes(mut client: Client<PairTransport>, job: u64) -> (String, Vec<usize>) {
    let mut rounds_seen = Vec::new();
    let outcome = client
        .watch(job, |snapshot| rounds_seen.push(snapshot.round))
        .expect("watch succeeds");
    let WatchOutcome::Completed(sweep) = outcome else {
        panic!("job {job} did not complete: {outcome:?}");
    };
    (encode_sweep(&sweep).render(), rounds_seen)
}

#[test]
fn concurrent_jobs_match_single_process_sweeps_byte_for_byte() {
    let dir = temp_dir("differential");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).expect("daemon starts");

    // Two different configurations and lineups, submitted from two
    // connections and watched concurrently: the worker pool interleaves
    // them without the results contaminating each other.
    let config_a = quick_scale(0xA11CE);
    let kinds_a = ProfilerKind::ACTIVE_BASELINES.to_vec();
    let config_b = quick_scale(0xB0B);
    let kinds_b = vec![ProfilerKind::HarpA, ProfilerKind::HarpU];

    let mut submitter = connect(&daemon);
    let job_a = submitter.submit(&config_a, &kinds_a).expect("submit A");
    let job_b = submitter.submit(&config_b, &kinds_b).expect("submit B");
    assert_ne!(job_a, job_b);

    let watcher_a = connect(&daemon);
    let watcher_b = connect(&daemon);
    let thread_a = std::thread::spawn(move || watch_to_bytes(watcher_a, job_a));
    let thread_b = std::thread::spawn(move || watch_to_bytes(watcher_b, job_b));
    let (bytes_a, rounds_a) = thread_a.join().expect("watcher A");
    let (bytes_b, rounds_b) = thread_b.join().expect("watcher B");

    assert_eq!(
        bytes_a,
        reference_bytes(&config_a, &kinds_a),
        "job A diverged from the single-process sweep"
    );
    assert_eq!(
        bytes_b,
        reference_bytes(&config_b, &kinds_b),
        "job B diverged from the single-process sweep"
    );
    // Snapshot streams cover every round from 0 to completion, in order.
    assert_eq!(rounds_a, (0..=config_a.rounds).collect::<Vec<_>>());
    assert_eq!(rounds_b, (0..=config_b.rounds).collect::<Vec<_>>());

    connect(&daemon).shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn a_killed_daemons_jobs_resume_from_their_checkpoints() {
    let dir = temp_dir("kill9");
    let config = quick_scale(0xDEAD);
    let kinds = vec![ProfilerKind::HarpU, ProfilerKind::Naive];
    let resume_round = 4;

    // Fabricate exactly what `kill -9` leaves behind: a checkpoint archive
    // frozen mid-sweep and a job record still claiming `running` (the
    // daemon never got to update it). No daemon wrote this state, so
    // recovery cannot be relying on any in-memory handoff.
    let job_dir = dir.join("JOB_0");
    std::fs::create_dir_all(&job_dir).expect("job dir");
    let data_bits = config.data_bits;
    let make_code = |seed| HammingCode::random(data_bits, seed).expect("valid code");
    let mut sweep = ResumableSweep::new(&config, &kinds, make_code);
    sweep.advance(resume_round);
    sweep.write_archive(&job_dir).expect("mid-sweep archive");
    write_json_atomically(
        &job_dir.join(JOB_FILE),
        &Json::parse(r#"{"schema":1,"id":0,"state":"running"}"#).expect("record"),
    )
    .expect("job record");

    let daemon = Daemon::start(DaemonConfig::new(&dir)).expect("restart scans the state dir");
    let (bytes, rounds_seen) = watch_to_bytes(connect(&daemon), 0);
    assert_eq!(
        bytes,
        reference_bytes(&config, &kinds),
        "resumed job diverged from the uninterrupted sweep"
    );
    // The first snapshot is at the checkpointed round: the daemon resumed,
    // it did not restart from round 0.
    assert_eq!(rounds_seen.first(), Some(&resume_round));
    assert_eq!(rounds_seen.last(), Some(&config.rounds));

    // A fresh submission on the recovered daemon picks the next free id.
    let job = connect(&daemon)
        .submit(&quick_scale(1), &kinds)
        .expect("post-recovery submit");
    assert_eq!(job, 1);

    connect(&daemon).shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn a_clean_shutdown_hands_running_jobs_to_the_next_daemon() {
    let dir = temp_dir("handoff");
    let config = EvaluationConfig {
        rounds: 40,
        ..quick_scale(0x5EED)
    };
    let kinds = vec![ProfilerKind::HarpU];

    let first = Daemon::start(DaemonConfig {
        checkpoint_interval: 2,
        workers: 1,
        ..DaemonConfig::new(&dir)
    })
    .expect("first daemon");
    let mut client = connect(&first);
    let job = client.submit(&config, &kinds).expect("submit");
    // Let the worker make some progress before pulling the plug.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(job).expect("status");
        if status.round >= 2 || status.state == "done" {
            break;
        }
        assert!(Instant::now() < deadline, "job never progressed");
        std::thread::sleep(Duration::from_millis(10));
    }
    client.shutdown().expect("shutdown");
    first.join();

    // The second daemon finds the checkpointed job and finishes it.
    let second = Daemon::start(DaemonConfig::new(&dir)).expect("second daemon");
    let (bytes, _) = watch_to_bytes(connect(&second), job);
    assert_eq!(
        bytes,
        reference_bytes(&config, &kinds),
        "handed-off job diverged from the uninterrupted sweep"
    );
    connect(&second).shutdown().expect("shutdown");
    second.join();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn cancellation_reaches_a_terminal_state_that_survives_restart() {
    let dir = temp_dir("cancel");
    let first = Daemon::start(DaemonConfig {
        workers: 1,
        ..DaemonConfig::new(&dir)
    })
    .expect("first daemon");
    let mut client = connect(&first);
    let kinds = vec![ProfilerKind::HarpU];
    // The first job occupies the single worker; the second waits queued and
    // cancels instantly.
    let running = client
        .submit(
            &EvaluationConfig {
                rounds: 200,
                ..quick_scale(2)
            },
            &kinds,
        )
        .expect("submit running");
    let queued = client
        .submit(&quick_scale(3), &kinds)
        .expect("submit queued");
    assert_eq!(
        client.cancel(queued).expect("cancel queued").state,
        "cancelled"
    );

    // Cancelling the running job takes effect at its next round boundary.
    client.cancel(running).expect("cancel running");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = client.status(running).expect("status");
        if status.state == "cancelled" {
            break;
        }
        assert!(Instant::now() < deadline, "running job never cancelled");
        std::thread::sleep(Duration::from_millis(10));
    }
    let outcome = client.watch(running, |_| {}).expect("watch cancelled");
    assert!(matches!(outcome, WatchOutcome::Ended(ref s) if s.state == "cancelled"));
    client.shutdown().expect("shutdown");
    first.join();

    // Cancelled is terminal: a restart must not resurrect either job.
    let second = Daemon::start(DaemonConfig::new(&dir)).expect("second daemon");
    let mut client = connect(&second);
    for job in [running, queued] {
        assert_eq!(client.status(job).expect("status").state, "cancelled");
    }
    connect(&second).shutdown().expect("shutdown");
    second.join();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

#[test]
fn protocol_misuse_answers_with_errors_on_a_live_connection() {
    let dir = temp_dir("misuse");
    let daemon = Daemon::start(DaemonConfig::new(&dir)).expect("daemon");

    // Drive the raw transport directly to send frames no well-behaved
    // client would.
    let (mut raw, server_end) = duplex();
    let handler = daemon.clone();
    std::thread::spawn(move || handler.handle(server_end));
    for (frame, needle) in [
        (r#"{"job":1}"#, "no 'type'"),
        (r#"{"type":"frobnicate"}"#, "unknown request type"),
        (r#"{"type":"watch"}"#, "no numeric 'job'"),
        (r#"{"type":"status","job":42}"#, "no job 42"),
    ] {
        raw.send(&Json::parse(frame).expect("test frame"))
            .expect("send");
        let answer = raw.recv().expect("recv").expect("frame");
        assert_eq!(answer.get("type").and_then(Json::as_str), Some("error"));
        let message = answer
            .get("message")
            .and_then(Json::as_str)
            .expect("error message");
        assert!(message.contains(needle), "{frame}: {message}");
    }
    // The connection survived all of it.
    raw.send(&Json::parse(r#"{"type":"list"}"#).expect("frame"))
        .expect("send");
    let answer = raw.recv().expect("recv").expect("frame");
    assert_eq!(answer.get("type").and_then(Json::as_str), Some("jobs"));
    drop(raw);

    // Submit-side validation: the bugfixed config check rejects unusable
    // configurations at decode time, before any job state exists.
    let mut client = connect(&daemon);
    let mut bad = quick_scale(0);
    bad.rounds = 0;
    let err = client
        .submit(&bad, &[ProfilerKind::HarpU])
        .expect_err("rounds=0 must be rejected");
    assert!(err.contains("rounds"), "{err}");
    assert!(client.jobs().expect("connection still live").is_empty());

    connect(&daemon).shutdown().expect("shutdown");
    daemon.join();
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
