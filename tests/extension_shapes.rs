//! Integration tests for the extension experiments: each one must reproduce
//! the qualitative claim it was built to demonstrate at smoke scale.

use harp_module::SecondaryLayout;
use harp_sim::experiments::{ext_bch, ext_beer, ext_module, ext_repair, ext_traffic, ext_vrt};
use harp_sim::traffic::TrafficConfig;
use harp_sim::EvaluationConfig;

fn smoke() -> EvaluationConfig {
    EvaluationConfig::smoke()
}

#[test]
fn ext1_dec_bch_bounds_indirect_errors_by_two() {
    let result = ext_bch::run(&smoke());
    // Insight 2 generalized: repairing all direct-error bits bounds the
    // residual simultaneous errors by the on-die correction capability.
    assert!(result.dec_secondary_requirement() <= 2);
    for cell in &result.cells {
        assert!(cell.sec_max_after_direct_repair <= 1);
    }
    // DEC leaves no uncorrectable patterns at all for n <= 2.
    let n2 = result
        .amplification
        .iter()
        .find(|r| r.at_risk_bits == 2)
        .unwrap();
    assert_eq!(n2.dec_uncorrectable, 0);
    assert_eq!(n2.sec_uncorrectable, 1);
}

#[test]
fn ext2_beer_recovers_every_profile_and_rebuilds_small_codes() {
    let config = EvaluationConfig {
        data_bits: 32,
        num_codes: 2,
        ..smoke()
    };
    let result = ext_beer::run(&config);
    assert!(result.all_profiles_match());
    assert!(result
        .small_codes
        .iter()
        .all(|o| o.reconstructed_equivalent == Some(true)));
}

#[test]
fn ext3_aligned_layout_is_cheapest_and_bounds_hold() {
    let result = ext_module::run(&smoke());
    let aligned = result
        .ddr4_capability(SecondaryLayout::PerOnDieWord)
        .unwrap();
    let interleaved = result
        .ddr4_capability(SecondaryLayout::PerCacheLine)
        .unwrap();
    assert_eq!(aligned, 1);
    assert_eq!(interleaved, 8);
    // All three on-die ECC families go through the stress sweep; the
    // analytic bound scales with each family's correction capability.
    assert_eq!(result.stress.len(), 3);
    let geometry = harp_module::ModuleGeometry::ddr4_style_rank();
    for family in &result.stress {
        for row in &family.rows {
            for (index, layout) in SecondaryLayout::ALL.iter().enumerate() {
                assert!(
                    row.worst_per_layout[index]
                        <= layout.required_capability(&geometry, family.correction_capability),
                    "{}",
                    family.family
                );
            }
        }
    }
}

#[test]
fn ext4_fine_granularity_repair_wastes_the_least_capacity() {
    let result = ext_repair::run_with_rbers(&smoke(), &[1e-3, 1e-2]);
    // Ideal bit repair never leaves anything uncovered; coarser or
    // capacity-limited mechanisms may.
    for row in result.rows_for("ideal bit repair") {
        assert_eq!(row.uncovered, 0);
    }
    // A larger ECP budget covers at least as many bits as a smaller one at
    // the same error rate, for every on-die ECC family.
    for family in result.families() {
        for rber in [1e-3, 1e-2] {
            let ecp2 = result
                .rows
                .iter()
                .find(|r| {
                    r.family == family
                        && r.mechanism.starts_with("ECP-2")
                        && (r.rber - rber).abs() < 1e-12
                })
                .unwrap();
            let ecp6 = result
                .rows
                .iter()
                .find(|r| {
                    r.family == family
                        && r.mechanism.starts_with("ECP-6")
                        && (r.rber - rber).abs() < 1e-12
                })
                .unwrap();
            assert!(ecp6.uncovered <= ecp2.uncovered, "{family}");
        }
    }
}

#[test]
fn ext5_reactive_scrubbing_coverage_grows_with_time_and_toggle_rate() {
    let config = EvaluationConfig {
        num_codes: 2,
        words_per_code: 6,
        rounds: 64,
        ..EvaluationConfig::quick()
    };
    let result = ext_vrt::run_with_toggle_probabilities(&config, &[0.02, 0.3]);
    for cell in &result.cells {
        for window in cell.coverage_at_checkpoints.windows(2) {
            assert!(window[1] >= window[0] - 1e-12, "coverage must not decrease");
        }
    }
    let slow = result.cells[0]
        .coverage_at_checkpoints
        .last()
        .copied()
        .unwrap();
    let fast = result.cells[1]
        .coverage_at_checkpoints
        .last()
        .copied()
        .unwrap();
    assert!(fast >= slow);
}

#[test]
fn ext7_scrub_aggressiveness_trades_demand_tail_for_coverage() {
    let base = TrafficConfig {
        rber: 0.02,
        ..TrafficConfig::smoke()
    };
    let result = ext_traffic::run_with_base(&smoke(), &base);
    assert_eq!(result.cells.len(), 27);
    for family in ["SEC Hamming", "SEC-DED", "DEC BCH"] {
        let aggressive = result.cells_for(family, "aggressive", "inline")[0];
        let lazy = result.cells_for(family, "lazy", "inline")[0];
        // More frequent scrub bursts occupy the channel more often: the
        // demand p95 can only be as good as or worse than under lazy scrub…
        assert!(
            aggressive.report.latency.p95 >= lazy.report.latency.p95,
            "{family}: aggressive p95 {:?} vs lazy {:?}",
            aggressive.report.latency.p95,
            lazy.report.latency.p95
        );
        // …and in exchange full coverage arrives no later.
        match (
            aggressive.report.time_to_full_coverage,
            lazy.report.time_to_full_coverage,
        ) {
            (Some(fast), Some(slow)) => assert!(fast <= slow, "{family}"),
            (Some(_), None) => {}
            (None, slow) => assert!(slow.is_none(), "{family}"),
        }
        // Profiling under load pays off: applying identifications escapes
        // no more than observing without repairing.
        let dropped = result.cells_for(family, "aggressive", "dropped")[0];
        assert!(
            aggressive.report.escapes <= dropped.report.escapes,
            "{family}"
        );
    }
}
