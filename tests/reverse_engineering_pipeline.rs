//! Cross-crate integration test: the BEER → BEEP/HARP-A pipeline.
//!
//! The profilers that know the parity-check matrix (BEEP, HARP-A) are
//! instantiated in the paper with manufacturer-provided knowledge. This test
//! verifies that the knowledge recovered by the BEER campaign is an adequate
//! substitute: a profiler driven by the *reconstructed* code behaves exactly
//! like one driven by the secret code, while the chip itself keeps using the
//! secret code throughout.

use harp_beer::{reconstruct_equivalent_code, BeerCampaign};
use harp_ecc::analysis::FailureDependence;
use harp_ecc::LinearBlockCode;
use harp_ecc::{ErrorSpace, HammingCode};
use harp_memsim::pattern::DataPattern;
use harp_memsim::FaultModel;
use harp_profiler::{BeepProfiler, HarpAProfiler, ProfilerKind, ProfilingCampaign};

fn reverse_engineer(secret: &HammingCode, seed: u64) -> HammingCode {
    let profile = BeerCampaign::new(secret.data_len()).extract_profile(secret);
    reconstruct_equivalent_code(&profile, secret.parity_len(), seed, 200_000)
        .expect("reconstruction converges for 16-bit datawords")
}

/// HARP-A run with the reconstructed code identifies the same bits as HARP-A
/// run with the secret code, against a chip that uses the secret code.
#[test]
fn harp_a_works_identically_with_the_reconstructed_code() {
    let secret = HammingCode::random(16, 0xB0B).unwrap();
    let recovered = reverse_engineer(&secret, 3);

    // Two at-risk data bits that always fail when charged.
    let faults = FaultModel::uniform(&[2, 9], 1.0);
    let rounds = 32;
    let campaign = ProfilingCampaign::new(secret.clone(), faults, DataPattern::Random, 7);

    let with_secret = campaign.run(ProfilerKind::HarpA, rounds);
    let mut informed_by_recovery = HarpAProfiler::new(recovered.clone(), DataPattern::Random, 7);
    let with_recovered = campaign.run_profiler(&mut informed_by_recovery, rounds);

    // Identified direct-error bits must agree exactly (they come from the
    // bypass path, independent of H)...
    assert_eq!(
        with_secret.final_identified(),
        with_recovered.final_identified()
    );

    // ...and the indirect-error space implied by those direct bits is the
    // same whether computed from the secret or the reconstructed code.
    let space_secret = ErrorSpace::enumerate(&secret, &[2, 9], FailureDependence::TrueCell);
    let space_recovered = ErrorSpace::enumerate(&recovered, &[2, 9], FailureDependence::TrueCell);
    assert_eq!(
        space_secret.post_correction_at_risk(),
        space_recovered.post_correction_at_risk()
    );
}

/// The BEEP baseline needs the parity-check matrix to craft its patterns; a
/// BEEP profiler driven by the reconstructed code must still identify at-risk
/// bits on a chip that uses the secret code.
#[test]
fn beep_runs_on_the_reconstructed_code() {
    let secret = HammingCode::random(16, 0xC4FE).unwrap();
    let recovered = reverse_engineer(&secret, 11);

    let faults = FaultModel::uniform(&[1, 4, 7], 1.0);
    let campaign = ProfilingCampaign::new(secret, faults, DataPattern::Random, 21);

    let mut beep = BeepProfiler::new(recovered, DataPattern::Random, 21);
    let result = campaign.run_profiler(&mut beep, 64);
    // BEEP driven by the reconstructed code still bootstraps and identifies
    // at-risk bits. (Its coverage relative to Naive is a property of the
    // BEEP algorithm itself — see Fig. 6 — not of the reconstruction.)
    assert!(!result.final_identified().is_empty());
}

/// The family-generic pipeline closes the same loop for a SEC-DED chip: the
/// campaign observes only weight-2/3 pattern responses (every pair is
/// detected), reconstruction targets the extended family, and HARP-A driven
/// by the recovered code predicts the same indirect-error space as HARP-A
/// with full knowledge of the secret `H`.
#[test]
fn harp_a_works_identically_with_a_reconstructed_secded_code() {
    use harp_beer::CodeFamily;
    use harp_ecc::ExtendedHammingCode;

    let secret = ExtendedHammingCode::random(16, 0x5ECD).unwrap();
    let recovered = BeerCampaign::new(16)
        .reverse_engineer(&secret, CodeFamily::ExtendedHamming, 3, 500_000)
        .expect("SEC-DED reconstruction converges for 16-bit datawords");
    assert_eq!(recovered.family(), CodeFamily::ExtendedHamming);

    let faults = FaultModel::uniform(&[2, 9], 1.0);
    let rounds = 32;
    let campaign = ProfilingCampaign::new(secret.clone(), faults, DataPattern::Random, 7);

    let with_secret = campaign.run(ProfilerKind::HarpA, rounds);
    let mut informed_by_recovery = HarpAProfiler::new(recovered.clone(), DataPattern::Random, 7);
    let with_recovered = campaign.run_profiler(&mut informed_by_recovery, rounds);
    assert_eq!(
        with_secret.final_identified(),
        with_recovered.final_identified()
    );

    // The indirect-error space implied by the direct at-risk bits agrees
    // whether computed from the secret or the reconstructed code.
    let space_secret = ErrorSpace::enumerate(&secret, &[2, 9], FailureDependence::TrueCell);
    let space_recovered = ErrorSpace::enumerate(&recovered, &[2, 9], FailureDependence::TrueCell);
    assert_eq!(
        space_secret.post_correction_at_risk(),
        space_recovered.post_correction_at_risk()
    );
}
