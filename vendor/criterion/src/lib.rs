//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion 0.5 API the bench targets use —
//! [`Criterion`], [`criterion_group!`] (plain and `name/config/targets`
//! forms), [`criterion_main!`], benchmark groups, [`Bencher::iter`] and
//! [`Bencher::iter_batched`] — backed by a simple wall-clock measurement
//! loop: a short warm-up, then timed batches whose per-iteration mean,
//! median, and min/max are printed. No statistics engine, HTML reports, or
//! comparison baselines; the point is that `cargo bench` runs offline and
//! prints honest per-iteration timings.
//!
//! When the `HARP_BENCH_JSON` environment variable is set, every benchmark
//! additionally prints one machine-readable line of strict JSON prefixed
//! with `bench-json ` — the hook `harp bench-export` uses to persist the
//! repo's `BENCH_<group>.json` perf trajectory (see BENCHMARKS.md at the
//! repository root).

use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` sizes its setup batches (accepted for API
/// compatibility; the stand-in always runs one setup per iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Measurement settings shared by a group of benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 30,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample_size must be nonzero");
        self.sample_size = samples;
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(mut self, budget: Duration) -> Self {
        self.measurement_time = budget;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl AsRef<str>, mut f: F) {
        let mut bencher = Bencher::new(self.clone());
        f(&mut bencher);
        bencher.report(name.as_ref());
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl AsRef<str>, mut f: F) {
        let mut bencher = Bencher::new(self.criterion.clone());
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.as_ref()));
    }

    /// Finishes the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Collected timing for one benchmark.
#[derive(Debug, Clone, Copy)]
struct Measurement {
    iterations: u64,
    mean: Duration,
    median: Duration,
    min: Duration,
    max: Duration,
}

/// The per-benchmark measurement driver handed to bench closures.
pub struct Bencher {
    settings: Criterion,
    measurement: Option<Measurement>,
}

impl Bencher {
    fn new(settings: Criterion) -> Self {
        Self {
            settings,
            measurement: None,
        }
    }

    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.run(|| {
            black_box(routine());
        });
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut samples = Vec::new();
        let mut total_iterations = 0u64;
        let deadline = Instant::now() + self.settings.measurement_time;
        // One warm-up round.
        black_box(routine(setup()));
        for _ in 0..self.settings.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed());
            total_iterations += 1;
            if Instant::now() > deadline {
                break;
            }
        }
        self.record(samples, total_iterations);
    }

    fn run<R: FnMut()>(&mut self, mut routine: R) {
        // Warm up and estimate a batch size targeting ~1ms per sample.
        let warmup_start = Instant::now();
        let mut warmup_iterations = 0u64;
        while warmup_start.elapsed() < Duration::from_millis(20) && warmup_iterations < 1_000_000 {
            routine();
            warmup_iterations += 1;
        }
        let per_iteration =
            warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iterations.max(1));
        let batch = (1_000_000 / per_iteration.max(1)).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::new();
        let mut total_iterations = 0u64;
        let deadline = Instant::now() + self.settings.measurement_time;
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                routine();
            }
            samples.push(start.elapsed() / batch as u32);
            total_iterations += batch;
            if Instant::now() > deadline {
                break;
            }
        }
        self.record(samples, total_iterations);
    }

    fn record(&mut self, samples: Vec<Duration>, iterations: u64) {
        assert!(!samples.is_empty(), "benchmark collected no samples");
        let sum: Duration = samples.iter().sum();
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        // Even sample counts take the lower-middle sample: honest, cheap,
        // and stable for the small sample counts the stand-in collects.
        let median = sorted[(sorted.len() - 1) / 2];
        self.measurement = Some(Measurement {
            iterations,
            mean: sum / samples.len() as u32,
            median,
            min: sorted.first().copied().unwrap_or_default(),
            max: sorted.last().copied().unwrap_or_default(),
        });
    }

    fn report(&self, name: &str) {
        match &self.measurement {
            Some(m) => {
                println!(
                    "bench {name:<60} {:>12} median {:>12} mean   [{} .. {}]   ({} iters)",
                    format_duration(m.median),
                    format_duration(m.mean),
                    format_duration(m.min),
                    format_duration(m.max),
                    m.iterations,
                );
                if std::env::var_os("HARP_BENCH_JSON").is_some() {
                    let ns = |d: Duration| d.as_secs_f64() * 1e9;
                    println!(
                        "bench-json {{\"id\":\"{name}\",\"median_ns\":{},\"mean_ns\":{},\
                         \"min_ns\":{},\"max_ns\":{},\"iterations\":{}}}",
                        ns(m.median),
                        ns(m.mean),
                        ns(m.min),
                        ns(m.max),
                        m.iterations,
                    );
                }
            }
            None => println!("bench {name:<60} (no measurement recorded)"),
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut criterion = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(20));
        criterion.bench_function("smoke/iter", |b| b.iter(|| black_box(3u64).pow(7)));
        let mut group = criterion.benchmark_group("smoke");
        group.bench_function("iter_batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
