//! Offline stand-in for `serde_derive`.
//!
//! This container has no network access to crates.io, so the workspace
//! vendors a minimal serde facade (see `vendor/serde`). The facade's
//! `Serialize` / `Deserialize` traits are marker traits whose derives only
//! need the name of the deriving type; this proc-macro extracts it by a small
//! hand-rolled token walk (no `syn` / `quote` available offline).
//!
//! Limitation: the deriving type must not be generic. Every serde-derived
//! type in this workspace is concrete; the macro panics with a clear message
//! if that ever changes so the facade can be extended deliberately.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier following the `struct` / `enum` keyword.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter();
    while let Some(token) = tokens.next() {
        if let TokenTree::Ident(ident) = &token {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(name)) => {
                        if let Some(TokenTree::Punct(p)) = tokens.next() {
                            assert!(
                                p.as_char() != '<',
                                "the vendored serde derive does not support generic types \
                                 (deriving on `{name}`); extend vendor/serde_derive if needed"
                            );
                        }
                        return name.to_string();
                    }
                    other => panic!("expected a type name after `{word}`, found {other:?}"),
                }
            }
        }
    }
    panic!("serde derive: no struct/enum definition found in input");
}

// The derives register `serde` as an inert helper attribute (exactly as the
// real serde_derive does), so types can carry container attributes like
// `#[serde(try_from = "...", into = "...")]` that become meaningful the day
// the real serde is swapped back in; the stand-in itself ignores them.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
