//! Offline stand-in for `rand_chacha`, implementing a genuine ChaCha8 stream
//! generator behind the [`ChaCha8Rng`] name.
//!
//! The keystream is real ChaCha with 8 rounds; only the seeding convention
//! differs from upstream `rand_chacha` (the 64-bit seed is expanded to a
//! 256-bit key with SplitMix64 instead of zero-padding), so per-seed streams
//! are deterministic but not byte-identical to upstream. Nothing in the
//! workspace depends on upstream byte streams.

use rand::{RngCore, SeedableRng, SplitMix64};

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Key words 4..12 of the ChaCha state.
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word within `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The externally visible position of a [`ChaCha8Rng`] stream: everything
/// needed to reconstruct the generator exactly.
///
/// The keystream block is a pure function of `key` and the counter value it
/// was generated from, so the state omits it; [`ChaCha8Rng::from_state`]
/// regenerates the in-flight block on demand. This is what makes campaign
/// checkpoints compact and byte-identical on resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaCha8RngState {
    /// Key words 4..12 of the ChaCha state.
    pub key: [u32; 8],
    /// Block counter *after* the current block was generated (the freshly
    /// seeded generator starts at 0 with an exhausted block).
    pub counter: u64,
    /// Next unread word within the current block (16 = exhausted).
    pub cursor: usize,
}

impl ChaCha8Rng {
    /// Captures the stream position for later [`ChaCha8Rng::from_state`].
    pub fn state(&self) -> ChaCha8RngState {
        ChaCha8RngState {
            key: self.key,
            counter: self.counter,
            cursor: self.cursor,
        }
    }

    /// Reconstructs a generator at exactly the captured position: the next
    /// `next_u64` call returns the same value the original generator would
    /// have returned.
    pub fn from_state(state: ChaCha8RngState) -> Self {
        let mut rng = Self {
            key: state.key,
            counter: state.counter,
            block: [0; 16],
            cursor: 16,
        };
        if state.cursor < 16 {
            // The captured stream was mid-block: regenerate that block (it
            // was produced from `counter - 1`, since refill post-increments)
            // and restore the read position within it.
            rng.counter = state.counter.wrapping_sub(1);
            rng.refill();
            rng.cursor = state.cursor;
        }
        rng
    }

    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero; the counter provides the stream position.
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut expander = SplitMix64::new(seed);
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = expander.next_u64();
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor + 2 > 16 {
            self.refill();
        }
        let low = self.block[self.cursor] as u64;
        let high = self.block[self.cursor + 1] as u64;
        self.cursor += 2;
        low | (high << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn stream_is_statistically_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let trials = 20_000;
        let heads = (0..trials).filter(|_| rng.gen_bool(0.5)).count();
        let rate = heads as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = rng.next_u64();
        let mut copy = rng.clone();
        assert_eq!(rng.next_u64(), copy.next_u64());
    }

    #[test]
    fn state_round_trips_at_a_fresh_position() {
        let rng = ChaCha8Rng::seed_from_u64(7);
        let mut restored = ChaCha8Rng::from_state(rng.state());
        let mut original = rng;
        for _ in 0..64 {
            assert_eq!(original.next_u64(), restored.next_u64());
        }
    }

    #[test]
    fn state_round_trips_mid_block_and_at_block_boundaries() {
        // Sweep every cursor position across several blocks, including the
        // exhausted-block boundary where the next call triggers a refill.
        for draws in 0..40usize {
            let mut original = ChaCha8Rng::seed_from_u64(11);
            for _ in 0..draws {
                let _ = original.next_u64();
            }
            let mut restored = ChaCha8Rng::from_state(original.state());
            assert_eq!(original.state(), restored.state(), "state after {draws}");
            for _ in 0..32 {
                assert_eq!(original.next_u64(), restored.next_u64());
            }
        }
    }

    #[test]
    fn restored_generator_checkpoints_transitively() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..5 {
            let _ = rng.next_u64();
        }
        let once = ChaCha8Rng::from_state(rng.state());
        let mut twice = ChaCha8Rng::from_state(once.state());
        assert_eq!(rng.next_u64(), twice.next_u64());
    }
}
