//! Offline stand-in for `serde_json`.
//!
//! Without network access there is no real serde data model to drive, so
//! `to_string_pretty` renders values through their `Debug` implementation
//! (the vendored `serde::Serialize` marker trait requires `Debug`). The
//! output is a human-readable structured dump rather than strict JSON; the
//! CLI documents the substitution. Swap in the real `serde_json` alongside
//! the real `serde` to restore strict JSON output.

use std::fmt;

/// Error type mirroring `serde_json::Error`. The Debug renderer is
/// infallible, so this is never constructed, but the type keeps call sites
/// source-compatible.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as a pretty-printed structured dump.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(format!("{value:#?}"))
}

/// Renders `value` as a single-line structured dump.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(format!("{value:?}"))
}

#[cfg(test)]
mod tests {
    #[derive(Debug, serde::Serialize)]
    #[allow(dead_code)] // exercised through Debug rendering only
    struct Sample {
        x: u32,
        label: String,
    }

    #[test]
    fn renders_derived_types() {
        let sample = Sample {
            x: 7,
            label: "hi".to_owned(),
        };
        let text = super::to_string_pretty(&sample).unwrap();
        assert!(text.contains("x: 7"));
        assert!(super::to_string(&sample).unwrap().contains("hi"));
    }
}
