//! Offline stand-in for the `serde` facade.
//!
//! The build container has no access to crates.io, so this crate provides
//! source-compatible marker traits for the subset of serde this workspace
//! uses: `#[derive(Serialize, Deserialize)]` annotations and `T: Serialize`
//! bounds. Nothing in the workspace performs real serialization through the
//! serde data model — the CLI's `--json` dump goes through the vendored
//! `serde_json`, which renders via `Debug` — so empty marker traits suffice.
//!
//! Swapping this crate for the real `serde` (same version requirement, same
//! feature set) is a one-line change in the workspace manifest once network
//! access is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
///
/// The `Debug` supertrait is what lets the vendored `serde_json` render a
/// value without a real serialization data model.
pub trait Serialize: std::fmt::Debug {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

macro_rules! impl_markers {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {}
            impl<'de> Deserialize<'de> for $ty {}
        )*
    };
}

impl_markers!(
    bool, char, String, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeSet<T> {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de>, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}

macro_rules! impl_tuple_markers {
    ($($($name:ident)+;)+) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {}
            impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
        )+
    };
}

impl_tuple_markers! {
    A;
    A B;
    A B C;
    A B C D;
}
