//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! inner attribute), `prop_assert*` / [`prop_assume!`], [`any`], integer
//! range strategies, [`collection::btree_set`] / [`collection::vec`], and
//! [`sample::select`].
//!
//! Semantics differ from real proptest in two deliberate ways: inputs are
//! drawn from a deterministic per-test RNG stream (seeded from the test's
//! module path) rather than an entropy source, and failing cases are not
//! shrunk — the failing input values appear in the panic message location
//! instead. Both keep test runs fully reproducible offline.

pub mod strategy {
    //! Input-generation strategies.

    use rand::Rng;

    use crate::test_runner::TestRng;

    /// A source of generated test inputs.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value and samples
        /// it once.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values for which `f` returns `Some`, regenerating
        /// otherwise. `whence` names the constraint in the panic raised if no
        /// acceptable value is found within the attempt budget.
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            whence: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                whence,
                f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..1000 {
                if let Some(value) = (self.f)(self.inner.generate(rng)) {
                    return value;
                }
            }
            panic!("prop_filter_map exhausted its attempts: {}", self.whence);
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)+) => {
            $(
                #[allow(non_snake_case)]
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);

                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.generate(rng),)+)
                    }
                }
            )+
        };
    }

    impl_tuple_strategy! {
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),* $(,)?) => {
            $(
                impl Strategy for core::ops::Range<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        rng.gen_range(self.clone())
                    }
                }

                impl Strategy for core::ops::RangeInclusive<$ty> {
                    type Value = $ty;

                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        rng.gen_range(self.clone())
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Types with a canonical whole-domain strategy (see [`crate::any`]).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),* $(,)?) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut TestRng) -> $ty {
                        rand::RngCore::next_u64(rng) as $ty
                    }
                }
            )*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rand::RngCore::next_u64(rng) & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen_range(-1.0e6..1.0e6)
        }
    }

    /// Strategy returned by [`crate::any`].
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any::new()
}

pub mod test_runner {
    //! Deterministic test execution support.

    use rand::SeedableRng;

    /// The RNG driving input generation (deterministic per test).
    pub type TestRng = rand::rngs::StdRng;

    /// Builds the deterministic RNG for a named test.
    pub fn rng_for(test_path: &str) -> TestRng {
        // FNV-1a over the fully qualified test name: stable across runs and
        // independent per test.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in test_path.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(hash)
    }

    /// Per-test configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Resolves the effective case count for one property test: when the
    /// `PROPTEST_CASES` environment variable is set to a positive integer, it
    /// overrides the configured count; otherwise the configuration wins.
    ///
    /// Deviation from real proptest (which folds the variable into
    /// `Config::default()` only, so explicit `with_cases` values ignore it):
    /// here the variable overrides explicit configs too, so a CI job can
    /// elevate a whole suite — e.g. `PROPTEST_CASES=1024 cargo test` — without
    /// touching per-test annotations.
    pub fn resolved_cases(configured: u32) -> u32 {
        cases_from_override(std::env::var("PROPTEST_CASES").ok().as_deref(), configured)
    }

    /// The pure resolution rule behind [`resolved_cases`]: a parseable
    /// positive integer override wins, anything else falls back to the
    /// configured count.
    pub fn cases_from_override(override_value: Option<&str>, configured: u32) -> u32 {
        match override_value {
            Some(value) => value
                .trim()
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or(configured),
            None => configured,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use std::collections::BTreeSet;

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: a fixed length or a half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            Self {
                min: len,
                max_exclusive: len + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(range: core::ops::Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            Self {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.min..self.max_exclusive)
        }
    }

    /// Strategy producing `BTreeSet`s of distinct elements.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `BTreeSet` strategy with sizes drawn from `size`.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target {
                set.insert(self.element.generate(rng));
                attempts += 1;
                assert!(
                    attempts < 100 * (target + 1),
                    "element strategy domain too small for a set of {target}"
                );
            }
            set
        }
    }

    /// Strategy producing `Vec`s.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use rand::Rng;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among fixed alternatives.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// A strategy selecting one of `options` per case.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.gen_range(0..self.options.len());
            self.options[index].clone()
        }
    }
}

/// Property assertion (panics like `assert!` on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Property inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Declares property tests. Supports the subset of real proptest syntax used
/// in this workspace: an optional `#![proptest_config(...)]` inner attribute
/// followed by `fn name(binding in strategy, ...) { body }` items (each
/// carrying its own outer attributes such as `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let __cases = $crate::test_runner::resolved_cases(__config.cases);
                let mut __rng = $crate::test_runner::rng_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    //! The imports property tests pull in wholesale.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in 0usize..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 5);
        }

        /// Doc comments on property tests are preserved.
        #[test]
        fn sets_respect_size_and_domain(
            s in crate::collection::btree_set(0usize..16, 2..6),
        ) {
            prop_assert!((2..6).contains(&s.len()));
            prop_assert!(s.iter().all(|&v| v < 16));
        }

        #[test]
        fn assume_skips_cases(a in 0u32..4, b in 0u32..4) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn select_picks_an_option(k in crate::sample::select(vec![8usize, 16, 32])) {
            prop_assert!([8, 16, 32].contains(&k));
        }

        #[test]
        fn vecs_have_requested_length(v in crate::collection::vec(any::<bool>(), 6)) {
            prop_assert_eq!(v.len(), 6);
        }
    }

    #[test]
    fn generated_properties_exist() {
        ranges_stay_in_bounds();
        assume_skips_cases();
    }

    #[test]
    fn case_count_override_rule_prefers_valid_positive_integers() {
        // Exercises the pure rule; the env-reading wrapper is a one-liner
        // (mutating the real environment here would race with the parallel
        // property tests in this binary, which read it on startup).
        use crate::test_runner::cases_from_override;
        let configured = 24;
        assert_eq!(cases_from_override(None, configured), configured);
        assert_eq!(cases_from_override(Some("1024"), configured), 1024);
        assert_eq!(cases_from_override(Some(" 512 "), configured), 512);
        assert_eq!(
            cases_from_override(Some("not-a-number"), configured),
            configured
        );
        assert_eq!(cases_from_override(Some("0"), configured), configured);
        assert_eq!(cases_from_override(Some(""), configured), configured);
    }
}
