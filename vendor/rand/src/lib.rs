//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build container has no crates.io access, so this crate implements the
//! slice of the `rand` 0.8 API the workspace uses: [`RngCore`] / [`Rng`] /
//! [`SeedableRng`], integer and float [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`seq::SliceRandom::shuffle`], and [`rngs::StdRng`]. Generators are fully
//! deterministic per seed; exact output streams differ from upstream `rand`
//! (nothing in the workspace depends on upstream streams — only on
//! determinism and statistical quality).

/// A source of random `u64` words.
pub trait RngCore {
    /// Returns the next random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ranges that can be sampled uniformly, mirroring `rand::distributions`'
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),* $(,)?) => {
        $(
            impl SampleRange<$ty> for core::ops::Range<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    assert!(self.start < self.end, "cannot sample an empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Modulo bias is negligible for the small spans used here.
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $ty
                }
            }

            impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample an empty range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $ty
                }
            }
        )*
    };
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        let unit = unit_f64(rng.next_u64());
        let value = self.start + unit * (self.end - self.start);
        // Guard against rounding below start (matters for ranges like
        // `f64::MIN_POSITIVE..1.0` feeding a logarithm).
        if value < self.start {
            self.start
        } else {
            value
        }
    }
}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64: used to expand seeds and as the [`rngs::StdRng`] engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw state word.
    pub fn new(state: u64) -> Self {
        Self { state }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

pub mod rngs {
    //! Standard generators, mirroring `rand::rngs`.

    use super::{RngCore, SeedableRng, SplitMix64};

    /// Stand-in for `rand::rngs::StdRng` (upstream: ChaCha12; here a
    /// xoshiro256**-class generator seeded via SplitMix64 — deterministic and
    /// statistically strong for simulation purposes).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut expander = SplitMix64::new(seed);
            Self {
                s: [
                    expander.next_u64(),
                    expander.next_u64(),
                    expander.next_u64(),
                    expander.next_u64(),
                ],
            }
        }
    }
}

pub mod seq {
    //! Sequence utilities, mirroring `rand::seq`.

    use super::{Rng, RngCore};

    /// Shuffling support for slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j: usize = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    //! The parts most callers import wholesale.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let trials = 40_000;
        let hits = (0..trials).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            seen[v] = true;
        }
        assert!(seen[3..10].iter().all(|&s| s));
        for _ in 0..1000 {
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        let tiny = rng.gen_range(f64::MIN_POSITIVE..1.0);
        assert!(tiny > 0.0 && tiny < 1.0);
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut items: Vec<usize> = (0..32).collect();
        let original = items.clone();
        items.shuffle(&mut rng);
        assert_ne!(items, original, "32 elements almost surely move");
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
    }
}
