//! End-to-end case study (paper §7.4 / Fig. 10): a system that lowers the
//! DRAM refresh rate and relies on profile-guided bit repair to tolerate the
//! resulting data-retention errors.
//!
//! Run with: `cargo run --release --example data_retention_case_study`

use harp_controller::MemoryController;
use harp_ecc::LinearBlockCode;
use harp_ecc::{HammingCode, SecondaryEcc};
use harp_gf2::BitVec;
use harp_memsim::fault::RetentionSampler;
use harp_memsim::MemoryChip;
use harp_profiler::ProfilerKind;
use harp_sim::experiments::fig10;
use harp_sim::EvaluationConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: the aggregate Fig. 10 reproduction.
    let config = EvaluationConfig {
        num_codes: 3,
        words_per_code: 16,
        rounds: 128,
        probabilities: vec![0.5, 0.75],
        ..EvaluationConfig::quick()
    };
    let result = fig10::run(&config);
    println!("{}", result.render());

    // Part 2: a concrete end-to-end system walk-through on one chip.
    println!("\n--- single-chip walk-through ---");
    let code = HammingCode::random(64, 0xCA5E)?;
    let mut chip = MemoryChip::new(code.clone(), 16);
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let sampler = RetentionSampler::new(0.03, 0.75);
    for word in 0..chip.num_words() {
        let model = sampler.sample_word(code.codeword_len(), &mut rng);
        chip.set_fault_model(word, model);
    }

    // Active profiling phase: HARP-U profiles every word via the bypass path.
    let mut controller = MemoryController::new(chip, SecondaryEcc::ideal_sec());
    let rounds = 16;
    for word in 0..controller.chip().num_words() {
        let mut profiler = ProfilerKind::HarpU.instantiate(
            controller.chip().code(),
            harp_memsim::pattern::DataPattern::Random,
            word as u64,
        );
        for round in 0..rounds {
            let data = profiler.dataword_for_round(round);
            controller.chip_mut().write(word, &data);
            let obs = controller.chip().read(word, &mut rng);
            profiler.observe_round(round, &obs);
        }
        let identified: Vec<usize> = profiler.identified().iter().copied().collect();
        controller.profile_mut().mark_all(word, identified);
    }
    println!(
        "active profiling identified {} at-risk bits across {} words",
        controller.profile().total_bits(),
        controller.chip().num_words()
    );

    // Normal operation: reads go through repair + reactive profiling. Each
    // scrub pass over the chip is one `read_range` burst (a single batched
    // syndrome-kernel pass chip-side), byte-identical to a scalar read loop.
    let payload = BitVec::ones(64);
    let num_words = controller.chip().num_words();
    for word in 0..num_words {
        controller.write(word, &payload);
    }
    let mut escaped = 0usize;
    let mut identified_reactively = 0usize;
    for _ in 0..200 {
        for outcome in controller.read_range(0..num_words, &mut rng) {
            escaped += outcome.escaped_errors.len();
            identified_reactively += outcome.newly_identified.len();
        }
    }
    println!(
        "200 accesses/word of normal operation: {identified_reactively} bits identified reactively, {escaped} errors escaped"
    );
    println!("(with HARP's active phase complete, escaped errors should be 0)");
    Ok(())
}
