//! Sizing a real repair mechanism for a HARP-produced error profile.
//!
//! The paper's case study assumes an ideal repair mechanism; Table 1 surveys
//! the real designs a system would actually deploy. This example samples a
//! data-retention error population at a scaling-era raw bit error rate,
//! assumes HARP achieved full coverage (so the profile lists every at-risk
//! bit), and asks how ECP-style pointers and an ArchShield-style spare
//! region cope with that profile.
//!
//! Run with: `cargo run --example repair_capacity_planning`

use harp_controller::{ArchShieldRepair, BitRepairMechanism, EcpRepair, ErrorProfile};
use rand::{Rng, SeedableRng};

fn main() {
    let words = 16_384usize;
    let word_bits = 64usize;
    let rber = 1e-3f64;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0x2E9A12);

    // 1. The profile a full-coverage profiler (HARP) hands to the repair
    //    mechanism: every at-risk data bit of every word.
    let mut profile = ErrorProfile::new();
    for word in 0..words {
        for bit in 0..word_bits {
            if rng.gen_bool(rber) {
                profile.mark(word, bit);
            }
        }
    }
    let faulty_words = (0..words).filter(|&w| profile.count_for(w) > 0).count();
    println!(
        "population: {words} words x {word_bits} bits at RBER {rber:.0e} -> {} at-risk bits in {} words",
        profile.total_bits(),
        faulty_words
    );

    // 2. Ideal bit-granularity repair: the reference point.
    let ideal = BitRepairMechanism::new(profile.clone());
    println!(
        "\nideal bit repair        : {} spare bits, nothing left uncovered",
        ideal.spare_bits_required()
    );

    // 3. ECP-style pointers: a fixed entry budget per word.
    for entries in [2usize, 6] {
        let mut ecp = EcpRepair::new(word_bits, entries);
        let uncovered = ecp.load_profile(&profile);
        println!(
            "ECP-{entries} (per-word budget) : {} pointer entries allocated ({} metadata bits), {} at-risk bits uncovered, {} words overflowed",
            ecp.entries_used(),
            ecp.overhead_bits(),
            uncovered,
            ecp.overflowed_blocks()
        );
    }

    // 4. ArchShield-style spare region sized at 1% of all words.
    let spare_words = words / 100;
    let mut arch = ArchShieldRepair::new(spare_words);
    let unprotected = arch.load_profile(&profile);
    println!(
        "ArchShield ({spare_words} spares): {} words remapped, {} multi-bit words unprotected",
        arch.remapped_words(),
        unprotected
    );

    println!(
        "\nbit-granularity repair avoids both internal fragmentation (Fig. 2) and capacity\n\
         overflow, which is why HARP targets bit-granularity profiles in the first place"
    );
}
