//! Reverse-engineering a black-box on-die ECC with BEER and feeding the
//! result to HARP-A.
//!
//! The HARP paper's H-aware profilers assume the on-die ECC parity-check
//! matrix is known. This example shows the whole pipeline end to end: a chip
//! with a secret code is probed with pair-charged test patterns, the
//! recovered miscorrection profile is compared against ground truth, an
//! equivalent code is reconstructed, and the reconstruction is used for
//! HARP-A-style indirect-error prediction.
//!
//! Run with: `cargo run --example beer_reverse_engineering`

use harp_beer::{
    data_visible_equivalent, reconstruct_equivalent_code, BeerCampaign, MiscorrectionProfile,
};
use harp_ecc::analysis::{predict_indirect_from_direct, FailureDependence};
use harp_ecc::HammingCode;
use harp_ecc::LinearBlockCode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The manufacturer's secret: a (21, 16) on-die ECC code we pretend we
    //    cannot see. (A 16-bit dataword keeps the reconstruction step quick;
    //    the same campaign recovers the profile of (71, 64) codes as well.)
    let secret = HammingCode::random(16, 0x5EC2E7)?;
    println!("secret on-die ECC code: {secret} (invisible to the system)");

    // 2. Run the BEER campaign against the chip's normal read path.
    let campaign = BeerCampaign::new(secret.data_len());
    let profile = campaign.extract_profile(&secret);
    println!(
        "campaign programmed {} pair-charged patterns; {} pairs provoke a data-visible miscorrection",
        campaign.pattern_count(),
        profile.miscorrecting_pair_count()
    );

    // 3. The recovered profile matches the ground truth computed from the
    //    secret parity-check matrix.
    assert_eq!(profile, MiscorrectionProfile::from_code(&secret));
    println!("recovered miscorrection profile matches the secret code exactly");

    // 4. Reconstruct a concrete equivalent code from the profile alone.
    let recovered = reconstruct_equivalent_code(&profile, secret.parity_len(), 1, 200_000)?;
    println!("reconstructed an equivalent code: {recovered}");
    assert!(data_visible_equivalent(&secret, &recovered, 2));

    // 5. Use the reconstruction the way HARP-A would: predict bits at risk of
    //    indirect error from a set of direct-error bits found during active
    //    profiling.
    let direct = [1usize, 6, 11];
    let from_secret = predict_indirect_from_direct(&secret, &direct, FailureDependence::TrueCell);
    let from_recovered =
        predict_indirect_from_direct(&recovered, &direct, FailureDependence::TrueCell);
    println!(
        "HARP-A prediction for direct bits {direct:?}: secret code -> {from_secret:?}, \
         reconstructed code -> {from_recovered:?}"
    );
    assert_eq!(from_secret, from_recovered);
    println!("the reconstructed code drives HARP-A exactly like the secret code would");
    Ok(())
}
