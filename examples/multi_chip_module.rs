//! Laying out secondary ECC words across a multi-chip rank (§6.3).
//!
//! The paper evaluates a single memory chip per access; real systems spread
//! each cache line over several chips and beats. This example builds a
//! DDR4-style rank of eight chips (each with its own proprietary on-die ECC
//! code), injects indirect errors into several chips at once, and compares
//! the secondary-ECC strength each word layout needs.
//!
//! Run with: `cargo run --example multi_chip_module`

use harp_ecc::analysis::FailureDependence;
use harp_ecc::HammingCode;
use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;
use harp_memsim::{AtRiskBit, FaultModel};
use harp_module::{MemoryModule, ModuleGeometry, SecondaryLayout};
use rand::SeedableRng;

/// Finds two parity positions of `code` whose simultaneous failure provokes a
/// miscorrection of a *data* bit (falls back to the first two parity
/// positions if the code happens not to have such a pair).
fn miscorrecting_parity_pair(code: &HammingCode) -> [usize; 2] {
    let k = code.data_len();
    for a in k..code.codeword_len() {
        for b in (a + 1)..code.codeword_len() {
            let syndrome = code.column(a) ^ code.column(b);
            if code.position_for_syndrome(&syndrome).is_some_and(|m| m < k) {
                return [a, b];
            }
        }
    }
    [k, k + 1]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A DDR4-style rank: 8 × ×8 chips, burst 8, 64-bit on-die ECC words.
    let geometry = ModuleGeometry::ddr4_style_rank();
    println!(
        "rank geometry: {geometry}, {}-bit cache lines",
        geometry.line_bits()
    );

    // 2. The analytic requirement per layout, assuming HARP's active phase
    //    has bounded every on-die ECC word to one concurrent indirect error.
    println!("\nlayout            secondary words/access  required correction capability");
    for layout in SecondaryLayout::ALL {
        println!(
            "{:<17} {:>22}  {:>30}",
            layout.name(),
            layout.words_per_access(&geometry),
            layout.required_capability(&geometry, 1)
        );
    }

    // 3. Build the rank and make every chip's word hold an uncorrectable raw
    //    error pattern confined to its parity bits — chosen so the on-die ECC
    //    decoder miscorrects a data bit. Each on-die ECC word therefore
    //    contributes exactly one *indirect* post-correction error, the
    //    situation HARP's reactive phase faces after active profiling.
    let mut module = MemoryModule::heterogeneous(geometry, 1, 0xAA17)?;
    for chip in 0..geometry.chips() {
        let pair = miscorrecting_parity_pair(module.chips()[chip].code());
        let at_risk = pair.iter().map(|&p| AtRiskBit::new(p, 1.0)).collect();
        module.set_fault_model(
            chip,
            0,
            0,
            FaultModel::new(at_risk, FailureDependence::DataIndependent),
        );
    }
    let line = BitVec::ones(geometry.line_bits());
    module.write(0, &line);

    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let outcome = module.read(0, &mut rng);
    println!(
        "\nstress read: {} post-correction errors across the line ({} on-die corrections performed)",
        outcome.post_correction_errors.len(),
        outcome.corrections_performed
    );

    // 4. How many of those errors land inside a single secondary ECC word
    //    depends entirely on the layout.
    for layout in SecondaryLayout::ALL {
        let observed = outcome.max_errors_in_secondary_word(&geometry, layout);
        let required = layout.required_capability(&geometry, 1);
        println!(
            "{:<17} worst secondary word sees {observed} error(s)  (provisioned capability {required})",
            layout.name()
        );
        assert!(observed <= required);
    }
    println!(
        "\naligning secondary ECC words with on-die ECC words keeps a single-error-correcting \
         secondary ECC sufficient, exactly as §6.3 argues"
    );
    Ok(())
}
