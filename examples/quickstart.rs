//! Quickstart: on-die ECC basics and HARP profiling of a single ECC word.
//!
//! Run with: `cargo run --example quickstart`

use harp_ecc::analysis::FailureDependence;
use harp_ecc::LinearBlockCode;
use harp_ecc::{DecodeOutcome, ErrorSpace, HammingCode};
use harp_gf2::BitVec;
use harp_memsim::pattern::DataPattern;
use harp_memsim::FaultModel;
use harp_profiler::{ProfilerKind, ProfilingCampaign};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a (71, 64) single-error-correcting Hamming code, the
    //    configuration used by LPDDR4 on-die ECC.
    let code = HammingCode::random(64, 0xD1CE)?;
    println!("on-die ECC code: {code}");

    // 2. Encode a dataword and show that a single raw bit error is corrected.
    let data = BitVec::from_u64(64, 0xDEAD_BEEF_0123_4567);
    let mut stored = code.encode(&data);
    stored.flip(9);
    let decoded = code.decode(&stored);
    assert_eq!(decoded.dataword, data);
    println!("single raw error at bit 9 -> {:?}", decoded.outcome);

    // 3. Two simultaneous raw errors exceed the correction capability and can
    //    even introduce a *new* error (a miscorrection / indirect error).
    let mut stored = code.encode(&data);
    stored.flip(9);
    stored.flip(42);
    let decoded = code.decode(&stored);
    println!(
        "double raw error at bits 9, 42 -> {:?}, post-correction errors at {:?}",
        decoded.outcome,
        decoded.post_correction_errors(&data)
    );
    assert_ne!(decoded.outcome, DecodeOutcome::NoErrorDetected);

    // 4. Ground truth: which data bits are at risk if bits 9 and 42 are the
    //    word's at-risk cells?
    let space = ErrorSpace::enumerate(&code, &[9, 42], FailureDependence::TrueCell);
    println!(
        "at-risk bits: direct {:?}, indirect {:?}",
        space.direct_at_risk(),
        space.indirect_at_risk()
    );

    // 5. Profile the word with HARP-U and with the Naive baseline.
    let faults = FaultModel::uniform(&[9, 42], 0.5);
    let campaign = ProfilingCampaign::new(code, faults, DataPattern::Random, 7);
    for kind in [ProfilerKind::HarpU, ProfilerKind::Naive] {
        let result = campaign.run(kind, 32);
        println!(
            "{:<7} identified after 32 rounds: {:?}",
            kind.name(),
            result.final_identified()
        );
    }
    Ok(())
}
