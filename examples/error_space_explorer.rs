//! Explore how on-die ECC amplifies a handful of at-risk cells into a much
//! larger set of at-risk data bits (the paper's §4.1 / Table 2), using exact
//! enumeration on concrete random codes.
//!
//! Run with: `cargo run --release --example error_space_explorer [n_at_risk]`

use harp_ecc::analysis::{combinatorics, FailureDependence};
use harp_ecc::LinearBlockCode;
use harp_ecc::{ErrorSpace, HammingCode};
use harp_sim::experiments::table2;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_at_risk: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    println!("{}", table2::run().render());

    println!("Exact enumeration on 8 random (71, 64) codes with {n_at_risk} at-risk cells each:\n");
    println!(
        "{:<6} {:<14} {:<10} {:<10} {:<12} {:<10}",
        "code", "at-risk cells", "direct", "indirect", "total", "worst case"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for code_index in 0..8u64 {
        let code = HammingCode::random(64, code_index)?;
        let mut positions: Vec<usize> = (0..code.codeword_len()).collect();
        positions.shuffle(&mut rng);
        positions.truncate(n_at_risk);
        positions.sort_unstable();
        let space = ErrorSpace::enumerate(&code, &positions, FailureDependence::TrueCell);
        println!(
            "{:<6} {:<14} {:<10} {:<10} {:<12} {:<10}",
            code_index,
            format!("{positions:?}"),
            space.direct_at_risk().len(),
            space.indirect_at_risk().len(),
            space.post_correction_at_risk().len(),
            combinatorics::worst_case_post_correction_at_risk(n_at_risk as u32)
        );
    }
    println!(
        "\nEvery additional at-risk cell roughly doubles the worst-case number of\n\
         bits the profiler must identify — the combinatorial explosion that makes\n\
         profiling through on-die ECC hard."
    );
    Ok(())
}
