//! What changes when on-die ECC corrects two errors instead of one?
//!
//! The HARP paper analyses single-error-correcting on-die ECC and leaves
//! stronger codes to future work (§2.5, footnote 9). This example walks
//! through the double-error-correcting BCH extension: encoding/decoding,
//! miscorrections that now flip up to *two* bits, and the resulting
//! secondary-ECC requirement for HARP's reactive phase.
//!
//! Run with: `cargo run --example bch_stronger_ondie_ecc`

use std::collections::BTreeSet;

use harp_bch::analysis::combinatorics;
use harp_bch::BchCode;
use harp_ecc::analysis::FailureDependence;
use harp_ecc::ErrorSpace;
use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A (78, 64) double-error-correcting BCH code over GF(2^7).
    let code = BchCode::dec(64)?;
    println!(
        "on-die ECC: {code}, correction capability t = {}",
        code.correction_capability()
    );

    // 2. Any double raw error is corrected — the error patterns that defeat a
    //    SEC Hamming code are harmless here.
    let data = BitVec::from_u64(64, 0x0123_4567_89AB_CDEF);
    let mut stored = code.encode(&data);
    stored.flip(5);
    stored.flip(70);
    let decoded = code.decode(&stored);
    assert_eq!(decoded.dataword, data);
    println!("double raw error at bits 5 and 70 -> {:?}", decoded.outcome);

    // 3. Three raw errors exceed the capability and can miscorrect up to two
    //    additional bits — indirect errors, now bounded by t = 2.
    let mut stored = code.encode(&data);
    for bit in [3, 29, 61] {
        stored.flip(bit);
    }
    let decoded = code.decode(&stored);
    println!(
        "triple raw error -> {:?}, post-correction errors at {:?}",
        decoded.outcome,
        decoded.post_correction_errors(&data)
    );

    // 4. The paper's Table 2, recomputed for t = 2: far fewer uncorrectable
    //    pre-correction error patterns.
    println!("\nat-risk bits n | uncorrectable patterns (SEC) | uncorrectable patterns (DEC)");
    for n in 1..=8u32 {
        println!(
            "{n:>14} | {:>28} | {:>28}",
            harp_ecc::analysis::combinatorics::uncorrectable_patterns(n),
            combinatorics::uncorrectable_patterns_dec(n)
        );
    }

    // 5. HARP's insight 2 generalizes: once every direct-error bit is
    //    repaired, at most t = 2 indirect errors can occur at once, so a
    //    double-error-correcting secondary ECC suffices for reactive
    //    profiling.
    let at_risk = [2usize, 17, 40, 70, 75];
    let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
    let repaired: BTreeSet<usize> = space.direct_at_risk().clone();
    let requirement = space.max_simultaneous_errors_outside(&repaired);
    println!(
        "\nat-risk bits {at_risk:?}: {} direct, {} indirect at-risk dataword bits; \
         secondary ECC must correct {requirement} error(s) after active profiling",
        space.direct_at_risk().len(),
        space.indirect_at_risk().len()
    );
    assert!(requirement <= code.correction_capability());
    Ok(())
}
