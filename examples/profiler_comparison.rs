//! Compare the coverage of HARP-U, HARP-A, Naive, and BEEP across a small
//! Monte-Carlo population of ECC words (a reduced version of the paper's
//! Figs. 6–8).
//!
//! Run with: `cargo run --release --example profiler_comparison`

use harp_sim::experiments::{fig6, fig7, fig8, sweep};
use harp_sim::EvaluationConfig;

fn main() {
    let config = EvaluationConfig {
        num_codes: 3,
        words_per_code: 8,
        rounds: 128,
        error_counts: vec![2, 3, 4, 5],
        probabilities: vec![0.5],
        ..EvaluationConfig::quick()
    };

    println!(
        "Simulating {} ECC words per configuration...\n",
        config.words_total()
    );

    // Figs. 6 and 7 share a sweep over the three active-phase profilers.
    let active_sweep = sweep::run_coverage_sweep(&config, &fig6::PROFILERS);
    println!("{}", fig6::from_sweep(&active_sweep).render());
    println!("{}", fig7::from_sweep(&active_sweep).render());

    // Fig. 8 additionally evaluates HARP-A and HARP-A+BEEP.
    println!("{}", fig8::run(&config).render());

    println!(
        "Expected shape: HARP-U reaches coverage 1.0 within a handful of rounds;\n\
         Naive converges slowly; BEEP can plateau below full coverage; HARP-A\n\
         leaves the fewest indirect bits for reactive profiling."
    );
}
