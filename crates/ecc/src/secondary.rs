//! The secondary ECC inside the memory controller.
//!
//! HARP's reactive profiling phase (§6.3 of the paper) relies on a secondary
//! ECC whose correction capability is at least as high as the number of
//! indirect errors on-die ECC can introduce at once (one, for SEC on-die
//! ECC). The secondary ECC's job during reactive profiling is to *safely*
//! identify at-risk bits the first time they fail: every error it observes is
//! corrected and recorded into the repair mechanism's error profile.
//!
//! Two models are provided:
//!
//! * [`SecondaryEcc::ideal`] — an abstract code of configurable correction
//!   capability `t` (used for the paper's evaluations and the §6.3.2
//!   strength-ablation);
//! * [`SecondaryEcc::hamming_for`] — a concrete SEC Hamming code laid over the
//!   on-die-ECC dataword, demonstrating a realizable implementation.

use serde::{Deserialize, Serialize};

use harp_gf2::BitVec;

use crate::block::LinearBlockCode;
use crate::code::{CodeError, HammingCode};

/// What the secondary ECC observed for one read during reactive profiling.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SecondaryObservation {
    /// No post-correction error was present.
    Clean,
    /// The secondary ECC detected and corrected the error(s) and identified
    /// the listed dataword positions as at risk.
    Identified {
        /// Dataword positions identified as at risk (and corrected).
        positions: Vec<usize>,
    },
    /// The number of simultaneous errors exceeded the secondary ECC's
    /// correction capability: the error escapes to the rest of the system.
    Unsafe {
        /// Dataword positions that were actually in error.
        residual_errors: Vec<usize>,
    },
}

impl SecondaryObservation {
    /// Returns `true` if the observation was handled safely (clean or
    /// identified).
    pub fn is_safe(&self) -> bool {
        !matches!(self, SecondaryObservation::Unsafe { .. })
    }

    /// The positions identified as at risk, if any.
    pub fn identified_positions(&self) -> &[usize] {
        match self {
            SecondaryObservation::Identified { positions } => positions,
            _ => &[],
        }
    }
}

/// A secondary error-correcting code within the memory controller.
///
/// # Example
///
/// ```
/// use harp_ecc::{SecondaryEcc, SecondaryObservation};
/// use harp_gf2::BitVec;
///
/// let secondary = SecondaryEcc::ideal(1);
/// let written = BitVec::ones(64);
/// let mut observed = written.clone();
/// observed.flip(13);
/// match secondary.observe(&written, &observed) {
///     SecondaryObservation::Identified { positions } => assert_eq!(positions, vec![13]),
///     other => panic!("expected identification, got {other:?}"),
/// }
/// ```
// The `Hamming` variant embeds a full `HammingCode` (parity matrix plus its
// precomputed syndrome kernel). The size gap to `Ideal` is irrelevant here:
// a controller holds exactly one `SecondaryEcc` for its lifetime, so boxing
// the code would buy nothing and cost every caller an indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SecondaryEcc {
    /// An idealized code that corrects (and identifies) up to `capability`
    /// simultaneous errors per on-die-ECC word.
    Ideal {
        /// Maximum number of simultaneous errors handled safely.
        capability: usize,
    },
    /// A concrete systematic SEC Hamming code over the on-die-ECC dataword.
    /// Its parity bits live in the memory controller (assumed reliable).
    Hamming {
        /// The controller-side code.
        code: HammingCode,
    },
}

impl SecondaryEcc {
    /// Creates an idealized secondary ECC with the given correction
    /// capability.
    pub fn ideal(capability: usize) -> Self {
        SecondaryEcc::Ideal { capability }
    }

    /// Creates an idealized single-error-correcting secondary ECC — the
    /// configuration the paper evaluates (equal strength to on-die ECC).
    pub fn ideal_sec() -> Self {
        Self::ideal(1)
    }

    /// Creates a concrete SEC Hamming secondary ECC over a `data_bits`-bit
    /// on-die-ECC dataword.
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] if the code cannot be constructed.
    pub fn hamming_for(data_bits: usize, seed: u64) -> Result<Self, CodeError> {
        Ok(SecondaryEcc::Hamming {
            code: HammingCode::random(data_bits, seed)?,
        })
    }

    /// The number of simultaneous errors this code handles safely.
    pub fn correction_capability(&self) -> usize {
        match self {
            SecondaryEcc::Ideal { capability } => *capability,
            SecondaryEcc::Hamming { .. } => 1,
        }
    }

    /// Observes one read during reactive profiling.
    ///
    /// `written` is the dataword the memory controller wrote (which it knows
    /// at scrub/verify time); `post_correction` is the dataword returned by
    /// the memory chip after on-die ECC decoding.
    ///
    /// # Panics
    ///
    /// Panics if the two datawords have different lengths, or (for the
    /// Hamming variant) if their length does not match the code.
    pub fn observe(&self, written: &BitVec, post_correction: &BitVec) -> SecondaryObservation {
        assert_eq!(
            written.len(),
            post_correction.len(),
            "dataword length mismatch"
        );
        let actual_errors: Vec<usize> = (written ^ post_correction).iter_ones().collect();
        if actual_errors.is_empty() {
            return SecondaryObservation::Clean;
        }
        match self {
            SecondaryEcc::Ideal { capability } => {
                if actual_errors.len() <= *capability {
                    SecondaryObservation::Identified {
                        positions: actual_errors,
                    }
                } else {
                    SecondaryObservation::Unsafe {
                        residual_errors: actual_errors,
                    }
                }
            }
            SecondaryEcc::Hamming { code } => {
                // Parity is computed from the written data at write time and
                // stored reliably in the controller.
                let parity = code
                    .encode(written)
                    .slice(code.data_len(), code.codeword_len());
                let stored = post_correction.concat(&parity);
                let result = code.decode(&stored);
                match result.outcome.corrected_position() {
                    Some(position) if position < code.data_len() && result.dataword == *written => {
                        SecondaryObservation::Identified {
                            positions: vec![position],
                        }
                    }
                    _ => SecondaryObservation::Unsafe {
                        residual_errors: actual_errors,
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_sec_identifies_single_errors() {
        let secondary = SecondaryEcc::ideal_sec();
        assert_eq!(secondary.correction_capability(), 1);
        let written = BitVec::from_u64(16, 0xF0F0);
        let mut observed = written.clone();
        observed.flip(3);
        match secondary.observe(&written, &observed) {
            SecondaryObservation::Identified { positions } => assert_eq!(positions, vec![3]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn ideal_sec_flags_double_errors_as_unsafe() {
        let secondary = SecondaryEcc::ideal_sec();
        let written = BitVec::zeros(16);
        let mut observed = written.clone();
        observed.flip(3);
        observed.flip(9);
        let obs = secondary.observe(&written, &observed);
        assert!(!obs.is_safe());
        match obs {
            SecondaryObservation::Unsafe { residual_errors } => {
                assert_eq!(residual_errors, vec![3, 9]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stronger_ideal_code_handles_more_errors() {
        let secondary = SecondaryEcc::ideal(2);
        let written = BitVec::zeros(16);
        let mut observed = written.clone();
        observed.flip(3);
        observed.flip(9);
        assert!(secondary.observe(&written, &observed).is_safe());
        observed.flip(12);
        assert!(!secondary.observe(&written, &observed).is_safe());
    }

    #[test]
    fn clean_read_reports_clean() {
        let secondary = SecondaryEcc::ideal_sec();
        let written = BitVec::ones(8);
        assert_eq!(
            secondary.observe(&written, &written),
            SecondaryObservation::Clean
        );
        assert!(SecondaryObservation::Clean.is_safe());
        assert!(SecondaryObservation::Clean
            .identified_positions()
            .is_empty());
    }

    #[test]
    fn hamming_secondary_identifies_single_error() {
        let secondary = SecondaryEcc::hamming_for(64, 99).unwrap();
        assert_eq!(secondary.correction_capability(), 1);
        let written = BitVec::ones(64);
        let mut observed = written.clone();
        observed.flip(42);
        match secondary.observe(&written, &observed) {
            SecondaryObservation::Identified { positions } => assert_eq!(positions, vec![42]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn hamming_secondary_is_unsafe_on_double_error() {
        let secondary = SecondaryEcc::hamming_for(64, 100).unwrap();
        let written = BitVec::ones(64);
        let mut observed = written.clone();
        observed.flip(1);
        observed.flip(2);
        assert!(!secondary.observe(&written, &observed).is_safe());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn observe_length_mismatch_panics() {
        SecondaryEcc::ideal_sec().observe(&BitVec::zeros(8), &BitVec::zeros(9));
    }
}
