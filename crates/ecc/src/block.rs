//! The shared code-abstraction layer: [`LinearBlockCode`].
//!
//! The HARP paper's guarantees hold for *any* systematic linear block code
//! used as on-die ECC, not just the SEC Hamming codes it evaluates. This
//! trait captures exactly what the rest of the stack needs from a code —
//! systematic encoding, syndrome computation, bounded-distance decoding with
//! the shared [`DecodeOutcome`](crate::DecodeOutcome) vocabulary, and
//! parity-check structure access — so the profilers (`harp_profiler`), the
//! reverse-engineering stack (`harp_beer`), the chip model (`harp_memsim`),
//! and the Monte-Carlo experiments (`harp_sim`) are all generic over the
//! code.
//!
//! Three implementations ship with the workspace:
//!
//! | code | crate | `t` | notes |
//! |---|---|---|---|
//! | [`HammingCode`](crate::HammingCode) | `harp_ecc` | 1 | the paper's evaluated on-die ECC |
//! | [`ExtendedHammingCode`](crate::ExtendedHammingCode) | `harp_ecc` | 1 | SEC-DED; detects (instead of miscorrecting) double errors |
//! | `BchCode` | `harp_bch` | 2 | the paper's future-work DEC scenario |
//!
//! # Hot path
//!
//! Syndrome computation dominates Monte-Carlo campaign time, so the trait
//! routes it through a per-code [`SyndromeKernel`] (a word-packed copy of the
//! parity-check matrix built once at construction). [`LinearBlockCode::syndrome`]
//! uses the kernel for single reads; [`LinearBlockCode::syndromes_batch`]
//! amortizes output allocation over many reads.
//!
//! # Example: one campaign, three codes
//!
//! ```
//! use harp_ecc::{ExtendedHammingCode, HammingCode, LinearBlockCode};
//! use harp_gf2::BitVec;
//!
//! fn exercise<C: LinearBlockCode>(code: &C) {
//!     let data = BitVec::ones(code.data_len());
//!     let mut stored = code.encode(&data);
//!     stored.flip(2);
//!     let decoded = code.decode(&stored);
//!     assert_eq!(decoded.dataword, data);
//!     assert_eq!(decoded.outcome.corrected_positions(), &[2]);
//! }
//!
//! exercise(&HammingCode::random(64, 1)?);
//! exercise(&ExtendedHammingCode::random(64, 1)?);
//! # Ok::<(), harp_ecc::CodeError>(())
//! ```

use harp_gf2::{BitVec, Gf2Matrix, SyndromeKernel};

use crate::decoder::DecodeResult;
use crate::word::WordLayout;

/// A systematic linear block code over GF(2), as used for on-die ECC.
///
/// Systematic means codeword positions `0..k` hold the dataword verbatim and
/// positions `k..k+p` hold parity bits computed as `A · d` for the code's
/// parity block `A` (see [`LinearBlockCode::parity_block`]). Everything the
/// HARP analysis does — chargeability reasoning, error-space enumeration,
/// profiling, reverse engineering — only relies on this structure plus the
/// decoder, so implementing this trait is all it takes to carry a new code
/// scenario through every experiment in the workspace.
/// (`Debug` is a supertrait so code-generic campaign state — including the
/// resumable checkpoint engines holding boxed profilers — stays debuggable.)
pub trait LinearBlockCode: std::fmt::Debug {
    /// The systematic word layout (`k` data bits, then `p` parity bits).
    fn layout(&self) -> WordLayout;

    /// The number of simultaneous raw errors the decoder can correct (`t`).
    fn correction_capability(&self) -> usize;

    /// The binary parity-check matrix `H` with `H · c = 0` for every
    /// codeword `c`. Row count may exceed `p` in general (it equals `p` for
    /// every code in this workspace).
    fn parity_check_matrix(&self) -> &Gf2Matrix;

    /// The parity block `A` (`p × k`) of the systematic encoder:
    /// `parity = A · data`.
    fn parity_block(&self) -> &Gf2Matrix;

    /// The pre-packed syndrome kernel for this code's parity-check matrix
    /// (built once at construction; see [`SyndromeKernel`]).
    fn syndrome_kernel(&self) -> &SyndromeKernel;

    /// Bounded-distance decodes a stored codeword.
    ///
    /// # Panics
    ///
    /// Panics if `stored.len() != codeword_len()`.
    fn decode(&self, stored: &BitVec) -> DecodeResult;

    /// A human-readable description (e.g. `"SEC Hamming (71, 64)"`).
    fn description(&self) -> String;

    /// Bounded-distance decodes a stored codeword whose packed syndrome has
    /// already been computed (one bit per parity-check row, as produced by
    /// [`SyndromeKernel::syndrome_word`] or the batched
    /// [`SyndromeKernel::syndrome_words_into`]), writing the result into
    /// `out`'s reusable buffers.
    ///
    /// This is the hot half of the burst read path: `MemoryChip::read_burst`
    /// computes one batched kernel pass over a whole word range and then
    /// resolves each syndrome through this method, so the steady-state decode
    /// performs no heap allocation. The result must be identical to
    /// [`LinearBlockCode::decode`] on the same stored word — `decode` stays
    /// the reference implementation, and the cross-code equivalence suite
    /// asserts the agreement.
    ///
    /// The default implementation falls back to the allocating `decode`, so
    /// new code implementations are correct before they are fast.
    ///
    /// # Panics
    ///
    /// Panics if `stored.len() != codeword_len()`. `syndrome_word` must be
    /// the packed syndrome of `stored`; passing anything else is a logic
    /// error with unspecified (but memory-safe) results.
    fn decode_with_syndrome_into(
        &self,
        stored: &BitVec,
        syndrome_word: u64,
        out: &mut DecodeResult,
    ) {
        let _ = syndrome_word;
        *out = self.decode(stored);
    }

    /// Decodes a stored codeword already known to have a **zero** syndrome
    /// (a clean word), writing the result into `out`'s reusable buffers.
    ///
    /// This is the clean-word short-circuit of the bit-sliced burst read
    /// path: the batched kernel pass reports which words of a block have
    /// nonzero syndromes as a mask, and every unflagged word resolves here
    /// with no per-word syndrome state at all. Defined as
    /// `decode_with_syndrome_into(stored, 0, out)`, so it is byte-identical
    /// to the general path (and to `decode`) by construction for every
    /// implementation.
    ///
    /// # Panics
    ///
    /// Panics if `stored.len() != codeword_len()`. The caller is responsible
    /// for the zero-syndrome precondition; violating it is a logic error
    /// with unspecified (but memory-safe) results.
    fn decode_clean_into(&self, stored: &BitVec, out: &mut DecodeResult) {
        self.decode_with_syndrome_into(stored, 0, out);
    }

    // ------------------------------------------------------------------
    // Provided methods.
    // ------------------------------------------------------------------

    /// Dataword length `k`.
    fn data_len(&self) -> usize {
        self.layout().data_len()
    }

    /// Codeword length `n = k + p`.
    fn codeword_len(&self) -> usize {
        self.layout().codeword_len()
    }

    /// Number of parity bits `p`.
    fn parity_len(&self) -> usize {
        self.layout().parity_len()
    }

    /// Systematically encodes a dataword into a codeword.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != data_len()`.
    fn encode(&self, data: &BitVec) -> BitVec {
        assert_eq!(
            data.len(),
            self.data_len(),
            "dataword length mismatch: expected {}, got {}",
            self.data_len(),
            data.len()
        );
        data.concat(&self.parity_block().mul_vec(data))
    }

    /// Computes the binary syndrome `H · c` of a (possibly erroneous) stored
    /// codeword through the code's [`SyndromeKernel`].
    ///
    /// # Panics
    ///
    /// Panics if `stored.len() != codeword_len()`.
    fn syndrome(&self, stored: &BitVec) -> BitVec {
        self.syndrome_kernel().syndrome(stored)
    }

    /// Computes the syndromes of many stored codewords in one batched pass
    /// (see [`SyndromeKernel::syndromes`]).
    fn syndromes_batch(&self, stored: &[BitVec]) -> Vec<BitVec> {
        self.syndrome_kernel().syndromes(stored)
    }

    /// Convenience wrapper: encodes `data`, XORs in `error` (a
    /// codeword-length error pattern), decodes, and returns the result.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    fn encode_corrupt_decode(&self, data: &BitVec, error: &BitVec) -> DecodeResult {
        let stored = &self.encode(data) ^ error;
        self.decode(&stored)
    }

    /// Decodes a raw error pattern directly. Because the code is linear,
    /// `decode(c ⊕ e)` flips the same positions for every codeword `c`, so
    /// analyses that only need the decoder's *behaviour* on an error pattern
    /// can decode the pattern against the all-zero codeword.
    ///
    /// # Panics
    ///
    /// Panics if `error.len() != codeword_len()`.
    fn decode_error_pattern(&self, error: &BitVec) -> DecodeResult {
        self.decode(error)
    }
}

impl<C: LinearBlockCode + ?Sized> LinearBlockCode for &C {
    fn layout(&self) -> WordLayout {
        (**self).layout()
    }

    fn correction_capability(&self) -> usize {
        (**self).correction_capability()
    }

    fn parity_check_matrix(&self) -> &Gf2Matrix {
        (**self).parity_check_matrix()
    }

    fn parity_block(&self) -> &Gf2Matrix {
        (**self).parity_block()
    }

    fn syndrome_kernel(&self) -> &SyndromeKernel {
        (**self).syndrome_kernel()
    }

    fn decode(&self, stored: &BitVec) -> DecodeResult {
        (**self).decode(stored)
    }

    fn description(&self) -> String {
        (**self).description()
    }

    fn decode_with_syndrome_into(
        &self,
        stored: &BitVec,
        syndrome_word: u64,
        out: &mut DecodeResult,
    ) {
        (**self).decode_with_syndrome_into(stored, syndrome_word, out)
    }

    fn decode_clean_into(&self, stored: &BitVec, out: &mut DecodeResult) {
        (**self).decode_clean_into(stored, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExtendedHammingCode, HammingCode};

    fn codes() -> Vec<Box<dyn LinearBlockCode>> {
        vec![
            Box::new(HammingCode::random(32, 5).unwrap()),
            Box::new(ExtendedHammingCode::random(32, 5).unwrap()),
        ]
    }

    #[test]
    fn trait_and_kernel_syndromes_agree_with_the_matrix() {
        for code in codes() {
            let data = BitVec::from_u64(32, 0xDEAD_BEEF);
            let mut stored = code.encode(&data);
            assert!(code.syndrome(&stored).is_zero(), "{}", code.description());
            stored.flip(7);
            let h = code.parity_check_matrix();
            assert_eq!(code.syndrome(&stored), h.mul_vec(&stored));
        }
    }

    #[test]
    fn encode_uses_the_parity_block() {
        for code in codes() {
            let data = BitVec::from_u64(32, 0x1234_5678);
            let codeword = code.encode(&data);
            assert_eq!(codeword.slice(0, code.data_len()), data, "systematic");
            assert_eq!(
                codeword.slice(code.data_len(), code.codeword_len()),
                code.parity_block().mul_vec(&data)
            );
        }
    }

    #[test]
    fn batched_syndromes_match_single_reads() {
        for code in codes() {
            let words: Vec<BitVec> = (0..16)
                .map(|i| {
                    let mut w = code.encode(&BitVec::from_u64(32, 0xACE0 + i));
                    if i % 3 == 0 {
                        w.flip((i as usize) % w.len());
                    }
                    w
                })
                .collect();
            let batched = code.syndromes_batch(&words);
            for (word, syndrome) in words.iter().zip(&batched) {
                assert_eq!(&code.syndrome(word), syndrome);
            }
        }
    }

    #[test]
    fn error_pattern_decoding_matches_any_codeword() {
        for code in codes() {
            let error = BitVec::from_indices(code.codeword_len(), [1, 4]);
            let on_zero = code.decode_error_pattern(&error);
            let data = BitVec::ones(code.data_len());
            let on_ones = code.encode_corrupt_decode(&data, &error);
            assert_eq!(on_zero.outcome, on_ones.outcome, "{}", code.description());
        }
    }

    #[test]
    fn references_implement_the_trait() {
        let code = HammingCode::random(16, 3).unwrap();
        fn takes_generic<C: LinearBlockCode>(code: C) -> usize {
            code.codeword_len()
        }
        assert_eq!(takes_generic(&code), code.codeword_len());
    }
}
