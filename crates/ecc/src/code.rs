//! Systematic single-error-correcting Hamming code construction.
//!
//! A `(k + p, k)` SEC Hamming code is defined by a parity-check matrix
//! `H = [A | I_p]` whose columns are distinct and nonzero. Under systematic
//! encoding the codeword is `c = [d | A·d]`, the syndrome of a stored word is
//! `s = H·c'`, and a nonzero syndrome matching column `i` makes the decoder
//! flip bit `i` (§2.5 of the paper).
//!
//! Encoding, syndrome computation, and decoding are exposed through the
//! shared [`LinearBlockCode`] trait (this module only adds the
//! Hamming-specific construction and structure accessors), and the syndrome
//! path runs through a precomputed [`SyndromeKernel`].
//!
//! Real on-die ECC parity-check matrices are proprietary, so — exactly like
//! the paper's evaluation — this module can generate uniform-random systematic
//! codes for a given dataword length (e.g. `(71, 64)` and `(136, 128)`).

use std::fmt;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_gf2::{BitVec, Gf2Matrix, SyndromeKernel};

use crate::block::LinearBlockCode;
use crate::decoder::{DecodeOutcome, DecodeResult};
use crate::word::WordLayout;

/// Errors produced when constructing a [`HammingCode`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodeError {
    /// The requested dataword length cannot be protected by the requested
    /// number of parity bits (needs `2^p - p - 1 >= k`).
    DatawordTooLong {
        /// Requested dataword length.
        data_bits: usize,
        /// Parity bits available.
        parity_bits: usize,
    },
    /// A supplied parity-check column has the wrong length.
    ColumnLengthMismatch {
        /// Index of the offending data column.
        column: usize,
        /// Expected length (`p`).
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A supplied parity-check column is all-zero (errors in that bit would
    /// be undetectable, which is not a valid Hamming code).
    ZeroColumn {
        /// Index of the offending data column.
        column: usize,
    },
    /// A supplied data column equals a unit vector, colliding with one of the
    /// identity columns used for the parity bits.
    UnitColumn {
        /// Index of the offending data column.
        column: usize,
    },
    /// Two columns of the parity-check matrix are identical, so single-bit
    /// errors in those positions would be indistinguishable.
    DuplicateColumn {
        /// First column index.
        first: usize,
        /// Second column index.
        second: usize,
    },
    /// The dataword length must be nonzero.
    EmptyDataword,
}

impl fmt::Display for CodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeError::DatawordTooLong {
                data_bits,
                parity_bits,
            } => write!(
                f,
                "dataword of {data_bits} bits cannot be protected by {parity_bits} parity bits"
            ),
            CodeError::ColumnLengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "parity-check column {column} has length {actual}, expected {expected}"
            ),
            CodeError::ZeroColumn { column } => {
                write!(f, "parity-check column {column} is all-zero")
            }
            CodeError::UnitColumn { column } => write!(
                f,
                "parity-check column {column} is a unit vector reserved for a parity bit"
            ),
            CodeError::DuplicateColumn { first, second } => {
                write!(f, "parity-check columns {first} and {second} are identical")
            }
            CodeError::EmptyDataword => write!(f, "dataword length must be nonzero"),
        }
    }
}

impl std::error::Error for CodeError {}

/// The `(n, k)` shape of a code: codeword and dataword lengths.
///
/// # Example
///
/// ```
/// use harp_ecc::CodeShape;
///
/// let shape = CodeShape::for_dataword(64);
/// assert_eq!(shape.codeword_bits, 71);
/// assert_eq!(shape.parity_bits(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodeShape {
    /// Codeword length `n = k + p`.
    pub codeword_bits: usize,
    /// Dataword length `k`.
    pub data_bits: usize,
}

impl CodeShape {
    /// Returns the shape of the minimal SEC Hamming code protecting a
    /// `data_bits`-bit dataword.
    ///
    /// # Panics
    ///
    /// Panics if `data_bits == 0`.
    pub fn for_dataword(data_bits: usize) -> Self {
        assert!(data_bits > 0, "dataword length must be nonzero");
        let parity = Self::min_parity_bits(data_bits);
        Self {
            codeword_bits: data_bits + parity,
            data_bits,
        }
    }

    /// Minimal number of parity bits `p` such that `2^p - p - 1 >= k`.
    pub fn min_parity_bits(data_bits: usize) -> usize {
        let mut p = 2usize;
        loop {
            // Guard against overflow for absurd inputs; p grows logarithmically.
            let capacity = (1usize << p) - p - 1;
            if capacity >= data_bits {
                return p;
            }
            p += 1;
        }
    }

    /// Number of parity bits `p = n - k`.
    pub fn parity_bits(&self) -> usize {
        self.codeword_bits - self.data_bits
    }

    /// The systematic layout corresponding to this shape.
    pub fn layout(&self) -> WordLayout {
        WordLayout::new(self.data_bits, self.parity_bits())
    }
}

impl fmt::Display for CodeShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.codeword_bits, self.data_bits)
    }
}

/// A systematic single-error-correcting Hamming code.
///
/// The parity-check matrix has the block form `H = [A | I_p]`; the generator
/// matrix is `G = [I_k | A^T]` so that `G·H^T = 0` and data bits are stored
/// verbatim in codeword positions `0..k`. Encoding and decoding are provided
/// through [`LinearBlockCode`].
///
/// # Example
///
/// ```
/// use harp_ecc::{HammingCode, LinearBlockCode};
/// use harp_gf2::BitVec;
///
/// let code = HammingCode::paper_example();
/// assert_eq!(code.shape().to_string(), "(7, 4)");
///
/// let data = BitVec::from_u64(4, 0b1011);
/// let codeword = code.encode(&data);
/// assert_eq!(codeword.slice(0, 4), data); // systematic
/// assert!(code.syndrome(&codeword).is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HammingCode {
    layout: WordLayout,
    /// Full parity-check matrix `H = [A | I_p]`, `p × (k + p)`.
    h: Gf2Matrix,
    /// The `A` block of `H` (`p × k`): parity equations over the data bits.
    a: Gf2Matrix,
    /// Column `i` of `H`, cached for syndrome matching.
    columns: Vec<BitVec>,
    /// Word-packed copy of `H` driving the hot syndrome path.
    kernel: SyndromeKernel,
}

impl HammingCode {
    /// Builds a code from the parity-check columns assigned to the `k` data
    /// positions. Column `i` (a `p`-bit vector) is the syndrome produced by a
    /// single-bit error in data position `i`. The parity positions always use
    /// the unit columns (identity block).
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] if the columns do not define a valid SEC
    /// Hamming code (wrong length, zero, unit, or duplicate columns).
    pub fn from_data_columns(data_columns: Vec<BitVec>) -> Result<Self, CodeError> {
        if data_columns.is_empty() {
            return Err(CodeError::EmptyDataword);
        }
        let k = data_columns.len();
        let p = data_columns[0].len();
        let capacity = (1usize << p) - p - 1;
        if capacity < k {
            return Err(CodeError::DatawordTooLong {
                data_bits: k,
                parity_bits: p,
            });
        }
        for (i, col) in data_columns.iter().enumerate() {
            if col.len() != p {
                return Err(CodeError::ColumnLengthMismatch {
                    column: i,
                    expected: p,
                    actual: col.len(),
                });
            }
            if col.is_zero() {
                return Err(CodeError::ZeroColumn { column: i });
            }
            if col.count_ones() == 1 {
                return Err(CodeError::UnitColumn { column: i });
            }
        }
        for i in 0..k {
            for j in (i + 1)..k {
                if data_columns[i] == data_columns[j] {
                    return Err(CodeError::DuplicateColumn {
                        first: i,
                        second: j,
                    });
                }
            }
        }

        let layout = WordLayout::new(k, p);
        let a = Gf2Matrix::from_cols(&data_columns);
        let h = a.hstack(&Gf2Matrix::identity(p));
        let columns = (0..layout.codeword_len()).map(|i| h.col(i)).collect();
        let kernel = SyndromeKernel::new(&h);
        Ok(Self {
            layout,
            h,
            a,
            columns,
            kernel,
        })
    }

    /// Generates a uniform-random systematic SEC Hamming code for a
    /// `data_bits`-bit dataword, deterministically derived from `seed`.
    ///
    /// This mirrors the paper's methodology of simulating many
    /// randomly-generated parity-check matrices (§7.1.2) because real on-die
    /// ECC implementations are proprietary.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::EmptyDataword`] if `data_bits == 0`.
    ///
    /// # Example
    ///
    /// ```
    /// use harp_ecc::HammingCode;
    ///
    /// let a = HammingCode::random(64, 7)?;
    /// let b = HammingCode::random(64, 7)?;
    /// let c = HammingCode::random(64, 8)?;
    /// assert_eq!(a, b);  // same seed, same code
    /// assert_ne!(a, c);  // different seed, (almost surely) different code
    /// # Ok::<(), harp_ecc::CodeError>(())
    /// ```
    pub fn random(data_bits: usize, seed: u64) -> Result<Self, CodeError> {
        if data_bits == 0 {
            return Err(CodeError::EmptyDataword);
        }
        let p = CodeShape::min_parity_bits(data_bits);
        // lint:allow(rng-salt) the seed is this constructor's API parameter; callers choose the stream
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Candidate columns: all nonzero p-bit vectors with weight >= 2.
        let mut candidates: Vec<BitVec> = (1u64..(1u64 << p))
            .filter(|v| v.count_ones() >= 2)
            .map(|v| BitVec::from_u64(p, v))
            .collect();
        candidates.shuffle(&mut rng);
        candidates.truncate(data_bits);
        // Shuffle once more so the column arrangement (which the paper notes
        // is a free design degree, §2.5.2) is also randomized.
        candidates.shuffle(&mut rng);
        Self::from_data_columns(candidates)
    }

    /// The `(7, 4)` Hamming code from Equation 1 of the paper.
    pub fn paper_example() -> Self {
        let cols = vec![
            BitVec::from_bools(&[true, true, true]),
            BitVec::from_bools(&[true, true, false]),
            BitVec::from_bools(&[true, false, true]),
            BitVec::from_bools(&[false, true, true]),
        ];
        Self::from_data_columns(cols).expect("the paper's example code is valid")
    }

    /// The code's `(n, k)` shape.
    pub fn shape(&self) -> CodeShape {
        CodeShape {
            codeword_bits: self.layout.codeword_len(),
            data_bits: self.layout.data_len(),
        }
    }

    /// The `A` block of the parity-check matrix (`p × k`).
    pub fn data_block(&self) -> &Gf2Matrix {
        &self.a
    }

    /// The generator matrix `G = [I_k | A^T]` (`k × (k + p)`).
    pub fn generator_matrix(&self) -> Gf2Matrix {
        Gf2Matrix::identity(self.layout.data_len()).hstack(&self.a.transpose())
    }

    /// Column `pos` of the parity-check matrix (the syndrome a single-bit
    /// error at `pos` produces).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= codeword_len()`.
    pub fn column(&self, pos: usize) -> &BitVec {
        &self.columns[pos]
    }

    /// Finds the codeword position whose parity-check column equals
    /// `syndrome`, if any.
    pub fn position_for_syndrome(&self, syndrome: &BitVec) -> Option<usize> {
        if syndrome.is_zero() {
            return None;
        }
        self.columns.iter().position(|c| c == syndrome)
    }

    /// Finds the codeword position whose parity-check column equals the
    /// packed `p`-bit syndrome `syndrome_word` (bit `r` = syndrome row `r`),
    /// if any. The packed twin of [`HammingCode::position_for_syndrome`],
    /// used by the allocation-free burst decode path.
    pub fn position_for_syndrome_word(&self, syndrome_word: u64) -> Option<usize> {
        if syndrome_word == 0 {
            return None;
        }
        // Every column is a p-bit vector with p <= 64, so it packs into the
        // first word of its BitVec.
        self.columns
            .iter()
            .position(|c| c.to_u64() == syndrome_word)
    }
}

impl LinearBlockCode for HammingCode {
    fn layout(&self) -> WordLayout {
        self.layout
    }

    fn correction_capability(&self) -> usize {
        1
    }

    fn parity_check_matrix(&self) -> &Gf2Matrix {
        &self.h
    }

    fn parity_block(&self) -> &Gf2Matrix {
        &self.a
    }

    fn syndrome_kernel(&self) -> &SyndromeKernel {
        &self.kernel
    }

    /// Syndrome-decodes a stored codeword, returning the post-correction
    /// dataword and what the decoder believes happened.
    ///
    /// The decoder has no access to the originally written data, so a
    /// [`DecodeOutcome::Corrected`] outcome may in truth be a miscorrection;
    /// use [`crate::analysis::classify_decode`] when ground truth is
    /// available (simulation).
    fn decode(&self, stored: &BitVec) -> DecodeResult {
        let syndrome = self.syndrome(stored);
        if syndrome.is_zero() {
            return DecodeResult {
                dataword: stored.slice(0, self.layout.data_len()),
                outcome: DecodeOutcome::NoErrorDetected,
                syndrome,
            };
        }
        match self.position_for_syndrome(&syndrome) {
            Some(position) => {
                let mut corrected = stored.clone();
                corrected.flip(position);
                DecodeResult {
                    dataword: corrected.slice(0, self.layout.data_len()),
                    outcome: DecodeOutcome::corrected(position),
                    syndrome,
                }
            }
            None => DecodeResult {
                // No matching column: the decoder detects but cannot locate
                // the error, and passes the stored data bits through.
                dataword: stored.slice(0, self.layout.data_len()),
                outcome: DecodeOutcome::DetectedUncorrectable,
                syndrome,
            },
        }
    }

    fn description(&self) -> String {
        format!("SEC Hamming {}", self.shape())
    }

    fn decode_with_syndrome_into(
        &self,
        stored: &BitVec,
        syndrome_word: u64,
        out: &mut DecodeResult,
    ) {
        assert_eq!(
            stored.len(),
            self.layout.codeword_len(),
            "stored codeword length mismatch"
        );
        let k = self.layout.data_len();
        out.syndrome
            .assign_u64(self.layout.parity_len(), syndrome_word);
        out.dataword.copy_prefix_from(stored, k);
        if syndrome_word == 0 {
            out.outcome = DecodeOutcome::NoErrorDetected;
            return;
        }
        match self.position_for_syndrome_word(syndrome_word) {
            Some(position) => {
                // Parity-bit corrections never touch the dataword.
                if position < k {
                    out.dataword.flip(position);
                }
                out.outcome = DecodeOutcome::corrected(position);
            }
            None => out.outcome = DecodeOutcome::DetectedUncorrectable,
        }
    }
}

impl fmt::Display for HammingCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_for_common_datawords() {
        assert_eq!(CodeShape::for_dataword(4).codeword_bits, 7);
        assert_eq!(CodeShape::for_dataword(64).codeword_bits, 71);
        assert_eq!(CodeShape::for_dataword(128).codeword_bits, 136);
        assert_eq!(CodeShape::min_parity_bits(64), 7);
        assert_eq!(CodeShape::min_parity_bits(128), 8);
        assert_eq!(CodeShape::min_parity_bits(11), 4);
    }

    #[test]
    fn paper_example_matches_equation_1_properties() {
        let code = HammingCode::paper_example();
        assert_eq!(code.shape().to_string(), "(7, 4)");
        // G · H^T = 0.
        let g = code.generator_matrix();
        assert!(g.mul(&code.parity_check_matrix().transpose()).is_zero());
        // Systematic identity blocks.
        assert_eq!(g.col_slice(0, 4), Gf2Matrix::identity(4));
        assert_eq!(
            code.parity_check_matrix().col_slice(4, 7),
            Gf2Matrix::identity(3)
        );
    }

    #[test]
    fn random_code_is_valid_and_deterministic() {
        let a = HammingCode::random(64, 42).unwrap();
        let b = HammingCode::random(64, 42).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.shape().codeword_bits, 71);
        let g = a.generator_matrix();
        assert!(g.mul(&a.parity_check_matrix().transpose()).is_zero());
        // All columns distinct and nonzero.
        for i in 0..a.codeword_len() {
            assert!(!a.column(i).is_zero());
            for j in (i + 1)..a.codeword_len() {
                assert_ne!(a.column(i), a.column(j), "columns {i} and {j} collide");
            }
        }
    }

    #[test]
    fn random_codes_differ_across_seeds() {
        let a = HammingCode::random(64, 1).unwrap();
        let b = HammingCode::random(64, 2).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn random_136_128_code_has_expected_shape() {
        let code = HammingCode::random(128, 3).unwrap();
        assert_eq!(code.codeword_len(), 136);
        assert_eq!(code.parity_len(), 8);
    }

    #[test]
    fn encode_is_systematic_for_all_data_positions() {
        let code = HammingCode::random(32, 5).unwrap();
        for i in 0..32 {
            let data = BitVec::from_indices(32, [i]);
            let c = code.encode(&data);
            assert_eq!(c.slice(0, 32), data);
            assert!(code.syndrome(&c).is_zero());
        }
    }

    #[test]
    fn syndrome_routes_through_the_kernel() {
        let code = HammingCode::random(64, 8).unwrap();
        let data = BitVec::from_u64(64, 0x0123_4567_89AB_CDEF);
        let mut stored = code.encode(&data);
        stored.flip(42);
        assert_eq!(
            code.syndrome(&stored),
            code.parity_check_matrix().mul_vec(&stored)
        );
        assert_eq!(
            code.syndrome_kernel().syndrome(&stored),
            code.syndrome(&stored)
        );
    }

    #[test]
    fn single_error_in_any_position_is_corrected() {
        let code = HammingCode::random(16, 9).unwrap();
        let data = BitVec::from_u64(16, 0x5A5A);
        for pos in 0..code.codeword_len() {
            let error = BitVec::from_indices(code.codeword_len(), [pos]);
            let result = code.encode_corrupt_decode(&data, &error);
            assert_eq!(result.dataword, data, "error at {pos} not corrected");
            assert_eq!(result.outcome, DecodeOutcome::corrected(pos));
        }
    }

    #[test]
    fn no_error_decodes_cleanly() {
        let code = HammingCode::random(64, 11).unwrap();
        let data = BitVec::ones(64);
        let result = code.decode(&code.encode(&data));
        assert_eq!(result.outcome, DecodeOutcome::NoErrorDetected);
        assert_eq!(result.dataword, data);
        assert!(result.syndrome.is_zero());
    }

    #[test]
    fn double_error_never_restores_original_data() {
        // SEC codes cannot correct double errors: the result is either a
        // miscorrection or a detected-uncorrectable, never the written data
        // with both errors in the data region silently fixed.
        let code = HammingCode::random(16, 13).unwrap();
        let data = BitVec::from_u64(16, 0xFFFF);
        for i in 0..code.codeword_len() {
            for j in (i + 1)..code.codeword_len() {
                let error = BitVec::from_indices(code.codeword_len(), [i, j]);
                let result = code.encode_corrupt_decode(&data, &error);
                let both_parity = i >= 16 && j >= 16;
                if !both_parity {
                    assert_ne!(
                        result.dataword, data,
                        "double error ({i},{j}) silently corrected"
                    );
                }
                assert_ne!(result.outcome, DecodeOutcome::NoErrorDetected);
            }
        }
    }

    #[test]
    fn from_data_columns_rejects_invalid_inputs() {
        let p = 3;
        let good = BitVec::from_u64(p, 0b111);
        assert_eq!(
            HammingCode::from_data_columns(vec![]),
            Err(CodeError::EmptyDataword)
        );
        assert_eq!(
            HammingCode::from_data_columns(vec![BitVec::zeros(p)]),
            Err(CodeError::ZeroColumn { column: 0 })
        );
        assert_eq!(
            HammingCode::from_data_columns(vec![BitVec::from_u64(p, 0b010)]),
            Err(CodeError::UnitColumn { column: 0 })
        );
        assert_eq!(
            HammingCode::from_data_columns(vec![good.clone(), good.clone()]),
            Err(CodeError::DuplicateColumn {
                first: 0,
                second: 1
            })
        );
        assert_eq!(
            HammingCode::from_data_columns(vec![good.clone(), BitVec::from_u64(2, 0b11)]),
            Err(CodeError::ColumnLengthMismatch {
                column: 1,
                expected: 3,
                actual: 2
            })
        );
        // 3 parity bits can protect at most 4 data bits.
        let too_many: Vec<BitVec> = (0..5).map(|_| good.clone()).collect();
        assert!(matches!(
            HammingCode::from_data_columns(too_many),
            Err(CodeError::DatawordTooLong { .. })
        ));
    }

    #[test]
    fn code_error_display_is_informative() {
        let err = CodeError::DuplicateColumn {
            first: 3,
            second: 9,
        };
        assert!(err.to_string().contains("3"));
        assert!(err.to_string().contains("identical"));
    }

    #[test]
    fn position_for_syndrome_finds_every_column() {
        let code = HammingCode::random(8, 21).unwrap();
        for pos in 0..code.codeword_len() {
            assert_eq!(
                code.position_for_syndrome(code.column(pos)),
                Some(pos),
                "column {pos}"
            );
        }
        assert_eq!(
            code.position_for_syndrome(&BitVec::zeros(code.parity_len())),
            None
        );
    }

    #[test]
    fn display_mentions_shape() {
        let code = HammingCode::random(64, 77).unwrap();
        assert_eq!(code.to_string(), "SEC Hamming (71, 64)");
        assert_eq!(code.description(), "SEC Hamming (71, 64)");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn encode_decode_round_trip(
                seed in 0u64..1000,
                data_value in any::<u64>(),
                k in proptest::sample::select(vec![8usize, 16, 32, 64]),
            ) {
                let code = HammingCode::random(k, seed).unwrap();
                let data = BitVec::from_u64(k.min(64), data_value).slice(0, k);
                let result = code.decode(&code.encode(&data));
                prop_assert_eq!(result.dataword, data);
                prop_assert_eq!(result.outcome, DecodeOutcome::NoErrorDetected);
            }

            #[test]
            fn single_error_correction_property(
                seed in 0u64..500,
                data_value in any::<u64>(),
                pos_selector in any::<usize>(),
            ) {
                let code = HammingCode::random(32, seed).unwrap();
                let data = BitVec::from_u64(32, data_value & 0xFFFF_FFFF);
                let pos = pos_selector % code.codeword_len();
                let error = BitVec::from_indices(code.codeword_len(), [pos]);
                let result = code.encode_corrupt_decode(&data, &error);
                prop_assert_eq!(result.dataword, data);
            }

            #[test]
            fn generator_and_parity_check_are_orthogonal(seed in 0u64..200) {
                let code = HammingCode::random(64, seed).unwrap();
                let g = code.generator_matrix();
                prop_assert!(g.mul(&code.parity_check_matrix().transpose()).is_zero());
            }

            #[test]
            fn syndrome_of_error_pattern_is_column_xor(
                seed in 0u64..200,
                positions in proptest::collection::btree_set(0usize..71, 1..5),
            ) {
                let code = HammingCode::random(64, seed).unwrap();
                let error = BitVec::from_indices(
                    code.codeword_len(),
                    positions.iter().copied(),
                );
                // Syndrome of (codeword ^ error) equals syndrome of error,
                // which equals the XOR of the corresponding H columns.
                let data = BitVec::ones(64);
                let stored = &code.encode(&data) ^ &error;
                let mut expected = BitVec::zeros(code.parity_len());
                for &p in &positions {
                    expected ^= code.column(p);
                }
                prop_assert_eq!(code.syndrome(&stored), expected);
            }
        }
    }
}
