//! The shared decode vocabulary of the code-abstraction layer.
//!
//! Every implementation of [`LinearBlockCode`](crate::LinearBlockCode) — the
//! SEC Hamming code, the extended-Hamming SEC-DED code, and the DEC BCH code
//! in `harp_bch` — reports decode results in this one vocabulary, so the
//! profilers, the BEER reverse-engineering stack, and the simulator never
//! need code-specific result types. A decoder may flip any number of
//! positions up to its correction capability `t`, so a correction carries a
//! position *list* (length 1 for SEC codes, up to 2 for DEC BCH).
//!
//! The decoder only ever sees the stored (possibly corrupted) codeword, so a
//! reported correction may in truth be a *miscorrection* — the mechanism
//! behind the paper's indirect errors; see
//! [`GroundTruth`](crate::analysis::GroundTruth) for the simulator-side
//! classification when the injected raw error pattern is known.

use serde::{Deserialize, Serialize};

use harp_gf2::BitVec;

use crate::positions::CorrectedPositions;

/// What an on-die ECC decoder believes happened during a read.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// The syndrome was zero: either no raw error occurred or the raw errors
    /// happened to form another valid codeword (undetectable error).
    NoErrorDetected,
    /// The syndrome was consistent with a correctable error pattern and the
    /// decoder flipped the listed codeword positions (ascending, at most the
    /// code's correction capability).
    ///
    /// The position list is stored inline ([`CorrectedPositions`], capacity
    /// `t ≤ 2` — enough for every code in the workspace), so a corrected
    /// read performs no heap allocation on the outcome path; the batched
    /// burst read in `harp_memsim` relies on this.
    Corrected {
        /// Codeword positions the decoder flipped.
        positions: CorrectedPositions,
    },
    /// The syndrome was nonzero but matched no correctable pattern: the
    /// decoder detected an error it cannot locate and passed the stored data
    /// bits through unmodified.
    DetectedUncorrectable,
}

impl DecodeOutcome {
    /// A correction of a single position.
    pub fn corrected(position: usize) -> Self {
        DecodeOutcome::Corrected {
            positions: CorrectedPositions::single(position),
        }
    }

    /// A correction of several positions (sorted ascending internally; at
    /// most [`CorrectedPositions::CAPACITY`] of them).
    pub fn corrected_many<I: IntoIterator<Item = usize>>(positions: I) -> Self {
        DecodeOutcome::Corrected {
            positions: positions.into_iter().collect(),
        }
    }

    /// The codeword positions the decoder flipped (empty unless a correction
    /// was performed).
    pub fn corrected_positions(&self) -> &[usize] {
        match self {
            DecodeOutcome::Corrected { positions } => positions,
            _ => &[],
        }
    }

    /// The corrected position when the decoder flipped exactly one bit
    /// (always the case for SEC codes).
    pub fn corrected_position(&self) -> Option<usize> {
        match self.corrected_positions() {
            [position] => Some(*position),
            _ => None,
        }
    }

    /// Returns `true` if the decoder performed a correction operation.
    pub fn is_correction(&self) -> bool {
        matches!(self, DecodeOutcome::Corrected { .. })
    }

    /// The number of bit positions the decoder flipped.
    pub fn correction_count(&self) -> usize {
        self.corrected_positions().len()
    }
}

/// The full result of decoding a stored codeword.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeResult {
    /// The post-correction dataword returned to the memory controller.
    pub dataword: BitVec,
    /// What the decoder believes happened.
    pub outcome: DecodeOutcome,
    /// The raw binary syndrome `H·c'` (useful for the "syndrome on
    /// correction" transparency option discussed in §5.2 of the paper). For
    /// the BCH code this is the bit-expansion of the power sums `(S₁, S₃)`.
    pub syndrome: BitVec,
}

impl Default for DecodeResult {
    /// An empty placeholder result (zero-length dataword and syndrome), used
    /// to seed reusable decode buffers before
    /// [`decode_with_syndrome_into`](crate::LinearBlockCode::decode_with_syndrome_into)
    /// overwrites them in place.
    fn default() -> Self {
        Self {
            dataword: BitVec::default(),
            outcome: DecodeOutcome::NoErrorDetected,
            syndrome: BitVec::default(),
        }
    }
}

impl DecodeResult {
    /// Positions (dataword bit indices) where the post-correction dataword
    /// differs from `written` — i.e. the post-correction errors observed by
    /// the memory controller for this read.
    ///
    /// # Panics
    ///
    /// Panics if `written.len() != self.dataword.len()`.
    ///
    /// # Example
    ///
    /// ```
    /// use harp_ecc::{HammingCode, LinearBlockCode};
    /// use harp_gf2::BitVec;
    ///
    /// let code = HammingCode::paper_example();
    /// let data = BitVec::ones(4);
    /// // Two raw errors overwhelm a SEC code.
    /// let error = BitVec::from_indices(7, [0, 1]);
    /// let result = code.encode_corrupt_decode(&data, &error);
    /// assert!(!result.post_correction_errors(&data).is_empty());
    /// ```
    pub fn post_correction_errors(&self, written: &BitVec) -> Vec<usize> {
        assert_eq!(
            written.len(),
            self.dataword.len(),
            "dataword length mismatch"
        );
        (&self.dataword ^ written).iter_ones().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::LinearBlockCode;
    use crate::HammingCode;

    #[test]
    fn corrected_position_accessor() {
        assert_eq!(DecodeOutcome::corrected(5).corrected_position(), Some(5));
        assert_eq!(DecodeOutcome::NoErrorDetected.corrected_position(), None);
        assert_eq!(
            DecodeOutcome::DetectedUncorrectable.corrected_position(),
            None
        );
        // A multi-position correction has no single corrected position.
        assert_eq!(
            DecodeOutcome::corrected_many([2, 7]).corrected_position(),
            None
        );
        assert!(DecodeOutcome::corrected(0).is_correction());
        assert!(!DecodeOutcome::NoErrorDetected.is_correction());
    }

    #[test]
    fn corrected_many_sorts_positions() {
        assert_eq!(
            DecodeOutcome::corrected_many([9, 2]).corrected_positions(),
            &[2, 9]
        );
        assert_eq!(DecodeOutcome::corrected_many([9, 2]).correction_count(), 2);
        assert_eq!(DecodeOutcome::NoErrorDetected.correction_count(), 0);
        assert!(DecodeOutcome::NoErrorDetected
            .corrected_positions()
            .is_empty());
    }

    #[test]
    fn post_correction_errors_empty_when_clean() {
        let code = HammingCode::paper_example();
        let data = BitVec::from_u64(4, 0b0110);
        let result = code.decode(&code.encode(&data));
        assert!(result.post_correction_errors(&data).is_empty());
    }

    #[test]
    fn post_correction_errors_reports_direct_error_positions() {
        let code = HammingCode::paper_example();
        let data = BitVec::ones(4);
        // Three raw errors in data positions: at least some survive decoding.
        let error = BitVec::from_indices(7, [0, 1, 2]);
        let result = code.encode_corrupt_decode(&data, &error);
        let errors = result.post_correction_errors(&data);
        assert!(!errors.is_empty());
        for pos in errors {
            assert!(pos < 4);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn post_correction_errors_length_mismatch_panics() {
        let code = HammingCode::paper_example();
        let data = BitVec::ones(4);
        let result = code.decode(&code.encode(&data));
        result.post_correction_errors(&BitVec::ones(5));
    }
}
