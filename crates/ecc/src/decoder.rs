//! Syndrome-decoder result types.
//!
//! The decoder itself lives on [`crate::HammingCode::decode`]; this module
//! defines the result types plus the ground-truth classification used by the
//! simulator to distinguish true corrections from *miscorrections* (the
//! source of the paper's indirect errors).

use serde::{Deserialize, Serialize};

use harp_gf2::BitVec;

/// What the on-die ECC decoder believes happened during a read.
///
/// The decoder only sees the stored (possibly corrupted) codeword, so a
/// reported correction may in truth be a miscorrection; see
/// [`GroundTruth`](crate::analysis::GroundTruth) for the simulator-side view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecodeOutcome {
    /// The syndrome was zero: either no raw error occurred or the raw errors
    /// happened to form another valid codeword (undetectable error).
    NoErrorDetected,
    /// The syndrome matched parity-check column `position`, so the decoder
    /// flipped that bit.
    Corrected {
        /// Codeword position the decoder flipped.
        position: usize,
    },
    /// The syndrome was nonzero but matched no parity-check column: the
    /// decoder detected an error it cannot locate and passed the stored data
    /// bits through unmodified.
    DetectedUncorrectable,
}

impl DecodeOutcome {
    /// Returns the corrected position if the decoder performed a correction.
    pub fn corrected_position(&self) -> Option<usize> {
        match self {
            DecodeOutcome::Corrected { position } => Some(*position),
            _ => None,
        }
    }

    /// Returns `true` if the decoder performed a correction operation.
    pub fn is_correction(&self) -> bool {
        matches!(self, DecodeOutcome::Corrected { .. })
    }
}

/// The full result of decoding a stored codeword.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodeResult {
    /// The post-correction dataword returned to the memory controller.
    pub dataword: BitVec,
    /// What the decoder believes happened.
    pub outcome: DecodeOutcome,
    /// The raw syndrome `H·c'` (useful for the "syndrome on correction"
    /// transparency option discussed in §5.2 of the paper).
    pub syndrome: BitVec,
}

impl DecodeResult {
    /// Positions (dataword bit indices) where the post-correction dataword
    /// differs from `written` — i.e. the post-correction errors observed by
    /// the memory controller for this read.
    ///
    /// # Panics
    ///
    /// Panics if `written.len() != self.dataword.len()`.
    ///
    /// # Example
    ///
    /// ```
    /// use harp_ecc::HammingCode;
    /// use harp_gf2::BitVec;
    ///
    /// let code = HammingCode::paper_example();
    /// let data = BitVec::ones(4);
    /// // Two raw errors overwhelm a SEC code.
    /// let error = BitVec::from_indices(7, [0, 1]);
    /// let result = code.encode_corrupt_decode(&data, &error);
    /// assert!(!result.post_correction_errors(&data).is_empty());
    /// ```
    pub fn post_correction_errors(&self, written: &BitVec) -> Vec<usize> {
        assert_eq!(
            written.len(),
            self.dataword.len(),
            "dataword length mismatch"
        );
        (&self.dataword ^ written).iter_ones().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HammingCode;

    #[test]
    fn corrected_position_accessor() {
        assert_eq!(
            DecodeOutcome::Corrected { position: 5 }.corrected_position(),
            Some(5)
        );
        assert_eq!(DecodeOutcome::NoErrorDetected.corrected_position(), None);
        assert_eq!(
            DecodeOutcome::DetectedUncorrectable.corrected_position(),
            None
        );
        assert!(DecodeOutcome::Corrected { position: 0 }.is_correction());
        assert!(!DecodeOutcome::NoErrorDetected.is_correction());
    }

    #[test]
    fn post_correction_errors_empty_when_clean() {
        let code = HammingCode::paper_example();
        let data = BitVec::from_u64(4, 0b0110);
        let result = code.decode(&code.encode(&data));
        assert!(result.post_correction_errors(&data).is_empty());
    }

    #[test]
    fn post_correction_errors_reports_direct_error_positions() {
        let code = HammingCode::paper_example();
        let data = BitVec::ones(4);
        // Three raw errors in data positions: at least some survive decoding.
        let error = BitVec::from_indices(7, [0, 1, 2]);
        let result = code.encode_corrupt_decode(&data, &error);
        let errors = result.post_correction_errors(&data);
        assert!(!errors.is_empty());
        for pos in errors {
            assert!(pos < 4);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn post_correction_errors_length_mismatch_panics() {
        let code = HammingCode::paper_example();
        let data = BitVec::ones(4);
        let result = code.decode(&code.encode(&data));
        result.post_correction_errors(&BitVec::ones(5));
    }
}
