//! Extended Hamming (SEC-DED) codes: the third [`LinearBlockCode`]
//! implementation, proving the code-abstraction layer carries new scenarios
//! end-to-end.
//!
//! An extended Hamming code adds one overall parity bit to a SEC Hamming
//! code. The resulting `(n + 1, k)` code still corrects every single-bit
//! error, but *detects* (rather than miscorrects) every double-bit error:
//! a double error leaves the overall parity untouched while producing a
//! nonzero Hamming syndrome, which the decoder reports as
//! [`DecodeOutcome::DetectedUncorrectable`]. Under the HARP lens this is a
//! qualitatively different on-die ECC scenario: the dominant source of
//! indirect errors (pair-induced miscorrections, §4.2 of the paper) is
//! eliminated, and only odd-weight error patterns of three or more raw
//! errors can still miscorrect.
//!
//! # Example
//!
//! ```
//! use harp_ecc::{ExtendedHammingCode, LinearBlockCode};
//! use harp_gf2::BitVec;
//!
//! let code = ExtendedHammingCode::random(64, 3)?;
//! assert_eq!(code.codeword_len(), 72); // (71, 64) Hamming + overall parity
//!
//! let data = BitVec::ones(64);
//! let mut stored = code.encode(&data);
//! stored.flip(5);
//! stored.flip(9);
//! // A SEC Hamming code would miscorrect this double error; SEC-DED flags it.
//! let result = code.decode(&stored);
//! assert!(!result.outcome.is_correction());
//! # Ok::<(), harp_ecc::CodeError>(())
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use harp_gf2::{BitVec, Gf2Matrix, SyndromeKernel};

use crate::block::LinearBlockCode;
use crate::code::{CodeError, HammingCode};
use crate::decoder::{DecodeOutcome, DecodeResult};
use crate::word::WordLayout;

/// A systematic extended Hamming (SEC-DED) code.
///
/// Codeword layout: `k` data bits, the inner code's `p` Hamming parity bits,
/// then one overall parity bit — so the code stays systematic and the whole
/// direct/indirect error analysis applies unchanged.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExtendedHammingCode {
    inner: HammingCode,
    layout: WordLayout,
    /// Extended parity-check matrix `(p + 1) × (n + 1)`:
    /// `[[A | I_p | 0], [1 … 1]]`.
    h: Gf2Matrix,
    /// Extended parity block `(p + 1) × k` (`parity = A_ext · data`).
    a: Gf2Matrix,
    /// Word-packed copy of the extended `H`.
    kernel: SyndromeKernel,
}

impl ExtendedHammingCode {
    /// Extends a SEC Hamming code with an overall parity bit.
    pub fn from_hamming(inner: HammingCode) -> Self {
        let k = inner.data_len();
        let p = inner.parity_len();
        let n = inner.codeword_len();
        let layout = WordLayout::new(k, p + 1);

        let ones_row = Gf2Matrix::from_rows(&[BitVec::ones(n + 1)]);
        let h = inner
            .parity_check_matrix()
            .hstack(&Gf2Matrix::zeros(p, 1))
            .vstack(&ones_row);

        // Overall parity of a codeword is parity(d) ⊕ parity(A·d), which is
        // itself a linear function of the data: row `p` of the extended
        // parity block has entry `j` = 1 ⊕ parity(column j of A).
        let overall_row =
            BitVec::from_indices(k, (0..k).filter(|&j| !inner.data_block().col(j).parity()));
        let a = inner
            .data_block()
            .vstack(&Gf2Matrix::from_rows(&[overall_row]));

        let kernel = SyndromeKernel::new(&h);
        Self {
            inner,
            layout,
            h,
            a,
            kernel,
        }
    }

    /// Builds a SEC-DED code from the *inner* Hamming parity-check columns
    /// assigned to the `k` data positions (the overall-parity row is always
    /// the implied all-ones row, so the extended column for data position `i`
    /// is `(column_i, 1)` and never needs to be supplied).
    ///
    /// This is the reconstruction entry point used by `harp_beer`: the
    /// family-generic equivalent-code search solves for the inner columns
    /// and materializes candidates through this constructor, exactly as
    /// [`HammingCode::from_data_columns`] serves the SEC family.
    ///
    /// # Errors
    ///
    /// Returns a [`CodeError`] if the columns do not define a valid inner
    /// SEC Hamming code (wrong length, zero, unit, or duplicate columns).
    ///
    /// # Example
    ///
    /// ```
    /// use harp_ecc::{ExtendedHammingCode, LinearBlockCode};
    ///
    /// let reference = ExtendedHammingCode::random(16, 5)?;
    /// let columns = (0..16).map(|i| reference.inner().data_block().col(i)).collect();
    /// let rebuilt = ExtendedHammingCode::from_data_columns(columns)?;
    /// assert_eq!(rebuilt, reference);
    /// # Ok::<(), harp_ecc::CodeError>(())
    /// ```
    pub fn from_data_columns(data_columns: Vec<BitVec>) -> Result<Self, CodeError> {
        Ok(Self::from_hamming(HammingCode::from_data_columns(
            data_columns,
        )?))
    }

    /// Generates a uniform-random SEC-DED code for a `data_bits`-bit
    /// dataword, deterministically derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`CodeError::EmptyDataword`] if `data_bits == 0`.
    pub fn random(data_bits: usize, seed: u64) -> Result<Self, CodeError> {
        Ok(Self::from_hamming(HammingCode::random(data_bits, seed)?))
    }

    /// The inner SEC Hamming code (without the overall parity bit).
    pub fn inner(&self) -> &HammingCode {
        &self.inner
    }

    /// The codeword position of the overall parity bit (`n`, the last one).
    pub fn overall_parity_position(&self) -> usize {
        self.layout.codeword_len() - 1
    }
}

impl LinearBlockCode for ExtendedHammingCode {
    fn layout(&self) -> WordLayout {
        self.layout
    }

    fn correction_capability(&self) -> usize {
        1
    }

    fn parity_check_matrix(&self) -> &Gf2Matrix {
        &self.h
    }

    fn parity_block(&self) -> &Gf2Matrix {
        &self.a
    }

    fn syndrome_kernel(&self) -> &SyndromeKernel {
        &self.kernel
    }

    fn decode(&self, stored: &BitVec) -> DecodeResult {
        let k = self.layout.data_len();
        let p = self.inner.parity_len();
        let syndrome = self.syndrome(stored);
        if syndrome.is_zero() {
            return DecodeResult {
                dataword: stored.slice(0, k),
                outcome: DecodeOutcome::NoErrorDetected,
                syndrome,
            };
        }
        let hamming_syndrome = syndrome.slice(0, p);
        let parity_mismatch = syndrome.get(p);
        if !parity_mismatch {
            // Even number of raw errors with a nonzero Hamming syndrome: the
            // signature of a double error. Detected, not corrected — this is
            // what distinguishes SEC-DED from plain SEC under HARP's lens.
            return DecodeResult {
                dataword: stored.slice(0, k),
                outcome: DecodeOutcome::DetectedUncorrectable,
                syndrome,
            };
        }
        // Odd number of raw errors: single-error hypothesis.
        let position = if hamming_syndrome.is_zero() {
            // Only the overall parity bit itself flipped.
            Some(self.overall_parity_position())
        } else {
            self.inner.position_for_syndrome(&hamming_syndrome)
        };
        match position {
            Some(position) => {
                let mut corrected = stored.clone();
                corrected.flip(position);
                DecodeResult {
                    dataword: corrected.slice(0, k),
                    outcome: DecodeOutcome::corrected(position),
                    syndrome,
                }
            }
            None => DecodeResult {
                dataword: stored.slice(0, k),
                outcome: DecodeOutcome::DetectedUncorrectable,
                syndrome,
            },
        }
    }

    fn description(&self) -> String {
        format!(
            "SEC-DED extended Hamming ({}, {})",
            self.layout.codeword_len(),
            self.layout.data_len()
        )
    }

    fn decode_with_syndrome_into(
        &self,
        stored: &BitVec,
        syndrome_word: u64,
        out: &mut DecodeResult,
    ) {
        assert_eq!(
            stored.len(),
            self.layout.codeword_len(),
            "stored codeword length mismatch"
        );
        let k = self.layout.data_len();
        let p = self.inner.parity_len();
        out.syndrome.assign_u64(p + 1, syndrome_word);
        out.dataword.copy_prefix_from(stored, k);
        if syndrome_word == 0 {
            out.outcome = DecodeOutcome::NoErrorDetected;
            return;
        }
        let hamming_syndrome = syndrome_word & ((1u64 << p) - 1);
        let parity_mismatch = (syndrome_word >> p) & 1 == 1;
        if !parity_mismatch {
            // Double-error signature (see `decode`): detected, not corrected.
            out.outcome = DecodeOutcome::DetectedUncorrectable;
            return;
        }
        let position = if hamming_syndrome == 0 {
            Some(self.overall_parity_position())
        } else {
            self.inner.position_for_syndrome_word(hamming_syndrome)
        };
        match position {
            Some(position) => {
                if position < k {
                    out.dataword.flip(position);
                }
                out.outcome = DecodeOutcome::corrected(position);
            }
            None => out.outcome = DecodeOutcome::DetectedUncorrectable,
        }
    }
}

impl fmt::Display for ExtendedHammingCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_adds_one_parity_bit() {
        let code = ExtendedHammingCode::random(64, 1).unwrap();
        assert_eq!(code.data_len(), 64);
        assert_eq!(code.parity_len(), 8);
        assert_eq!(code.codeword_len(), 72);
        assert_eq!(code.overall_parity_position(), 71);
        assert_eq!(code.inner().codeword_len(), 71);
        assert_eq!(code.to_string(), "SEC-DED extended Hamming (72, 64)");
    }

    #[test]
    fn codewords_satisfy_the_extended_parity_check() {
        let code = ExtendedHammingCode::random(32, 2).unwrap();
        for value in [0u64, 1, 0xFFFF_FFFF, 0xA5A5_5A5A] {
            let data = BitVec::from_u64(32, value);
            let codeword = code.encode(&data);
            assert_eq!(codeword.len(), code.codeword_len());
            assert_eq!(codeword.slice(0, 32), data, "systematic");
            assert!(code.parity_check_matrix().mul_vec(&codeword).is_zero());
            assert!(code.syndrome(&codeword).is_zero());
            // The last bit really is the overall parity of the rest.
            let body = codeword.slice(0, code.codeword_len() - 1);
            assert_eq!(codeword.get(code.overall_parity_position()), body.parity());
        }
    }

    #[test]
    fn every_single_error_is_corrected() {
        let code = ExtendedHammingCode::random(16, 3).unwrap();
        let data = BitVec::from_u64(16, 0xBEEF);
        for pos in 0..code.codeword_len() {
            let error = BitVec::from_indices(code.codeword_len(), [pos]);
            let result = code.encode_corrupt_decode(&data, &error);
            assert_eq!(result.dataword, data, "error at {pos}");
            assert_eq!(result.outcome, DecodeOutcome::corrected(pos));
        }
    }

    #[test]
    fn every_double_error_is_detected_not_miscorrected() {
        // The defining SEC-DED property, and the reason the code eliminates
        // pair-induced indirect errors entirely.
        let code = ExtendedHammingCode::random(16, 4).unwrap();
        let data = BitVec::from_u64(16, 0x1234);
        let n = code.codeword_len();
        for i in 0..n {
            for j in (i + 1)..n {
                let error = BitVec::from_indices(n, [i, j]);
                let result = code.encode_corrupt_decode(&data, &error);
                assert_eq!(
                    result.outcome,
                    DecodeOutcome::DetectedUncorrectable,
                    "double error ({i}, {j})"
                );
            }
        }
    }

    #[test]
    fn triple_errors_are_never_silent() {
        // Minimum distance 4: weight-3 patterns always produce a nonzero
        // syndrome (they may miscorrect, but never pass unnoticed).
        let code = ExtendedHammingCode::random(8, 5).unwrap();
        let data = BitVec::ones(8);
        let n = code.codeword_len();
        for i in 0..n {
            for j in (i + 1)..n {
                for l in (j + 1)..n {
                    let error = BitVec::from_indices(n, [i, j, l]);
                    let result = code.encode_corrupt_decode(&data, &error);
                    assert_ne!(result.outcome, DecodeOutcome::NoErrorDetected);
                }
            }
        }
    }

    #[test]
    fn parity_block_matches_encoder() {
        let code = ExtendedHammingCode::random(24, 6).unwrap();
        let data = BitVec::from_u64(24, 0x00C0_FFEE);
        let codeword = code.encode(&data);
        assert_eq!(
            codeword.slice(code.data_len(), code.codeword_len()),
            code.parity_block().mul_vec(&data)
        );
    }

    #[test]
    fn construction_errors_propagate() {
        assert_eq!(
            ExtendedHammingCode::random(0, 1),
            Err(CodeError::EmptyDataword)
        );
    }

    #[test]
    fn from_data_columns_round_trips_the_inner_columns() {
        let reference = ExtendedHammingCode::random(16, 9).unwrap();
        let columns: Vec<BitVec> = (0..16)
            .map(|i| reference.inner().data_block().col(i))
            .collect();
        let rebuilt = ExtendedHammingCode::from_data_columns(columns).unwrap();
        assert_eq!(rebuilt, reference);
        assert_eq!(
            rebuilt.parity_check_matrix(),
            reference.parity_check_matrix()
        );
    }

    #[test]
    fn from_data_columns_rejects_invalid_inner_columns() {
        assert_eq!(
            ExtendedHammingCode::from_data_columns(vec![]),
            Err(CodeError::EmptyDataword)
        );
        assert_eq!(
            ExtendedHammingCode::from_data_columns(vec![BitVec::zeros(3)]),
            Err(CodeError::ZeroColumn { column: 0 })
        );
        let dup = BitVec::from_u64(3, 0b111);
        assert_eq!(
            ExtendedHammingCode::from_data_columns(vec![dup.clone(), dup]),
            Err(CodeError::DuplicateColumn {
                first: 0,
                second: 1
            })
        );
    }
}
