//! Inline storage for the codeword positions a decoder flips.
//!
//! Every code in this workspace is bounded-distance with correction
//! capability `t ≤ 2` (SEC Hamming and SEC-DED flip at most one bit, DEC BCH
//! at most two), so a corrected read never needs more than two positions.
//! [`CorrectedPositions`] stores them inline — no heap allocation per
//! corrected read, which previously dominated the allocation profile of
//! Monte-Carlo scrub passes ([`DecodeOutcome::Corrected`] used to carry a
//! `Vec<usize>`).
//!
//! The type behaves like a sorted, deduplicated mini-`Vec`: positions are
//! kept in ascending order, it dereferences to `&[usize]`, and equality /
//! ordering / iteration match what the old `Vec<usize>` exposed.
//!
//! [`DecodeOutcome::Corrected`]: crate::DecodeOutcome::Corrected

use std::fmt;
use std::ops::Deref;

use serde::{Deserialize, Serialize};

/// The codeword positions a decoder flipped during one correction, stored
/// inline (capacity [`CorrectedPositions::CAPACITY`], ascending order).
///
/// # Example
///
/// ```
/// use harp_ecc::CorrectedPositions;
///
/// let positions: CorrectedPositions = [9, 2].into_iter().collect();
/// assert_eq!(positions.as_slice(), &[2, 9]); // always sorted ascending
/// assert_eq!(positions.len(), 2);
/// assert!(positions.contains(&9));
/// ```
// The serde container attribute keeps the wire format the plain position
// array the old `Vec<usize>` produced — and makes deserialization validate
// through `TryFrom` — once the real serde replaces the vendored marker stub
// (the stand-in registers but ignores the attribute). Without it, a real
// derive would expose the {len, slots} internals and accept len > CAPACITY.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
#[serde(try_from = "Vec<usize>", into = "Vec<usize>")]
pub struct CorrectedPositions {
    /// Number of valid entries in `slots`.
    len: u8,
    /// Inline storage; only `slots[..len]` is meaningful (unused slots stay
    /// zero so derived equality/hashing see a canonical representation).
    slots: [usize; Self::CAPACITY],
}

impl CorrectedPositions {
    /// Maximum number of positions a correction can carry — the largest
    /// correction capability `t` of any code in the workspace (DEC BCH).
    pub const CAPACITY: usize = 2;

    /// An empty position list.
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-position correction.
    pub fn single(position: usize) -> Self {
        let mut out = Self::new();
        out.push(position);
        out
    }

    /// Appends a position, keeping the list sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics when pushing more than [`Self::CAPACITY`] positions — a
    /// contract violation (no shipped decoder flips more than `t ≤ 2` bits)
    /// that must fail loudly in release builds too: silently truncating a
    /// future `t > 2` code's corrections would corrupt every downstream
    /// classification. The assert runs at most `t` times per corrected read,
    /// so it costs nothing on the hot path.
    pub fn push(&mut self, position: usize) {
        assert!(
            (self.len as usize) < Self::CAPACITY,
            "CorrectedPositions capacity {} exceeded",
            Self::CAPACITY
        );
        let mut i = self.len as usize;
        self.slots[i] = position;
        // Insertion sort step: bubble the new entry left while smaller.
        while i > 0 && self.slots[i - 1] > self.slots[i] {
            self.slots.swap(i - 1, i);
            i -= 1;
        }
        self.len += 1;
    }

    /// Number of corrected positions.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Returns `true` if no position was corrected.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The positions as a sorted slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.slots[..self.len as usize]
    }

    /// The positions as an owned `Vec` (for consumers that keep the old
    /// `Vec<usize>` vocabulary, e.g. `GroundTruth`).
    pub fn to_vec(&self) -> Vec<usize> {
        self.as_slice().to_vec()
    }
}

impl Deref for CorrectedPositions {
    type Target = [usize];

    fn deref(&self) -> &[usize] {
        self.as_slice()
    }
}

impl fmt::Debug for CorrectedPositions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render like the Vec<usize> this type replaced.
        self.as_slice().fmt(f)
    }
}

impl PartialOrd for CorrectedPositions {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CorrectedPositions {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic slice ordering, matching Vec<usize> semantics.
        self.as_slice().cmp(other.as_slice())
    }
}

impl FromIterator<usize> for CorrectedPositions {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut out = Self::new();
        for position in iter {
            out.push(position);
        }
        out
    }
}

impl<'a> IntoIterator for &'a CorrectedPositions {
    type Item = &'a usize;
    type IntoIter = std::slice::Iter<'a, usize>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl From<CorrectedPositions> for Vec<usize> {
    fn from(positions: CorrectedPositions) -> Self {
        positions.to_vec()
    }
}

impl TryFrom<Vec<usize>> for CorrectedPositions {
    type Error = String;

    /// Validating construction from untrusted input (the deserialization
    /// path): rejects — rather than debug-asserts on — more than
    /// [`CorrectedPositions::CAPACITY`] positions.
    fn try_from(positions: Vec<usize>) -> Result<Self, Self::Error> {
        if positions.len() > Self::CAPACITY {
            return Err(format!(
                "at most {} corrected positions supported, got {}",
                Self::CAPACITY,
                positions.len()
            ));
        }
        Ok(positions.into_iter().collect())
    }
}

impl PartialEq<[usize]> for CorrectedPositions {
    fn eq(&self, other: &[usize]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[usize; N]> for CorrectedPositions {
    fn eq(&self, other: &[usize; N]) -> bool {
        self.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_list_behaves_like_an_empty_vec() {
        let positions = CorrectedPositions::new();
        assert_eq!(positions.len(), 0);
        assert!(positions.is_empty());
        assert!(positions.as_slice().is_empty());
        assert_eq!(positions.to_vec(), Vec::<usize>::new());
        assert_eq!(positions.iter().count(), 0);
        assert_eq!(positions, CorrectedPositions::default());
        assert_eq!(format!("{positions:?}"), "[]");
    }

    #[test]
    fn push_keeps_positions_sorted_ascending() {
        let mut positions = CorrectedPositions::new();
        positions.push(9);
        positions.push(2);
        assert_eq!(positions.as_slice(), &[2, 9]);
        assert_eq!(
            [9usize, 2].into_iter().collect::<CorrectedPositions>(),
            positions
        );
        assert_eq!(
            [2usize, 9].into_iter().collect::<CorrectedPositions>(),
            positions
        );
    }

    #[test]
    fn deref_exposes_slice_methods() {
        let positions = CorrectedPositions::single(7);
        assert!(positions.contains(&7));
        assert!(!positions.contains(&8));
        assert_eq!(positions.first(), Some(&7));
        assert_eq!(positions.iter().copied().collect::<Vec<_>>(), vec![7]);
        assert_eq!(format!("{positions:?}"), "[7]");
    }

    #[test]
    fn equality_and_ordering_match_vec_semantics() {
        let a: CorrectedPositions = [2usize, 9].into_iter().collect();
        let b: CorrectedPositions = [2usize, 9].into_iter().collect();
        let c: CorrectedPositions = [3usize].into_iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, [2usize, 9]);
        assert_eq!(a.cmp(&c), a.to_vec().cmp(&c.to_vec()));
        assert_eq!(c.cmp(&a), c.to_vec().cmp(&a.to_vec()));
        assert!(CorrectedPositions::new() < c);
    }

    #[test]
    fn iteration_agrees_with_into_iterator() {
        let positions: CorrectedPositions = [5usize, 1].into_iter().collect();
        let via_ref: Vec<usize> = (&positions).into_iter().copied().collect();
        assert_eq!(via_ref, vec![1, 5]);
        let via_from: Vec<usize> = positions.into();
        assert_eq!(via_from, vec![1, 5]);
    }

    #[test]
    #[should_panic(expected = "capacity 2 exceeded")]
    fn pushing_past_capacity_trips_the_assertion() {
        let mut positions = CorrectedPositions::new();
        positions.push(0);
        positions.push(1);
        positions.push(2);
    }

    #[test]
    fn try_from_vec_validates_capacity() {
        let ok = CorrectedPositions::try_from(vec![9, 2]).unwrap();
        assert_eq!(ok.as_slice(), &[2, 9]);
        assert!(CorrectedPositions::try_from(Vec::new()).unwrap().is_empty());
        let err = CorrectedPositions::try_from(vec![1, 2, 3]).unwrap_err();
        assert!(err.contains("at most 2"), "{err}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Collecting up to CAPACITY positions behaves exactly like
            /// collecting into a Vec and sorting it — the old semantics of
            /// `DecodeOutcome::corrected_many`.
            #[test]
            fn collect_matches_sorted_vec(
                a in 0usize..200,
                b in 0usize..200,
                take in 0usize..3,
            ) {
                let raw: Vec<usize> = [a, b].into_iter().take(take).collect();
                let inline: CorrectedPositions = raw.iter().copied().collect();
                let mut sorted = raw.clone();
                sorted.sort_unstable();
                prop_assert_eq!(inline.as_slice(), sorted.as_slice());
                prop_assert_eq!(inline.len(), sorted.len());
                prop_assert_eq!(inline.to_vec(), sorted.clone());
                for p in &sorted {
                    prop_assert!(inline.contains(p));
                }
            }

            /// Equality and lexicographic ordering agree with Vec<usize>.
            #[test]
            fn ordering_is_lexicographic(
                a in 0usize..16,
                b in 0usize..16,
                c in 0usize..16,
                d in 0usize..16,
            ) {
                let x: CorrectedPositions = [a, b].into_iter().collect();
                let y: CorrectedPositions = [c, d].into_iter().collect();
                prop_assert_eq!(x.cmp(&y), x.to_vec().cmp(&y.to_vec()));
                prop_assert_eq!(x == y, x.to_vec() == y.to_vec());
            }
        }
    }
}
