//! Block-code layer of the HARP reproduction: the shared
//! [`LinearBlockCode`] abstraction and its SEC Hamming / SEC-DED
//! implementations.
//!
//! The HARP paper (MICRO 2021) studies how on-die ECC — a proprietary SEC
//! Hamming code inside the memory chip — changes the way raw (pre-correction)
//! bit errors appear to the memory controller (post-correction errors). Its
//! guarantees, however, hold for any systematic linear block code, and this
//! crate is organized around that fact:
//!
//! * [`block`] — the [`LinearBlockCode`] trait: systematic encoding,
//!   kernel-accelerated syndrome computation, bounded-distance decoding, and
//!   parity-check structure access. Everything downstream (`harp_memsim`,
//!   `harp_profiler`, `harp_beer`, `harp_sim`) is generic over this trait;
//! * [`HammingCode`] — systematic SEC Hamming codes, including the paper's
//!   `(71, 64)` and `(136, 128)` configurations and uniform-random
//!   parity-check matrix generation (the paper simulates thousands of random
//!   codes because real on-die ECC functions are proprietary);
//! * [`ExtendedHammingCode`] — SEC-DED extended Hamming codes, a third trait
//!   implementation that *detects* double errors instead of miscorrecting
//!   them (the DEC BCH implementation lives in `harp_bch`);
//! * [`decoder`] — the shared decode vocabulary ([`DecodeOutcome`] /
//!   [`DecodeResult`]) used by every code, with explicit modelling of
//!   corrections, *miscorrections* (indirect errors), and
//!   detected-uncorrectable patterns;
//! * [`analysis`] — exact, code-generic enumeration of the post-correction
//!   error space of a set of at-risk pre-correction bits, including the
//!   data-dependence ("chargeability") constraints the paper resolves with a
//!   SAT solver. Here the same sets are computed exactly with GF(2) linear
//!   algebra (see DESIGN.md §2 for the substitution argument);
//! * [`secondary`] — the secondary ECC inside the memory controller used by
//!   HARP's reactive profiling phase.
//!
//! # Quickstart
//!
//! ```
//! use harp_ecc::{HammingCode, LinearBlockCode, decoder::DecodeOutcome};
//!
//! // A (71, 64) code representative of LPDDR4 on-die ECC.
//! let code = HammingCode::random(64, 0xC0FFEE)?;
//! let data = harp_gf2::BitVec::ones(64);
//! let mut stored = code.encode(&data);
//!
//! // A single raw bit error is always corrected.
//! stored.flip(17);
//! let decoded = code.decode(&stored);
//! assert_eq!(decoded.dataword, data);
//! assert_eq!(decoded.outcome, DecodeOutcome::corrected(17));
//! # Ok::<(), harp_ecc::CodeError>(())
//! ```

pub mod analysis;
pub mod block;
pub mod code;
pub mod decoder;
pub mod positions;
pub mod secded;
pub mod secondary;
pub mod word;

pub use analysis::ErrorSpace;
pub use block::LinearBlockCode;
pub use code::{CodeError, CodeShape, HammingCode};
pub use decoder::{DecodeOutcome, DecodeResult};
pub use positions::CorrectedPositions;
pub use secded::ExtendedHammingCode;
pub use secondary::{SecondaryEcc, SecondaryObservation};
pub use word::{BitClass, WordLayout};
