//! Block-code substrate for the HARP reproduction: systematic
//! single-error-correcting (SEC) Hamming codes as used for DRAM on-die ECC.
//!
//! The HARP paper (MICRO 2021) studies how on-die ECC — a proprietary SEC
//! Hamming code inside the memory chip — changes the way raw (pre-correction)
//! bit errors appear to the memory controller (post-correction errors). This
//! crate implements everything the paper needs from the code itself:
//!
//! * [`HammingCode`] — systematic SEC Hamming codes, including the paper's
//!   `(71, 64)` and `(136, 128)` configurations and uniform-random
//!   parity-check matrix generation (the paper simulates thousands of random
//!   codes because real on-die ECC functions are proprietary);
//! * [`decoder`] — syndrome decoding with explicit modelling of corrections,
//!   *miscorrections* (indirect errors), and detected-uncorrectable patterns;
//! * [`analysis`] — exact enumeration of the post-correction error space of a
//!   set of at-risk pre-correction bits, including the data-dependence
//!   ("chargeability") constraints the paper resolves with a SAT solver. Here
//!   the same sets are computed exactly with GF(2) linear algebra
//!   (see DESIGN.md §2 for the substitution argument);
//! * [`secondary`] — the secondary ECC inside the memory controller used by
//!   HARP's reactive profiling phase.
//!
//! # Quickstart
//!
//! ```
//! use harp_ecc::{HammingCode, decoder::DecodeOutcome};
//!
//! // A (71, 64) code representative of LPDDR4 on-die ECC.
//! let code = HammingCode::random(64, 0xC0FFEE)?;
//! let data = harp_gf2::BitVec::ones(64);
//! let mut stored = code.encode(&data);
//!
//! // A single raw bit error is always corrected.
//! stored.flip(17);
//! let decoded = code.decode(&stored);
//! assert_eq!(decoded.dataword, data);
//! assert_eq!(decoded.outcome, DecodeOutcome::Corrected { position: 17 });
//! # Ok::<(), harp_ecc::CodeError>(())
//! ```

pub mod analysis;
pub mod code;
pub mod decoder;
pub mod secondary;
pub mod word;

pub use analysis::ErrorSpace;
pub use code::{CodeError, CodeShape, HammingCode};
pub use decoder::{DecodeOutcome, DecodeResult};
pub use secondary::{SecondaryEcc, SecondaryObservation};
pub use word::{BitClass, WordLayout};
