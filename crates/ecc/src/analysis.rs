//! Exact analysis of how on-die ECC transforms pre-correction errors into
//! post-correction errors — generic over any [`LinearBlockCode`].
//!
//! This module is the reproduction of the paper's §3–§4 machinery:
//!
//! * [`combinatorics`] reproduces Table 2 (the combinatorial explosion of
//!   at-risk bits) for SEC codes;
//! * [`ErrorSpace`] enumerates, for a concrete code and a concrete set of
//!   at-risk pre-correction bits, *every* achievable post-correction error —
//!   the ground truth the paper computes with the Z3 SAT solver. Because the
//!   constraints are linear over GF(2) and the at-risk sets are small, exact
//!   enumeration plus Gaussian elimination computes identical results
//!   (see DESIGN.md §2). Enumeration drives the code's own decoder on each
//!   achievable raw error pattern, so it is exact for *any* implementation of
//!   the trait — SEC Hamming, SEC-DED, and DEC BCH alike;
//! * [`classify_decode`] labels a decode with its ground truth (true
//!   correction vs. miscorrection vs. silent corruption), which the decoder
//!   itself cannot know;
//! * [`predict_indirect_from_direct`] implements HARP-A's precomputation of
//!   indirect-error at-risk bits from the direct-error at-risk bits found
//!   during active profiling.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use harp_gf2::{solve, BitVec, Gf2Matrix};

use crate::block::LinearBlockCode;
use crate::decoder::{DecodeOutcome, DecodeResult};

/// Closed-form counts behind Table 2 of the paper: how a handful of bits at
/// risk of pre-correction error explodes into exponentially many bits at risk
/// of post-correction error (for single-error-correcting on-die ECC).
pub mod combinatorics {
    /// Number of unique nonzero pre-correction error patterns over `n`
    /// at-risk bits: `2^n − 1`.
    ///
    /// # Example
    ///
    /// ```
    /// use harp_ecc::analysis::combinatorics::unique_error_patterns;
    /// assert_eq!(unique_error_patterns(4), 15);
    /// assert_eq!(unique_error_patterns(8), 255);
    /// ```
    pub fn unique_error_patterns(n: u32) -> u64 {
        2u64.pow(n) - 1
    }

    /// Number of correctable patterns for a single-error-correcting code:
    /// exactly the `n` single-bit patterns.
    pub fn correctable_patterns(n: u32) -> u64 {
        u64::from(n)
    }

    /// Number of uncorrectable pre-correction error patterns:
    /// `2^n − n − 1`.
    ///
    /// # Example
    ///
    /// ```
    /// use harp_ecc::analysis::combinatorics::uncorrectable_patterns;
    /// assert_eq!(uncorrectable_patterns(1), 0);
    /// assert_eq!(uncorrectable_patterns(4), 11);
    /// assert_eq!(uncorrectable_patterns(8), 247);
    /// ```
    pub fn uncorrectable_patterns(n: u32) -> u64 {
        unique_error_patterns(n) - correctable_patterns(n)
    }

    /// Worst-case number of bits at risk of post-correction error caused by
    /// `n` bits at risk of pre-correction error: `2^n − 1` (every
    /// uncorrectable pattern introduces a unique indirect error, plus the `n`
    /// direct bits themselves).
    ///
    /// # Example
    ///
    /// ```
    /// use harp_ecc::analysis::combinatorics::worst_case_post_correction_at_risk;
    /// assert_eq!(worst_case_post_correction_at_risk(2), 3);
    /// assert_eq!(worst_case_post_correction_at_risk(8), 255);
    /// ```
    pub fn worst_case_post_correction_at_risk(n: u32) -> u64 {
        unique_error_patterns(n)
    }
}

/// How a cell's probability of error depends on the data it stores
/// (paper §2.4: errors are data-dependent; §7.1.2: all cells are assumed to
/// be *true cells* that can only fail when programmed with '1').
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureDependence {
    /// The cell can only fail when it stores a '1' (charged). This is the
    /// paper's evaluated model.
    TrueCell,
    /// The cell can only fail when it stores a '0'.
    AntiCell,
    /// The cell can fail regardless of the stored value.
    DataIndependent,
}

impl FailureDependence {
    /// The stored value required for the cell to be able to fail, or `None`
    /// if the cell can fail under either value.
    pub fn required_value(&self) -> Option<bool> {
        match self {
            FailureDependence::TrueCell => Some(true),
            FailureDependence::AntiCell => Some(false),
            FailureDependence::DataIndependent => None,
        }
    }
}

/// Ground-truth classification of a decode, available only to the simulator
/// (which knows the injected raw error pattern).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroundTruth {
    /// No raw errors were present and the decoder (correctly) did nothing.
    NoError,
    /// The decoder corrected exactly the raw errors that were present.
    CorrectedTrue {
        /// The corrected codeword positions.
        positions: Vec<usize>,
    },
    /// An uncorrectable raw error pattern caused the decoder to flip at least
    /// one bit that was *not* in error — the source of indirect errors.
    Miscorrected {
        /// The positions the decoder erroneously flipped.
        flipped: Vec<usize>,
        /// The raw error positions that provoked the miscorrection.
        raw_errors: Vec<usize>,
    },
    /// An uncorrectable raw error pattern the decoder either flagged without
    /// locating, or only partially corrected: the remaining erroneous data
    /// passes through.
    DetectedUncorrectable {
        /// The raw error positions.
        raw_errors: Vec<usize>,
    },
    /// The raw error pattern was itself a codeword (syndrome zero), so the
    /// decoder saw nothing despite errors being present.
    SilentCorruption {
        /// The raw error positions.
        raw_errors: Vec<usize>,
    },
}

/// Classifies a decode result given the raw error pattern that was injected.
///
/// # Panics
///
/// Panics if `raw_error.len() != code.codeword_len()`.
///
/// # Example
///
/// ```
/// use harp_ecc::{HammingCode, LinearBlockCode, analysis::{classify_decode, GroundTruth}};
/// use harp_gf2::BitVec;
///
/// let code = HammingCode::paper_example();
/// let data = BitVec::ones(4);
/// let raw = BitVec::from_indices(7, [2]);
/// let result = code.encode_corrupt_decode(&data, &raw);
/// assert_eq!(
///     classify_decode(&code, &raw, &result),
///     GroundTruth::CorrectedTrue { positions: vec![2] },
/// );
/// ```
pub fn classify_decode<C: LinearBlockCode + ?Sized>(
    code: &C,
    raw_error: &BitVec,
    result: &DecodeResult,
) -> GroundTruth {
    assert_eq!(
        raw_error.len(),
        code.codeword_len(),
        "raw error pattern length mismatch"
    );
    let raw_positions: Vec<usize> = raw_error.iter_ones().collect();
    match &result.outcome {
        DecodeOutcome::NoErrorDetected => {
            if raw_positions.is_empty() {
                GroundTruth::NoError
            } else {
                GroundTruth::SilentCorruption {
                    raw_errors: raw_positions,
                }
            }
        }
        DecodeOutcome::Corrected { positions } => {
            let flipped_spuriously: Vec<usize> = positions
                .iter()
                .copied()
                .filter(|p| !raw_positions.contains(p))
                .collect();
            if flipped_spuriously.is_empty() {
                if positions.len() == raw_positions.len() {
                    // Every flip was a raw error and every raw error was
                    // flipped: a true correction.
                    GroundTruth::CorrectedTrue {
                        positions: positions.to_vec(),
                    }
                } else {
                    // The decoder fixed some of several raw errors; the rest
                    // leak through as direct errors. From the classification
                    // point of view this is still an uncorrectable pattern.
                    GroundTruth::DetectedUncorrectable {
                        raw_errors: raw_positions,
                    }
                }
            } else {
                GroundTruth::Miscorrected {
                    flipped: flipped_spuriously,
                    raw_errors: raw_positions,
                }
            }
        }
        DecodeOutcome::DetectedUncorrectable => GroundTruth::DetectedUncorrectable {
            raw_errors: raw_positions,
        },
    }
}

/// Returns `true` if there exists a dataword such that every codeword
/// position in `positions` stores the value required by `dependence`
/// (i.e. the corresponding cells are all simultaneously able to fail).
///
/// Data positions constrain the dataword bit directly; parity positions
/// constrain an affine (GF(2)) combination of dataword bits, so feasibility is
/// a linear-system question — this is the exact computation the paper
/// delegates to a SAT solver.
///
/// # Example
///
/// ```
/// use harp_ecc::{HammingCode, analysis::{is_chargeable, FailureDependence}};
///
/// let code = HammingCode::paper_example();
/// // Any set of data bits can always be charged.
/// assert!(is_chargeable(&code, &[0, 1, 2, 3], FailureDependence::TrueCell));
/// ```
pub fn is_chargeable<C: LinearBlockCode + ?Sized>(
    code: &C,
    positions: &[usize],
    dependence: FailureDependence,
) -> bool {
    charging_dataword(code, positions, dependence).is_some() || positions.is_empty()
}

/// Returns a dataword under which every position in `positions` stores the
/// value required by `dependence`, or `None` if no such dataword exists.
///
/// Used both by the ground-truth analysis and by the BEEP profiler to craft
/// targeted data patterns. Works for any systematic linear code: parity
/// position `k + j` is constrained through row `j` of the code's
/// [`parity_block`](LinearBlockCode::parity_block).
///
/// # Panics
///
/// Panics if any position is out of range for the code.
pub fn charging_dataword<C: LinearBlockCode + ?Sized>(
    code: &C,
    positions: &[usize],
    dependence: FailureDependence,
) -> Option<BitVec> {
    let k = code.data_len();
    if positions.is_empty() {
        return Some(BitVec::zeros(k));
    }
    for &pos in positions {
        assert!(
            pos < code.codeword_len(),
            "position {pos} out of range {}",
            code.codeword_len()
        );
    }
    let Some(required) = dependence.required_value() else {
        // Data-independent failures: any dataword works.
        return Some(BitVec::zeros(k));
    };

    // Build the constraint system over the k dataword bits.
    let layout = code.layout();
    let parity_block = code.parity_block();
    let mut rows = Vec::with_capacity(positions.len());
    let mut rhs = BitVec::zeros(positions.len());
    for (idx, &pos) in positions.iter().enumerate() {
        let row = if layout.is_data(pos) {
            BitVec::from_indices(k, [pos])
        } else {
            parity_block.row(layout.parity_index(pos)).clone()
        };
        rows.push(row);
        rhs.set(idx, required);
    }
    let a = Gf2Matrix::from_rows(&rows);
    match solve::solve(&a, &rhs) {
        solve::LinearSolution::Solvable { particular, .. } => Some(particular),
        solve::LinearSolution::Infeasible => None,
    }
}

/// The outcome of a single achievable pre-correction error pattern.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PatternOutcome {
    /// The pre-correction error positions (codeword indices) that fail
    /// together in this pattern.
    pub raw_positions: Vec<usize>,
    /// The post-correction error positions (dataword indices) the memory
    /// controller observes when exactly this pattern occurs.
    pub post_correction_errors: Vec<usize>,
    /// The miscorrection positions introduced by the decoder, if any
    /// (codeword indices; at most the code's correction capability).
    pub miscorrections: Vec<usize>,
}

impl PatternOutcome {
    /// The single miscorrection position, when exactly one was introduced
    /// (always the case for SEC codes).
    pub fn miscorrection(&self) -> Option<usize> {
        match self.miscorrections.as_slice() {
            [position] => Some(*position),
            _ => None,
        }
    }
}

/// The exact post-correction error space of a set of at-risk pre-correction
/// bits under a given code.
///
/// This is the simulator's ground truth: profilers are scored by how much of
/// [`ErrorSpace::post_correction_at_risk`] they cover.
///
/// # Example
///
/// ```
/// use harp_ecc::{HammingCode, ErrorSpace, analysis::FailureDependence};
///
/// let code = HammingCode::paper_example();
/// // Two at-risk data bits: both are at risk of direct error and their
/// // combined failure may provoke a miscorrection (an indirect error).
/// let space = ErrorSpace::enumerate(&code, &[0, 1], FailureDependence::TrueCell);
/// assert_eq!(space.direct_at_risk().len(), 2);
/// assert!(space.post_correction_at_risk().len() >= 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorSpace {
    at_risk_pre_correction: BTreeSet<usize>,
    direct_at_risk: BTreeSet<usize>,
    indirect_at_risk: BTreeSet<usize>,
    post_correction_at_risk: BTreeSet<usize>,
    outcomes: Vec<PatternOutcome>,
}

impl ErrorSpace {
    /// Maximum number of at-risk pre-correction bits supported by exhaustive
    /// enumeration (2^24 subsets is comfortably fast; the paper evaluates at
    /// most 8).
    pub const MAX_AT_RISK_BITS: usize = 24;

    /// Enumerates the full post-correction error space for the given at-risk
    /// pre-correction positions (codeword indices).
    ///
    /// Every achievable (chargeable) subset of the at-risk bits is decoded
    /// with the code's own decoder — decoding an error pattern against the
    /// all-zero codeword is exact for linear codes — so the enumeration is
    /// correct for any [`LinearBlockCode`], whatever its correction
    /// capability.
    ///
    /// # Panics
    ///
    /// Panics if more than [`Self::MAX_AT_RISK_BITS`] positions are given or
    /// if any position is out of range.
    pub fn enumerate<C: LinearBlockCode + ?Sized>(
        code: &C,
        at_risk_positions: &[usize],
        dependence: FailureDependence,
    ) -> Self {
        let unique: BTreeSet<usize> = at_risk_positions.iter().copied().collect();
        assert!(
            unique.len() <= Self::MAX_AT_RISK_BITS,
            "at most {} at-risk bits supported, got {}",
            Self::MAX_AT_RISK_BITS,
            unique.len()
        );
        for &pos in &unique {
            assert!(
                pos < code.codeword_len(),
                "at-risk position {pos} out of range {}",
                code.codeword_len()
            );
        }
        let positions: Vec<usize> = unique.iter().copied().collect();
        let n = positions.len();
        let k = code.data_len();

        let mut outcomes = Vec::new();
        let mut post_at_risk = BTreeSet::new();

        for mask in 1u64..(1u64 << n) {
            let subset: Vec<usize> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| positions[i])
                .collect();
            if charging_dataword(code, &subset, dependence).is_none() {
                continue;
            }

            // Decoding is data-independent for a linear code, so decode the
            // error pattern against the all-zero codeword.
            let error = BitVec::from_indices(code.codeword_len(), subset.iter().copied());
            let result = code.decode_error_pattern(&error);
            let flipped: BTreeSet<usize> = result
                .outcome
                .corrected_positions()
                .iter()
                .copied()
                .collect();

            let subset_set: BTreeSet<usize> = subset.iter().copied().collect();
            let mut post = BTreeSet::new();
            for p in 0..k {
                if subset_set.contains(&p) != flipped.contains(&p) {
                    post.insert(p);
                }
            }
            let miscorrections: Vec<usize> = flipped.difference(&subset_set).copied().collect();

            post_at_risk.extend(post.iter().copied());
            outcomes.push(PatternOutcome {
                raw_positions: subset,
                post_correction_errors: post.into_iter().collect(),
                miscorrections,
            });
        }

        let layout = code.layout();
        let direct_at_risk: BTreeSet<usize> = unique
            .iter()
            .copied()
            .filter(|&p| layout.is_data(p))
            .filter(|&p| is_chargeable(code, &[p], dependence))
            .collect();
        let indirect_at_risk: BTreeSet<usize> = post_at_risk
            .iter()
            .copied()
            .filter(|p| !direct_at_risk.contains(p))
            .collect();

        Self {
            at_risk_pre_correction: unique,
            direct_at_risk,
            indirect_at_risk,
            post_correction_at_risk: post_at_risk,
            outcomes,
        }
    }

    /// The at-risk pre-correction positions (codeword indices) this space was
    /// built from.
    pub fn at_risk_pre_correction(&self) -> &BTreeSet<usize> {
        &self.at_risk_pre_correction
    }

    /// Dataword positions at risk of *direct* error: at-risk pre-correction
    /// bits within the systematically encoded data region.
    pub fn direct_at_risk(&self) -> &BTreeSet<usize> {
        &self.direct_at_risk
    }

    /// Dataword positions at risk of *indirect* error only (miscorrections).
    pub fn indirect_at_risk(&self) -> &BTreeSet<usize> {
        &self.indirect_at_risk
    }

    /// All dataword positions at risk of post-correction error
    /// (direct ∪ indirect).
    pub fn post_correction_at_risk(&self) -> &BTreeSet<usize> {
        &self.post_correction_at_risk
    }

    /// Every achievable pre-correction error pattern and its consequences.
    pub fn outcomes(&self) -> &[PatternOutcome] {
        &self.outcomes
    }

    /// Dataword positions at risk of post-correction error that are *not* in
    /// `covered` (e.g. not yet identified by a profiler / not yet repaired).
    pub fn missed_post_correction(&self, covered: &BTreeSet<usize>) -> BTreeSet<usize> {
        self.post_correction_at_risk
            .difference(covered)
            .copied()
            .collect()
    }

    /// Dataword positions at risk of indirect error not in `covered`.
    pub fn missed_indirect(&self, covered: &BTreeSet<usize>) -> BTreeSet<usize> {
        self.indirect_at_risk.difference(covered).copied().collect()
    }

    /// The worst-case (maximum) number of post-correction errors that can
    /// occur *simultaneously* in positions outside `repaired` — i.e. the
    /// correction capability a secondary ECC needs in order to safely perform
    /// reactive profiling after the profile `repaired` has been repaired
    /// (Fig. 9 of the paper).
    pub fn max_simultaneous_errors_outside(&self, repaired: &BTreeSet<usize>) -> usize {
        self.outcomes
            .iter()
            .map(|o| {
                o.post_correction_errors
                    .iter()
                    .filter(|p| !repaired.contains(p))
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    /// Fraction of all at-risk post-correction bits contained in `covered`.
    /// Returns 1.0 when there are no at-risk bits.
    pub fn coverage_of(&self, covered: &BTreeSet<usize>) -> f64 {
        if self.post_correction_at_risk.is_empty() {
            return 1.0;
        }
        let hit = self
            .post_correction_at_risk
            .iter()
            .filter(|p| covered.contains(p))
            .count();
        hit as f64 / self.post_correction_at_risk.len() as f64
    }
}

/// HARP-A's precomputation: given the direct-error at-risk dataword positions
/// identified during active profiling, predict the dataword positions at risk
/// of indirect error (miscorrections provoked by combinations of those bits).
///
/// HARP-A cannot predict miscorrections provoked by at-risk *parity* bits —
/// the bypass read path does not expose them — which is exactly the
/// limitation discussed in §7.3.1 of the paper. Parity positions in
/// `direct_positions` are ignored accordingly.
///
/// # Example
///
/// ```
/// use harp_ecc::{HammingCode, analysis::{predict_indirect_from_direct, FailureDependence}};
///
/// let code = HammingCode::paper_example();
/// let predicted = predict_indirect_from_direct(&code, &[0, 1], FailureDependence::TrueCell);
/// // Predictions never include the direct bits themselves.
/// assert!(!predicted.contains(&0) && !predicted.contains(&1));
/// ```
pub fn predict_indirect_from_direct<C: LinearBlockCode + ?Sized>(
    code: &C,
    direct_positions: &[usize],
    dependence: FailureDependence,
) -> BTreeSet<usize> {
    let layout = code.layout();
    let unique: BTreeSet<usize> = direct_positions
        .iter()
        .copied()
        .filter(|&p| layout.is_data(p))
        .collect();
    if unique.is_empty() {
        return BTreeSet::new();
    }
    let positions: Vec<usize> = unique.iter().copied().collect();
    let space = ErrorSpace::enumerate(code, &positions, dependence);
    space
        .post_correction_at_risk()
        .iter()
        .copied()
        .filter(|p| !unique.contains(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExtendedHammingCode, HammingCode};

    #[test]
    fn table_2_values_match_the_paper() {
        // Paper Table 2: n = 1, 2, 3, 4, 8.
        let n_values = [1u32, 2, 3, 4, 8];
        let unique: Vec<u64> = n_values
            .iter()
            .map(|&n| combinatorics::unique_error_patterns(n))
            .collect();
        let uncorrectable: Vec<u64> = n_values
            .iter()
            .map(|&n| combinatorics::uncorrectable_patterns(n))
            .collect();
        let post: Vec<u64> = n_values
            .iter()
            .map(|&n| combinatorics::worst_case_post_correction_at_risk(n))
            .collect();
        assert_eq!(unique, vec![1, 3, 7, 15, 255]);
        // The paper's printed table lists "2" for n = 2, which contradicts its
        // own formula 2^n − n − 1 (= 1); we follow the formula, which matches
        // every other column of the table.
        assert_eq!(uncorrectable, vec![0, 1, 4, 11, 247]);
        assert_eq!(post, vec![1, 3, 7, 15, 255]);
    }

    #[test]
    fn data_positions_are_always_chargeable_for_true_cells() {
        let code = HammingCode::random(64, 7).unwrap();
        let all_data: Vec<usize> = (0..64).collect();
        assert!(is_chargeable(&code, &all_data, FailureDependence::TrueCell));
        assert!(is_chargeable(&code, &all_data, FailureDependence::AntiCell));
        assert!(is_chargeable(&code, &[], FailureDependence::TrueCell));
    }

    #[test]
    fn charging_dataword_satisfies_the_constraints() {
        let code = HammingCode::random(32, 3).unwrap();
        let positions = vec![0, 5, 33, 37]; // two data bits, two parity bits
        if let Some(d) = charging_dataword(&code, &positions, FailureDependence::TrueCell) {
            let c = code.encode(&d);
            for &pos in &positions {
                assert!(c.get(pos), "position {pos} not charged by {d}");
            }
        } else {
            panic!("expected a charging dataword to exist");
        }
    }

    #[test]
    fn charging_dataword_works_for_secded_parity_positions() {
        // The generic chargeability analysis must understand the extended
        // code's parity block, including the overall-parity row.
        let code = ExtendedHammingCode::random(32, 3).unwrap();
        let overall = code.overall_parity_position();
        let positions = vec![1, 36, overall];
        if let Some(d) = charging_dataword(&code, &positions, FailureDependence::TrueCell) {
            let c = code.encode(&d);
            for &pos in &positions {
                assert!(c.get(pos), "position {pos} not charged by {d}");
            }
        }
    }

    #[test]
    fn charging_dataword_anticell_clears_positions() {
        let code = HammingCode::random(32, 4).unwrap();
        let positions = vec![1, 2, 35];
        let d = charging_dataword(&code, &positions, FailureDependence::AntiCell)
            .expect("anti-cell charging pattern exists");
        let c = code.encode(&d);
        for &pos in &positions {
            assert!(!c.get(pos), "position {pos} should store 0");
        }
    }

    #[test]
    fn data_independent_dependence_is_always_chargeable() {
        let code = HammingCode::paper_example();
        assert!(is_chargeable(
            &code,
            &[0, 4, 5, 6],
            FailureDependence::DataIndependent
        ));
    }

    #[test]
    fn infeasible_charge_sets_are_detected() {
        // With all four data bits charged, each parity bit of the (7, 4)
        // example code is forced to a fixed value; asking a parity bit to be
        // charged is feasible exactly when that forced value is 1.
        let code = HammingCode::paper_example();
        let d = BitVec::ones(4);
        let c = code.encode(&d);
        for parity_pos in 4..7 {
            let positions = vec![0, 1, 2, 3, parity_pos];
            let feasible = is_chargeable(&code, &positions, FailureDependence::TrueCell);
            assert_eq!(
                feasible,
                c.get(parity_pos),
                "feasibility must match the forced parity value at {parity_pos}"
            );
        }
    }

    #[test]
    fn classify_no_error_and_true_correction() {
        let code = HammingCode::paper_example();
        let data = BitVec::from_u64(4, 0b1010);
        let clean = code.decode(&code.encode(&data));
        assert_eq!(
            classify_decode(&code, &BitVec::zeros(7), &clean),
            GroundTruth::NoError
        );
        let raw = BitVec::from_indices(7, [6]);
        let result = code.encode_corrupt_decode(&data, &raw);
        assert_eq!(
            classify_decode(&code, &raw, &result),
            GroundTruth::CorrectedTrue { positions: vec![6] }
        );
    }

    #[test]
    fn classify_identifies_miscorrections() {
        let code = HammingCode::paper_example();
        let data = BitVec::ones(4);
        let mut found_miscorrection = false;
        for i in 0..7 {
            for j in (i + 1)..7 {
                let raw = BitVec::from_indices(7, [i, j]);
                let result = code.encode_corrupt_decode(&data, &raw);
                match classify_decode(&code, &raw, &result) {
                    GroundTruth::Miscorrected {
                        flipped,
                        raw_errors,
                    } => {
                        found_miscorrection = true;
                        for f in &flipped {
                            assert!(!raw_errors.contains(f));
                        }
                        assert_eq!(raw_errors, vec![i, j]);
                    }
                    GroundTruth::DetectedUncorrectable { .. } => {}
                    other => panic!("double error ({i},{j}) classified as {other:?}"),
                }
            }
        }
        // A (7,4) Hamming code has no unmatched syndromes, so every double
        // error miscorrects.
        assert!(found_miscorrection);
    }

    #[test]
    fn classify_detects_silent_corruption() {
        let code = HammingCode::paper_example();
        let data = BitVec::ones(4);
        // A raw error pattern equal to a nonzero codeword has zero syndrome.
        let nonzero_data = BitVec::from_indices(4, [0]);
        let raw = code.encode(&nonzero_data);
        let result = code.encode_corrupt_decode(&data, &raw);
        match classify_decode(&code, &raw, &result) {
            GroundTruth::SilentCorruption { raw_errors } => {
                assert_eq!(raw_errors, raw.iter_ones().collect::<Vec<_>>());
            }
            other => panic!("expected silent corruption, got {other:?}"),
        }
    }

    #[test]
    fn secded_double_errors_classify_as_detected_uncorrectable() {
        let code = ExtendedHammingCode::random(16, 8).unwrap();
        let data = BitVec::ones(16);
        let raw = BitVec::from_indices(code.codeword_len(), [2, 9]);
        let result = code.encode_corrupt_decode(&data, &raw);
        assert_eq!(
            classify_decode(&code, &raw, &result),
            GroundTruth::DetectedUncorrectable {
                raw_errors: vec![2, 9]
            }
        );
    }

    #[test]
    fn error_space_single_at_risk_bit_has_no_indirect_errors() {
        let code = HammingCode::random(64, 19).unwrap();
        let space = ErrorSpace::enumerate(&code, &[10], FailureDependence::TrueCell);
        // A single raw error is always corrected, so nothing is at risk.
        assert!(space.post_correction_at_risk().is_empty());
        assert_eq!(space.direct_at_risk().len(), 1);
        assert!(space.indirect_at_risk().is_empty());
        assert_eq!(space.outcomes().len(), 1);
        assert!(space.outcomes()[0].post_correction_errors.is_empty());
        assert_eq!(space.outcomes()[0].miscorrection(), None);
    }

    #[test]
    fn error_space_two_data_bits_exposes_direct_and_indirect() {
        let code = HammingCode::random(64, 23).unwrap();
        let space = ErrorSpace::enumerate(&code, &[3, 40], FailureDependence::TrueCell);
        assert_eq!(
            space.direct_at_risk().iter().copied().collect::<Vec<_>>(),
            vec![3, 40]
        );
        // The double-error pattern either miscorrects into a third data bit
        // (3 post-correction at-risk bits) or into a parity bit / unmatched
        // syndrome (2 at-risk bits).
        let at_risk = space.post_correction_at_risk().len();
        assert!(
            (2..=3).contains(&at_risk),
            "unexpected at-risk count {at_risk}"
        );
        assert!(space
            .direct_at_risk()
            .is_subset(space.post_correction_at_risk()));
    }

    #[test]
    fn error_space_parity_at_risk_bits_cause_indirect_only() {
        let code = HammingCode::random(64, 29).unwrap();
        // Two parity positions at risk: no direct errors are possible, but
        // their combined failure can miscorrect into a data bit.
        let space = ErrorSpace::enumerate(&code, &[64, 70], FailureDependence::TrueCell);
        assert!(space.direct_at_risk().is_empty());
        for &bit in space.post_correction_at_risk() {
            assert!(bit < 64);
            assert!(space.indirect_at_risk().contains(&bit));
        }
    }

    #[test]
    fn error_space_amplification_grows_with_at_risk_count() {
        // More at-risk pre-correction bits -> more at-risk post-correction
        // bits (the combinatorial explosion of §4.1).
        let code = HammingCode::random(64, 31).unwrap();
        let small = ErrorSpace::enumerate(&code, &[0, 1], FailureDependence::TrueCell);
        let large = ErrorSpace::enumerate(&code, &[0, 1, 2, 3, 4], FailureDependence::TrueCell);
        assert!(large.post_correction_at_risk().len() >= small.post_correction_at_risk().len());
        assert!(large.post_correction_at_risk().len() > 5);
    }

    #[test]
    fn secded_pairwise_at_risk_bits_produce_no_indirect_errors() {
        // The SEC-DED scenario in one assertion: every pair of at-risk bits
        // is detected rather than miscorrected, so two at-risk bits expose
        // no indirect errors at all.
        let code = ExtendedHammingCode::random(64, 31).unwrap();
        let space = ErrorSpace::enumerate(&code, &[3, 40], FailureDependence::TrueCell);
        assert!(space.indirect_at_risk().is_empty());
        assert_eq!(space.post_correction_at_risk().len(), 2);
        // A SEC code with the same at-risk bits usually does worse (2 or 3).
        let sec = HammingCode::random(64, 31).unwrap();
        let sec_space = ErrorSpace::enumerate(&sec, &[3, 40], FailureDependence::TrueCell);
        assert!(sec_space.post_correction_at_risk().len() >= 2);
    }

    #[test]
    fn max_simultaneous_errors_shrinks_as_profile_grows() {
        let code = HammingCode::random(64, 37).unwrap();
        let at_risk = vec![0, 1, 2, 3];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let empty = BTreeSet::new();
        let full: BTreeSet<usize> = space.post_correction_at_risk().clone();
        let max_unrepaired = space.max_simultaneous_errors_outside(&empty);
        let max_repaired = space.max_simultaneous_errors_outside(&full);
        assert!(max_unrepaired >= 2, "4 at-risk data bits can fail together");
        assert_eq!(max_repaired, 0);
        // Repairing only the direct bits leaves at most one (indirect) error,
        // the key guarantee behind HARP's reactive phase (§5.1).
        let direct: BTreeSet<usize> = space.direct_at_risk().clone();
        assert!(space.max_simultaneous_errors_outside(&direct) <= 1);
    }

    #[test]
    fn coverage_of_reports_fraction() {
        let code = HammingCode::random(64, 41).unwrap();
        let space = ErrorSpace::enumerate(&code, &[5, 6, 7], FailureDependence::TrueCell);
        let empty = BTreeSet::new();
        assert_eq!(space.coverage_of(&empty), 0.0);
        assert_eq!(space.coverage_of(space.post_correction_at_risk()), 1.0);
        let missed = space.missed_post_correction(&empty);
        assert_eq!(&missed, space.post_correction_at_risk());
        assert_eq!(space.missed_indirect(space.indirect_at_risk()).len(), 0);
    }

    #[test]
    fn empty_at_risk_set_is_fully_covered() {
        let code = HammingCode::paper_example();
        let space = ErrorSpace::enumerate(&code, &[], FailureDependence::TrueCell);
        assert!(space.post_correction_at_risk().is_empty());
        assert_eq!(space.coverage_of(&BTreeSet::new()), 1.0);
        assert_eq!(space.max_simultaneous_errors_outside(&BTreeSet::new()), 0);
    }

    #[test]
    fn predict_indirect_matches_error_space_for_data_only_risk() {
        // When all at-risk bits are data bits, HARP-A's prediction from the
        // full direct set must equal the ground-truth indirect set.
        let code = HammingCode::random(64, 43).unwrap();
        let at_risk = vec![2, 17, 33, 56];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let predicted = predict_indirect_from_direct(&code, &at_risk, FailureDependence::TrueCell);
        assert_eq!(&predicted, space.indirect_at_risk());
    }

    #[test]
    fn predict_indirect_cannot_see_parity_driven_miscorrections() {
        let code = HammingCode::random(64, 47).unwrap();
        // Mix of data and parity at-risk bits.
        let at_risk = vec![1, 2, 64, 65];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let predicted = predict_indirect_from_direct(&code, &[1, 2], FailureDependence::TrueCell);
        // Every predicted bit is genuinely at risk...
        for bit in &predicted {
            assert!(space.indirect_at_risk().contains(bit));
        }
        // ...but prediction is (in general) a subset because parity-driven
        // miscorrections are invisible to HARP-A.
        assert!(predicted.len() <= space.indirect_at_risk().len());
    }

    #[test]
    fn predict_indirect_ignores_parity_positions_in_the_input() {
        let code = HammingCode::random(64, 49).unwrap();
        let with_parity =
            predict_indirect_from_direct(&code, &[1, 2, 64, 65], FailureDependence::TrueCell);
        let data_only = predict_indirect_from_direct(&code, &[1, 2], FailureDependence::TrueCell);
        assert_eq!(with_parity, data_only);
        assert!(predict_indirect_from_direct(&code, &[], FailureDependence::TrueCell).is_empty());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn error_space_rejects_oversized_at_risk_sets() {
        let code = HammingCode::random(64, 53).unwrap();
        let too_many: Vec<usize> = (0..=ErrorSpace::MAX_AT_RISK_BITS).collect();
        ErrorSpace::enumerate(&code, &too_many, FailureDependence::TrueCell);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Every post-correction error observed in Monte-Carlo simulation
            /// must be contained in the enumerated error space.
            #[test]
            fn observed_errors_are_subset_of_enumerated_space(
                seed in 0u64..200,
                at_risk in proptest::collection::btree_set(0usize..71, 1..6),
            ) {
                let code = HammingCode::random(64, seed).unwrap();
                let positions: Vec<usize> = at_risk.iter().copied().collect();
                let space =
                    ErrorSpace::enumerate(&code, &positions, FailureDependence::TrueCell);
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xABCD);
                for _ in 0..40 {
                    // Random dataword, random subset of at-risk bits fail if charged.
                    let data = BitVec::from_bools(
                        &(0..64)
                            .map(|_| rand::Rng::gen_bool(&mut rng, 0.5))
                            .collect::<Vec<_>>(),
                    );
                    let encoded = code.encode(&data);
                    let mut raw = BitVec::zeros(code.codeword_len());
                    for &pos in &positions {
                        if encoded.get(pos) && rand::Rng::gen_bool(&mut rng, 0.5) {
                            raw.set(pos, true);
                        }
                    }
                    let result = code.encode_corrupt_decode(&data, &raw);
                    for err in result.post_correction_errors(&data) {
                        prop_assert!(
                            space.post_correction_at_risk().contains(&err),
                            "observed error {} not predicted", err
                        );
                    }
                }
            }

            /// Direct and indirect sets partition the post-correction set.
            #[test]
            fn direct_and_indirect_partition_post_correction(
                seed in 0u64..200,
                at_risk in proptest::collection::btree_set(0usize..71, 1..6),
            ) {
                let code = HammingCode::random(64, seed).unwrap();
                let positions: Vec<usize> = at_risk.iter().copied().collect();
                let space =
                    ErrorSpace::enumerate(&code, &positions, FailureDependence::TrueCell);
                let union: BTreeSet<usize> = space
                    .direct_at_risk()
                    .union(space.indirect_at_risk())
                    .copied()
                    .collect();
                prop_assert!(space.post_correction_at_risk().is_subset(&union));
                let overlap: Vec<usize> = space
                    .direct_at_risk()
                    .intersection(space.indirect_at_risk())
                    .copied()
                    .collect();
                prop_assert!(overlap.is_empty());
            }

            /// After repairing every direct at-risk bit, at most one
            /// (indirect) error can occur at a time — the invariant that lets
            /// HARP's SEC secondary ECC safely perform reactive profiling.
            #[test]
            fn repairing_direct_bits_bounds_simultaneous_errors(
                seed in 0u64..200,
                at_risk in proptest::collection::btree_set(0usize..64, 1..6),
            ) {
                let code = HammingCode::random(64, seed).unwrap();
                let positions: Vec<usize> = at_risk.iter().copied().collect();
                let space =
                    ErrorSpace::enumerate(&code, &positions, FailureDependence::TrueCell);
                let direct: BTreeSet<usize> = space.direct_at_risk().clone();
                prop_assert!(space.max_simultaneous_errors_outside(&direct) <= 1);
            }

            /// The same invariant through the trait for the SEC-DED code:
            /// its detection of double errors can only shrink the space.
            #[test]
            fn secded_space_is_never_larger_than_sec_space(
                seed in 0u64..100,
                at_risk in proptest::collection::btree_set(0usize..64, 1..5),
            ) {
                let sec = HammingCode::random(64, seed).unwrap();
                let secded = ExtendedHammingCode::from_hamming(sec.clone());
                let positions: Vec<usize> = at_risk.iter().copied().collect();
                let sec_space =
                    ErrorSpace::enumerate(&sec, &positions, FailureDependence::TrueCell);
                let secded_space =
                    ErrorSpace::enumerate(&secded, &positions, FailureDependence::TrueCell);
                prop_assert!(
                    secded_space.indirect_at_risk().len()
                        <= sec_space.indirect_at_risk().len()
                );
            }
        }
    }
}
