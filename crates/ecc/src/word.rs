//! Codeword layout helpers: which bit positions are data and which are parity.
//!
//! The paper assumes *systematic* encoding (§2.5.2): the first `k` codeword
//! bits are the dataword verbatim and the remaining `p` bits are parity-check
//! bits computed from the data. [`WordLayout`] captures that convention so the
//! rest of the stack never hard-codes index arithmetic.

use serde::{Deserialize, Serialize};

/// Classification of a single codeword bit position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BitClass {
    /// The bit holds one of the `k` systematically encoded data bits.
    Data,
    /// The bit holds one of the `p` parity-check bits, invisible outside the
    /// memory chip.
    Parity,
}

/// The systematic layout of an ECC word: `k` data bits followed by `p`
/// parity-check bits.
///
/// # Example
///
/// ```
/// use harp_ecc::{WordLayout, BitClass};
///
/// let layout = WordLayout::new(64, 7);
/// assert_eq!(layout.codeword_len(), 71);
/// assert_eq!(layout.classify(10), BitClass::Data);
/// assert_eq!(layout.classify(70), BitClass::Parity);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WordLayout {
    data_bits: usize,
    parity_bits: usize,
}

impl WordLayout {
    /// Creates a layout with `data_bits` data bits and `parity_bits` parity bits.
    pub fn new(data_bits: usize, parity_bits: usize) -> Self {
        Self {
            data_bits,
            parity_bits,
        }
    }

    /// Number of data bits (`k`).
    pub fn data_len(&self) -> usize {
        self.data_bits
    }

    /// Number of parity-check bits (`p`).
    pub fn parity_len(&self) -> usize {
        self.parity_bits
    }

    /// Total codeword length (`k + p`).
    pub fn codeword_len(&self) -> usize {
        self.data_bits + self.parity_bits
    }

    /// Classifies codeword position `pos` as data or parity.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= codeword_len()`.
    pub fn classify(&self, pos: usize) -> BitClass {
        assert!(
            pos < self.codeword_len(),
            "codeword position {pos} out of range {}",
            self.codeword_len()
        );
        if pos < self.data_bits {
            BitClass::Data
        } else {
            BitClass::Parity
        }
    }

    /// Returns `true` if `pos` is a data position.
    pub fn is_data(&self, pos: usize) -> bool {
        self.classify(pos) == BitClass::Data
    }

    /// Returns `true` if `pos` is a parity position.
    pub fn is_parity(&self, pos: usize) -> bool {
        self.classify(pos) == BitClass::Parity
    }

    /// Iterator over the data positions `0..k`.
    pub fn data_positions(&self) -> std::ops::Range<usize> {
        0..self.data_bits
    }

    /// Iterator over the parity positions `k..k+p`.
    pub fn parity_positions(&self) -> std::ops::Range<usize> {
        self.data_bits..self.codeword_len()
    }

    /// Maps a parity position to its row index in the parity-check matrix.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is not a parity position.
    pub fn parity_index(&self, pos: usize) -> usize {
        assert!(self.is_parity(pos), "position {pos} is not a parity bit");
        pos - self.data_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_71_64_matches_paper_configuration() {
        let layout = WordLayout::new(64, 7);
        assert_eq!(layout.data_len(), 64);
        assert_eq!(layout.parity_len(), 7);
        assert_eq!(layout.codeword_len(), 71);
        assert_eq!(layout.data_positions().count(), 64);
        assert_eq!(layout.parity_positions().count(), 7);
    }

    #[test]
    fn classification_boundary_is_at_k() {
        let layout = WordLayout::new(4, 3);
        assert!(layout.is_data(0));
        assert!(layout.is_data(3));
        assert!(layout.is_parity(4));
        assert!(layout.is_parity(6));
        assert_eq!(layout.classify(3), BitClass::Data);
        assert_eq!(layout.classify(4), BitClass::Parity);
    }

    #[test]
    fn parity_index_maps_to_matrix_rows() {
        let layout = WordLayout::new(64, 7);
        assert_eq!(layout.parity_index(64), 0);
        assert_eq!(layout.parity_index(70), 6);
    }

    #[test]
    #[should_panic(expected = "not a parity bit")]
    fn parity_index_of_data_position_panics() {
        WordLayout::new(8, 4).parity_index(3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn classify_out_of_range_panics() {
        WordLayout::new(8, 4).classify(12);
    }
}
