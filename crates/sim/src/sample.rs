//! Monte-Carlo sampling of ECC words.
//!
//! Each sample is one simulated ECC word: a randomly generated code (shared
//! by all words of the same code index) plus a set of at-risk pre-correction
//! bits with a per-bit error probability. The sampling is fully
//! deterministic given the [`EvaluationConfig`] base seed, so all profilers
//! are evaluated against the exact same population of words — the fairness
//! requirement of §7.1.2.
//!
//! Sampling is generic over the on-die ECC code: [`sample_words_with`]
//! accepts any seeded code factory, so the same word populations (same
//! at-risk sets, same campaign seeds) can be generated for Hamming, SEC-DED,
//! or BCH words and compared head-to-head ([`sample_words`] is the Hamming
//! convenience wrapper used by the paper-reproduction experiments).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use harp_ecc::{HammingCode, LinearBlockCode};
use harp_memsim::fault::RetentionSampler;
use harp_memsim::FaultModel;

use crate::config::EvaluationConfig;

/// One simulated ECC word, generic over the protecting code.
#[derive(Debug, Clone)]
pub struct WordSample<C: LinearBlockCode = HammingCode> {
    /// Index of the randomly generated code this word belongs to.
    pub code_index: usize,
    /// Index of the word within its code.
    pub word_index: usize,
    /// The on-die ECC code protecting this word.
    pub code: C,
    /// The word's at-risk bits and their failure probability.
    pub faults: FaultModel,
    /// Deterministic seed for the profiling campaign on this word.
    pub campaign_seed: u64,
}

/// Generates the word population for one (error count, probability)
/// configuration, building each per-code-index code with `make_code`
/// (invoked with a deterministic seed).
///
/// The at-risk *positions* are sampled over each code's own codeword length,
/// so populations generated for different code families share the sampling
/// methodology (and campaign seeds) even when their codeword geometries
/// differ.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`EvaluationConfig::validate`]).
pub fn sample_words_with<C, F>(
    config: &EvaluationConfig,
    error_count: usize,
    probability: f64,
    make_code: F,
) -> Vec<WordSample<C>>
where
    C: LinearBlockCode + Clone,
    F: Fn(u64) -> C,
{
    config.validate();
    let sampler = RetentionSampler::new(0.0, probability);
    let mut samples = Vec::with_capacity(config.words_total());
    for code_index in 0..config.num_codes {
        let code_seed = config.seed_for(code_index, 0, 0xC0DE);
        let code = make_code(code_seed);
        for word_index in 0..config.words_per_code {
            let word_seed = config.seed_for(code_index, word_index, error_count as u64);
            let mut rng = ChaCha8Rng::seed_from_u64(word_seed);
            let faults = sampler.sample_word_with_count(code.codeword_len(), error_count, &mut rng);
            samples.push(WordSample {
                code_index,
                word_index,
                code: code.clone(),
                faults,
                campaign_seed: word_seed ^ 0xA11C_E5ED,
            });
        }
    }
    samples
}

/// Generates the word population for one (error count, probability)
/// configuration with randomly generated SEC Hamming codes (the paper's
/// evaluated configuration).
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`EvaluationConfig::validate`]) or code generation fails.
pub fn sample_words(
    config: &EvaluationConfig,
    error_count: usize,
    probability: f64,
) -> Vec<WordSample> {
    sample_words_with(config, error_count, probability, |seed| {
        HammingCode::random(config.data_bits, seed)
            .expect("valid configuration always yields a valid code")
    })
}

/// Generates a word population for the data-retention case study (Fig. 10):
/// at-risk bits are sampled per cell with probability `rber` instead of a
/// fixed per-word count.
pub fn sample_retention_words(
    config: &EvaluationConfig,
    rber: f64,
    probability: f64,
) -> Vec<WordSample> {
    config.validate();
    let sampler = RetentionSampler::new(rber, probability);
    let mut samples = Vec::with_capacity(config.words_total());
    for code_index in 0..config.num_codes {
        let code_seed = config.seed_for(code_index, 0, 0xC0DE);
        let code = HammingCode::random(config.data_bits, code_seed)
            .expect("valid configuration always yields a valid code");
        for word_index in 0..config.words_per_code {
            let word_seed = config.seed_for(code_index, word_index, (rber * 1e12) as u64);
            let mut rng = ChaCha8Rng::seed_from_u64(word_seed);
            let mut faults = sampler.sample_word(code.codeword_len(), &mut rng);
            // Exhaustive ground-truth analysis is exponential in the at-risk
            // count; clamp pathological samples (essentially impossible at
            // the RBERs the paper sweeps, but cheap insurance).
            if faults.at_risk_bits().len() > harp_ecc::ErrorSpace::MAX_AT_RISK_BITS {
                let clamped: Vec<_> =
                    faults.at_risk_bits()[..harp_ecc::ErrorSpace::MAX_AT_RISK_BITS].to_vec();
                faults = FaultModel::new(clamped, faults.dependence());
            }
            samples.push(WordSample {
                code_index,
                word_index,
                code: code.clone(),
                faults,
                campaign_seed: word_seed ^ 0xA11C_E5ED,
            });
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let config = EvaluationConfig::smoke();
        let a = sample_words(&config, 3, 0.5);
        let b = sample_words(&config, 3, 0.5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.code, y.code);
            assert_eq!(x.faults, y.faults);
            assert_eq!(x.campaign_seed, y.campaign_seed);
        }
    }

    #[test]
    fn sample_count_matches_config() {
        let config = EvaluationConfig::smoke();
        let samples = sample_words(&config, 2, 1.0);
        assert_eq!(samples.len(), config.words_total());
        for s in &samples {
            assert_eq!(s.faults.at_risk_positions().len(), 2);
            assert_eq!(s.code.data_len(), config.data_bits);
            for bit in s.faults.at_risk_bits() {
                assert_eq!(bit.probability, 1.0);
            }
        }
    }

    #[test]
    fn words_of_the_same_code_share_the_parity_check_matrix() {
        let config = EvaluationConfig::smoke();
        let samples = sample_words(&config, 2, 0.5);
        let first_code = &samples[0].code;
        for s in samples.iter().filter(|s| s.code_index == 0) {
            assert_eq!(&s.code, first_code);
        }
        // Different code indices produce different matrices.
        let other = samples.iter().find(|s| s.code_index == 1).unwrap();
        assert_ne!(&other.code, first_code);
    }

    #[test]
    fn different_error_counts_produce_different_at_risk_sets() {
        let config = EvaluationConfig::smoke();
        let two = sample_words(&config, 2, 0.5);
        let four = sample_words(&config, 4, 0.5);
        assert!(two.iter().all(|s| s.faults.at_risk_positions().len() == 2));
        assert!(four.iter().all(|s| s.faults.at_risk_positions().len() == 4));
    }

    #[test]
    fn retention_sampling_tracks_rber() {
        let mut config = EvaluationConfig::smoke();
        config.words_per_code = 64;
        let samples = sample_retention_words(&config, 0.05, 0.75);
        let total_at_risk: usize = samples
            .iter()
            .map(|s| s.faults.at_risk_positions().len())
            .sum();
        let density = total_at_risk as f64 / (samples.len() * 71) as f64;
        assert!(
            (density - 0.05).abs() < 0.02,
            "empirical density {density} too far from 0.05"
        );
        for s in &samples {
            assert!(s.faults.at_risk_positions().len() <= harp_ecc::ErrorSpace::MAX_AT_RISK_BITS);
        }
    }
}
