//! Monte-Carlo sampling of ECC words.
//!
//! Each sample is one simulated ECC word: a randomly generated code (shared
//! by all words of the same code index) plus a set of at-risk pre-correction
//! bits with a per-bit error probability. The sampling is fully
//! deterministic given the [`EvaluationConfig`] base seed, so all profilers
//! are evaluated against the exact same population of words — the fairness
//! requirement of §7.1.2.
//!
//! Sampling is generic over the on-die ECC code: [`sample_words_with`]
//! accepts any seeded code factory, so the same word populations (same
//! at-risk sets, same campaign seeds) can be generated for Hamming, SEC-DED,
//! or BCH words and compared head-to-head ([`sample_words`] is the Hamming
//! convenience wrapper used by the paper-reproduction experiments).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use harp_ecc::{HammingCode, LinearBlockCode};
use harp_memsim::fault::RetentionSampler;
use harp_memsim::FaultModel;

use crate::config::EvaluationConfig;

/// One simulated ECC word, generic over the protecting code.
#[derive(Debug, Clone)]
pub struct WordSample<C: LinearBlockCode = HammingCode> {
    /// Index of the randomly generated code this word belongs to.
    pub code_index: usize,
    /// Index of the word within its code.
    pub word_index: usize,
    /// The on-die ECC code protecting this word.
    pub code: C,
    /// The word's at-risk bits and their failure probability.
    pub faults: FaultModel,
    /// Deterministic seed for the profiling campaign on this word.
    pub campaign_seed: u64,
}

/// The shared population builder: one code per code index (built by
/// `make_code` from a deterministic seed), `words_per_code` words per code,
/// each word's fault model drawn by `sample_faults` from the word's own
/// seeded RNG. Both the coverage-sweep and the data-retention samplers are
/// thin wrappers around this loop, so their populations share the code
/// generation, word seeding, and campaign-seed derivation exactly.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`EvaluationConfig::validate`]).
fn build_population<C, F, G>(
    config: &EvaluationConfig,
    word_salt: u64,
    make_code: F,
    mut sample_faults: G,
) -> Vec<WordSample<C>>
where
    C: LinearBlockCode + Clone,
    F: Fn(u64) -> C,
    G: FnMut(&C, &mut ChaCha8Rng) -> FaultModel,
{
    config.validate();
    let mut samples = Vec::with_capacity(config.words_total());
    for code_index in 0..config.num_codes {
        let code_seed = config.seed_for(code_index, 0, 0xC0DE);
        let code = make_code(code_seed);
        for word_index in 0..config.words_per_code {
            let word_seed = config.seed_for(code_index, word_index, word_salt);
            let mut rng = ChaCha8Rng::seed_from_u64(word_seed);
            let faults = sample_faults(&code, &mut rng);
            samples.push(WordSample {
                code_index,
                word_index,
                code: code.clone(),
                faults,
                campaign_seed: word_seed ^ 0xA11C_E5ED,
            });
        }
    }
    samples
}

/// Generates the word population for one (error count, probability)
/// configuration, building each per-code-index code with `make_code`
/// (invoked with a deterministic seed).
///
/// The at-risk *positions* are sampled over each code's own codeword length,
/// so populations generated for different code families share the sampling
/// methodology (and campaign seeds) even when their codeword geometries
/// differ.
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`EvaluationConfig::validate`]).
pub fn sample_words_with<C, F>(
    config: &EvaluationConfig,
    error_count: usize,
    probability: f64,
    make_code: F,
) -> Vec<WordSample<C>>
where
    C: LinearBlockCode + Clone,
    F: Fn(u64) -> C,
{
    let sampler = RetentionSampler::new(0.0, probability);
    build_population(config, error_count as u64, make_code, |code, rng| {
        sampler.sample_word_with_count(code.codeword_len(), error_count, rng)
    })
}

/// Generates the word population for one (error count, probability)
/// configuration with randomly generated SEC Hamming codes (the paper's
/// evaluated configuration).
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`EvaluationConfig::validate`]) or code generation fails.
pub fn sample_words(
    config: &EvaluationConfig,
    error_count: usize,
    probability: f64,
) -> Vec<WordSample> {
    sample_words_with(config, error_count, probability, |seed| {
        HammingCode::random(config.data_bits, seed)
            .expect("valid configuration always yields a valid code")
    })
}

/// Generates a word population for the data-retention case study (Fig. 10):
/// at-risk bits are sampled per cell with probability `rber` instead of a
/// fixed per-word count.
pub fn sample_retention_words(
    config: &EvaluationConfig,
    rber: f64,
    probability: f64,
) -> Vec<WordSample> {
    let sampler = RetentionSampler::new(rber, probability);
    let make_code = |seed| {
        HammingCode::random(config.data_bits, seed)
            .expect("valid configuration always yields a valid code")
    };
    build_population(config, (rber * 1e12) as u64, make_code, |code, rng| {
        let faults = sampler.sample_word(code.codeword_len(), rng);
        // Exhaustive ground-truth analysis is exponential in the at-risk
        // count; clamp pathological samples (essentially impossible at
        // the RBERs the paper sweeps, but cheap insurance).
        if faults.at_risk_bits().len() > harp_ecc::ErrorSpace::MAX_AT_RISK_BITS {
            let clamped: Vec<_> =
                faults.at_risk_bits()[..harp_ecc::ErrorSpace::MAX_AT_RISK_BITS].to_vec();
            FaultModel::new(clamped, faults.dependence())
        } else {
            faults
        }
    })
}

/// Groups a population into its **sweep cells by code**: contiguous runs of
/// words sharing a `code_index` (and therefore a parity-check matrix). The
/// samplers above emit words in code-major order, so each returned slice is
/// one complete code group, in code-index order.
///
/// This is the unit of cell-batched execution: every group becomes one
/// [`harp_profiler::CampaignBatch`] scrubbed with a single burst per round,
/// and `runner::parallel_map` shards across the groups (after
/// [`shard_groups`] splits oversized groups so every worker thread has
/// work).
pub fn group_by_code<C: LinearBlockCode>(samples: &[WordSample<C>]) -> Vec<&[WordSample<C>]> {
    let mut groups = Vec::new();
    let mut start = 0;
    for end in 1..=samples.len() {
        if end == samples.len() || samples[end].code_index != samples[start].code_index {
            groups.push(&samples[start..end]);
            start = end;
        }
    }
    groups
}

/// Splits code groups into sub-shards when there are fewer groups than
/// worker threads, so cell-batched execution never caps parallelism at the
/// number of codes (e.g. `num_codes = 2`, `threads = 16`). Word order within
/// and across groups is preserved, and each sub-shard still holds words of a
/// single code, so it batches into one `CampaignBatch` like a full group.
///
/// Safe by construction: a word's campaign snapshots do not depend on its
/// cell membership (each word keeps its own RNG streams — the invariant the
/// `campaign_equivalence` differential suite enforces), so any partition of
/// a group produces identical results.
pub fn shard_groups<C: LinearBlockCode>(
    groups: Vec<&[WordSample<C>]>,
    threads: usize,
) -> Vec<&[WordSample<C>]> {
    let total: usize = groups.iter().map(|group| group.len()).sum();
    if threads <= groups.len() || total == 0 {
        return groups;
    }
    // Aim for ~2 shards per thread so uneven cells still load-balance.
    let target_shards = (threads * 2).min(total);
    let shard_size = total.div_ceil(target_shards).max(1);
    groups
        .into_iter()
        .flat_map(|group| group.chunks(shard_size))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let config = EvaluationConfig::smoke();
        let a = sample_words(&config, 3, 0.5);
        let b = sample_words(&config, 3, 0.5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.code, y.code);
            assert_eq!(x.faults, y.faults);
            assert_eq!(x.campaign_seed, y.campaign_seed);
        }
    }

    #[test]
    fn sample_count_matches_config() {
        let config = EvaluationConfig::smoke();
        let samples = sample_words(&config, 2, 1.0);
        assert_eq!(samples.len(), config.words_total());
        for s in &samples {
            assert_eq!(s.faults.at_risk_positions().len(), 2);
            assert_eq!(s.code.data_len(), config.data_bits);
            for bit in s.faults.at_risk_bits() {
                assert_eq!(bit.probability, 1.0);
            }
        }
    }

    #[test]
    fn words_of_the_same_code_share_the_parity_check_matrix() {
        let config = EvaluationConfig::smoke();
        let samples = sample_words(&config, 2, 0.5);
        let first_code = &samples[0].code;
        for s in samples.iter().filter(|s| s.code_index == 0) {
            assert_eq!(&s.code, first_code);
        }
        // Different code indices produce different matrices.
        let other = samples.iter().find(|s| s.code_index == 1).unwrap();
        assert_ne!(&other.code, first_code);
    }

    #[test]
    fn different_error_counts_produce_different_at_risk_sets() {
        let config = EvaluationConfig::smoke();
        let two = sample_words(&config, 2, 0.5);
        let four = sample_words(&config, 4, 0.5);
        assert!(two.iter().all(|s| s.faults.at_risk_positions().len() == 2));
        assert!(four.iter().all(|s| s.faults.at_risk_positions().len() == 4));
    }

    #[test]
    fn group_by_code_yields_one_complete_group_per_code() {
        let config = EvaluationConfig::smoke();
        let samples = sample_words(&config, 2, 0.5);
        let groups = group_by_code(&samples);
        assert_eq!(groups.len(), config.num_codes);
        for (code_index, group) in groups.iter().enumerate() {
            assert_eq!(group.len(), config.words_per_code);
            for (word_index, sample) in group.iter().enumerate() {
                assert_eq!(sample.code_index, code_index);
                assert_eq!(sample.word_index, word_index);
                assert_eq!(&sample.code, &group[0].code);
            }
        }
        // The grouping is a pure view: concatenating the groups reproduces
        // the population in order.
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, samples.len());
    }

    #[test]
    fn group_by_code_handles_empty_and_single_word_populations() {
        let empty: Vec<WordSample> = Vec::new();
        assert!(group_by_code(&empty).is_empty());

        let config = EvaluationConfig {
            num_codes: 3,
            words_per_code: 1,
            ..EvaluationConfig::smoke()
        };
        let samples = sample_words(&config, 2, 1.0);
        let groups = group_by_code(&samples);
        assert_eq!(groups.len(), 3);
        assert!(groups.iter().all(|g| g.len() == 1));
    }

    #[test]
    fn shard_groups_is_a_no_op_when_groups_cover_the_threads() {
        let config = EvaluationConfig::smoke();
        let samples = sample_words(&config, 2, 0.5);
        let groups = group_by_code(&samples);
        for threads in [1, groups.len()] {
            let sharded = shard_groups(groups.clone(), threads);
            assert_eq!(sharded.len(), groups.len());
            for (shard, group) in sharded.iter().zip(&groups) {
                assert!(std::ptr::eq(*shard, *group));
            }
        }
    }

    #[test]
    fn shard_groups_splits_big_groups_and_preserves_word_order() {
        let config = EvaluationConfig {
            num_codes: 2,
            words_per_code: 16,
            ..EvaluationConfig::smoke()
        };
        let samples = sample_words(&config, 2, 0.5);
        let groups = group_by_code(&samples);
        let threads = 8;
        let sharded = shard_groups(groups, threads);
        // Enough shards for every thread, each holding one code only.
        assert!(sharded.len() >= threads);
        for shard in &sharded {
            assert!(!shard.is_empty());
            assert!(shard.iter().all(|s| s.code_index == shard[0].code_index));
        }
        // Concatenating the shards reproduces the population in order.
        let flattened: Vec<(usize, usize)> = sharded
            .iter()
            .flat_map(|shard| shard.iter().map(|s| (s.code_index, s.word_index)))
            .collect();
        let expected: Vec<(usize, usize)> = samples
            .iter()
            .map(|s| (s.code_index, s.word_index))
            .collect();
        assert_eq!(flattened, expected);
    }

    #[test]
    fn retention_sampling_tracks_rber() {
        let mut config = EvaluationConfig::smoke();
        config.words_per_code = 64;
        let samples = sample_retention_words(&config, 0.05, 0.75);
        let total_at_risk: usize = samples
            .iter()
            .map(|s| s.faults.at_risk_positions().len())
            .sum();
        let density = total_at_risk as f64 / (samples.len() * 71) as f64;
        assert!(
            (density - 0.05).abs() < 0.02,
            "empirical density {density} too far from 0.05"
        );
        for s in &samples {
            assert!(s.faults.at_risk_positions().len() <= harp_ecc::ErrorSpace::MAX_AT_RISK_BITS);
        }
    }
}
