//! Extension 1: double-error-correcting (DEC) BCH on-die ECC.
//!
//! The paper restricts its analysis to SEC Hamming codes and leaves stronger
//! block codes to future work (§2.5, footnote 9; §6.3.2 discusses the
//! consequences for the secondary ECC). This experiment carries the analysis
//! over to the `(78, 64)` DEC BCH code implemented in [`harp_bch`]:
//!
//! * analytically, how the combinatorial amplification of Table 2 changes —
//!   a DEC code leaves far fewer uncorrectable pre-correction error
//!   patterns, but each one can introduce up to *two* indirect errors;
//! * by exhaustive error-space enumeration over sampled at-risk bit sets,
//!   what correction capability HARP's secondary ECC needs once all
//!   direct-error bits are repaired. The answer is exactly the on-die code's
//!   correction capability (2), confirming that the paper's insight 2
//!   generalizes beyond SEC codes.

use std::collections::BTreeSet;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_bch::analysis::combinatorics as dec;
use harp_bch::BchCode;
use harp_ecc::analysis::{combinatorics as sec, FailureDependence};
use harp_ecc::LinearBlockCode;
use harp_ecc::{ErrorSpace, HammingCode};
use harp_gf2::BitVec;
use harp_memsim::{BurstScratch, FaultModel, MemoryChip};

use crate::config::EvaluationConfig;
use crate::report::{fixed, TextTable};
use crate::runner::parallel_map;
use crate::stats::mean;

/// One row of the analytic amplification comparison (Table 2 extended).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmplificationRow {
    /// Number of bits at risk of pre-correction error.
    pub at_risk_bits: u32,
    /// Uncorrectable pre-correction error patterns under SEC on-die ECC.
    pub sec_uncorrectable: u64,
    /// Uncorrectable pre-correction error patterns under DEC on-die ECC.
    pub dec_uncorrectable: u64,
    /// Worst-case bits at risk of post-correction error under SEC (2^n − 1).
    pub sec_worst_post_correction: u64,
    /// Worst-case bound on post-correction at-risk bits under DEC.
    pub dec_worst_post_correction: u64,
}

/// One Monte-Carlo cell: sampled at-risk sets of a fixed size under each
/// code.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext1Cell {
    /// Number of at-risk pre-correction bits per ECC word.
    pub error_count: usize,
    /// Words sampled.
    pub words: usize,
    /// Mean number of dataword bits at risk of indirect error, SEC (71, 64).
    pub sec_mean_indirect: f64,
    /// Mean number of dataword bits at risk of indirect error, DEC (78, 64).
    pub dec_mean_indirect: f64,
    /// Worst-case simultaneous post-correction errors after repairing all
    /// direct-error bits, SEC (must be ≤ 1).
    pub sec_max_after_direct_repair: usize,
    /// Worst-case simultaneous post-correction errors after repairing all
    /// direct-error bits, DEC (must be ≤ 2).
    pub dec_max_after_direct_repair: usize,
    /// Mean direct-error coverage reached after 128 rounds by a HARP-U-style
    /// active profiler (bypass reads) on the DEC chip.
    pub dec_harpu_coverage: f64,
    /// Mean direct-error coverage reached after 128 rounds by a Naive-style
    /// profiler (post-correction observation only) on the DEC chip. Stronger
    /// on-die ECC makes this *worse*: error combinations the profiler relies
    /// on for visibility are now silently corrected.
    pub dec_naive_coverage: f64,
}

/// The full extension-1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext1BchResult {
    /// Analytic amplification comparison.
    pub amplification: Vec<AmplificationRow>,
    /// Monte-Carlo cells per error count.
    pub cells: Vec<Ext1Cell>,
}

/// Salt keying each `(word, error_count)` cell's base RNG stream.
const BCH_WORD_SALT: u64 = 0xB0;

/// Salt separating the DEC profiling stream from the word's base stream.
const BCH_PROFILE_SALT: u64 = 0xDEC;

/// Runs the extension experiment.
///
/// # Panics
///
/// Panics if the configuration is invalid or the BCH/Hamming codes cannot be
/// constructed for the configured dataword size.
pub fn run(config: &EvaluationConfig) -> Ext1BchResult {
    config.validate();
    let amplification = (1..=8u32)
        .map(|n| AmplificationRow {
            at_risk_bits: n,
            sec_uncorrectable: sec::uncorrectable_patterns(n),
            dec_uncorrectable: dec::uncorrectable_patterns_dec(n),
            sec_worst_post_correction: sec::worst_case_post_correction_at_risk(n),
            dec_worst_post_correction: dec::worst_case_post_correction_at_risk_dec(n),
        })
        .collect();

    let bch = BchCode::dec(config.data_bits).expect("BCH code for the configured dataword");
    let items: Vec<(usize, usize)> = config
        .error_counts
        .iter()
        .flat_map(|&error_count| (0..config.words_total()).map(move |word| (error_count, word)))
        .collect();

    let per_word = parallel_map(&items, config.threads, |&(error_count, word)| {
        let seed = config.seed_for(word, error_count, BCH_WORD_SALT);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let hamming = HammingCode::random(config.data_bits, seed ^ 0x5EC).expect("SEC code");

        let sec_positions = sample_positions(hamming.codeword_len(), error_count, &mut rng);
        let dec_positions = sample_positions(bch.codeword_len(), error_count, &mut rng);

        let sec_space =
            ErrorSpace::enumerate(&hamming, &sec_positions, FailureDependence::TrueCell);
        let dec_space = ErrorSpace::enumerate(&bch, &dec_positions, FailureDependence::TrueCell);

        let sec_after = sec_space.max_simultaneous_errors_outside(sec_space.direct_at_risk());
        let dec_after = dec_space.max_simultaneous_errors_outside(dec_space.direct_at_risk());
        let (harpu, naive) = profile_dec_chip(&bch, &dec_positions, config.rounds, seed);
        WordOutcome {
            error_count,
            sec_indirect: sec_space.indirect_at_risk().len(),
            dec_indirect: dec_space.indirect_at_risk().len(),
            sec_after,
            dec_after,
            harpu_coverage: harpu,
            naive_coverage: naive,
        }
    });

    let cells = config
        .error_counts
        .iter()
        .map(|&error_count| {
            let rows: Vec<_> = per_word
                .iter()
                .filter(|r| r.error_count == error_count)
                .collect();
            Ext1Cell {
                error_count,
                words: rows.len(),
                sec_mean_indirect: mean(
                    &rows
                        .iter()
                        .map(|r| r.sec_indirect as f64)
                        .collect::<Vec<_>>(),
                ),
                dec_mean_indirect: mean(
                    &rows
                        .iter()
                        .map(|r| r.dec_indirect as f64)
                        .collect::<Vec<_>>(),
                ),
                sec_max_after_direct_repair: rows.iter().map(|r| r.sec_after).max().unwrap_or(0),
                dec_max_after_direct_repair: rows.iter().map(|r| r.dec_after).max().unwrap_or(0),
                dec_harpu_coverage: mean(
                    &rows.iter().map(|r| r.harpu_coverage).collect::<Vec<_>>(),
                ),
                dec_naive_coverage: mean(
                    &rows.iter().map(|r| r.naive_coverage).collect::<Vec<_>>(),
                ),
            }
        })
        .collect();

    Ext1BchResult {
        amplification,
        cells,
    }
}

struct WordOutcome {
    error_count: usize,
    sec_indirect: usize,
    dec_indirect: usize,
    sec_after: usize,
    dec_after: usize,
    harpu_coverage: f64,
    naive_coverage: f64,
}

fn sample_positions(codeword_len: usize, count: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let mut positions: Vec<usize> = (0..codeword_len).collect();
    positions.shuffle(rng);
    positions.truncate(count);
    positions.sort_unstable();
    positions
}

/// Runs a HARP-U-style (bypass) and a Naive-style (post-correction only)
/// active-profiling campaign against a DEC-protected chip word, returning the
/// direct-error coverage each achieves after `rounds` rounds with a charged
/// data pattern and per-bit failure probability 0.5.
fn profile_dec_chip(code: &BchCode, at_risk: &[usize], rounds: usize, seed: u64) -> (f64, f64) {
    let direct_truth: BTreeSet<usize> = at_risk
        .iter()
        .copied()
        .filter(|&p| p < code.data_len())
        .collect();
    if direct_truth.is_empty() {
        return (1.0, 1.0);
    }
    let mut chip = MemoryChip::new(code.clone(), 1);
    chip.set_fault_model(0, FaultModel::uniform(at_risk, 0.5));
    chip.write(0, &BitVec::ones(code.data_len()));

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ BCH_PROFILE_SALT);
    let mut harpu = BTreeSet::new();
    let mut naive = BTreeSet::new();
    // One-word bursts through the batched decode path; the scratch persists
    // across rounds so the campaign's steady state allocates nothing.
    let mut scratch = BurstScratch::new();
    for _ in 0..rounds {
        let observation = &chip.read_burst(0..1, &mut rng, &mut scratch)[0];
        harpu.extend(observation.direct_errors());
        naive.extend(observation.post_correction_errors());
    }
    let coverage = |identified: &BTreeSet<usize>| {
        identified.intersection(&direct_truth).count() as f64 / direct_truth.len() as f64
    };
    (coverage(&harpu), coverage(&naive))
}

impl Ext1BchResult {
    /// Renders both tables as plain text.
    pub fn render(&self) -> String {
        let mut amplification = TextTable::new([
            "at-risk bits n",
            "SEC uncorrectable patterns",
            "DEC uncorrectable patterns",
            "SEC worst post-corr at-risk",
            "DEC worst post-corr bound",
        ]);
        for row in &self.amplification {
            amplification.push_row([
                row.at_risk_bits.to_string(),
                row.sec_uncorrectable.to_string(),
                row.dec_uncorrectable.to_string(),
                row.sec_worst_post_correction.to_string(),
                row.dec_worst_post_correction.to_string(),
            ]);
        }

        let mut cells = TextTable::new([
            "pre-corr errors",
            "words",
            "SEC mean indirect at-risk",
            "DEC mean indirect at-risk",
            "SEC max errors after direct repair",
            "DEC max errors after direct repair",
            "DEC HARP-U direct coverage",
            "DEC Naive direct coverage",
        ]);
        for cell in &self.cells {
            cells.push_row([
                cell.error_count.to_string(),
                cell.words.to_string(),
                fixed(cell.sec_mean_indirect, 2),
                fixed(cell.dec_mean_indirect, 2),
                cell.sec_max_after_direct_repair.to_string(),
                cell.dec_max_after_direct_repair.to_string(),
                fixed(cell.dec_harpu_coverage, 3),
                fixed(cell.dec_naive_coverage, 3),
            ]);
        }

        format!(
            "Extension 1: DEC BCH on-die ECC (paper future work, §2.5 fn. 9)\n\n\
             Amplification (Table 2 extended to t = 2):\n{}\n\
             Secondary-ECC requirement after full direct-error coverage:\n{}",
            amplification.render(),
            cells.render()
        )
    }

    /// The largest number of simultaneous post-correction errors any DEC
    /// word can still exhibit once its direct-error bits are repaired.
    pub fn dec_secondary_requirement(&self) -> usize {
        self.cells
            .iter()
            .map(|c| c.dec_max_after_direct_repair)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 3,
            error_counts: vec![2, 4],
            probabilities: vec![0.5],
            ..EvaluationConfig::quick()
        }
    }

    #[test]
    fn secondary_requirement_is_bounded_by_correction_capabilities() {
        let result = run(&smoke_config());
        for cell in &result.cells {
            assert!(cell.sec_max_after_direct_repair <= 1, "SEC bound violated");
            assert!(cell.dec_max_after_direct_repair <= 2, "DEC bound violated");
        }
        assert!(result.dec_secondary_requirement() <= 2);
    }

    #[test]
    fn dec_has_fewer_uncorrectable_patterns() {
        let result = run(&smoke_config());
        for row in &result.amplification {
            assert!(row.dec_uncorrectable <= row.sec_uncorrectable);
        }
        assert_eq!(result.amplification.len(), 8);
    }

    #[test]
    fn render_mentions_both_codes() {
        let rendered = run(&smoke_config()).render();
        assert!(rendered.contains("DEC"));
        assert!(rendered.contains("SEC"));
        assert!(rendered.contains("Extension 1"));
    }

    #[test]
    fn bypass_profiling_dominates_post_correction_observation_under_dec_ecc() {
        // The paper's challenges 1 and 2 get *worse* with stronger on-die
        // ECC: more error combinations are silently corrected, so a profiler
        // limited to post-correction observation sees less, while the bypass
        // path is unaffected.
        let result = run(&smoke_config());
        for cell in &result.cells {
            assert!(cell.dec_harpu_coverage >= cell.dec_naive_coverage - 1e-12);
            assert!(
                cell.dec_harpu_coverage > 0.9,
                "bypass coverage {}",
                cell.dec_harpu_coverage
            );
        }
    }
}
