//! Fig. 8: bits at risk of indirect error that each profiler has *missed*
//! (i.e. that reactive profiling still has to identify), per ECC word, as a
//! function of profiling rounds.
//!
//! The expected shape: HARP-U misses essentially all indirect bits (it never
//! observes the correction process), HARP-A immediately predicts the subset
//! implied by the identified direct bits, Naive and BEEP grind down the count
//! slowly by exploring uncorrectable patterns, and HARP-A+BEEP combines the
//! head start with active exploration.

use serde::{Deserialize, Serialize};

use harp_profiler::ProfilerKind;

use crate::config::EvaluationConfig;
use crate::experiments::sweep::{run_coverage_sweep, CoverageSweep};
use crate::report::{fixed, percent, TextTable};
use crate::stats::{mean, round_checkpoints};

/// Profilers compared in Fig. 8.
pub const PROFILERS: [ProfilerKind; 5] = [
    ProfilerKind::HarpA,
    ProfilerKind::HarpU,
    ProfilerKind::Naive,
    ProfilerKind::Beep,
    ProfilerKind::HarpABeep,
];

/// Missed-indirect-error counts at each checkpoint for one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Series {
    /// Profiler evaluated.
    pub profiler: ProfilerKind,
    /// Number of pre-correction errors per ECC word.
    pub error_count: usize,
    /// Per-bit pre-correction error probability.
    pub probability: f64,
    /// `(round, mean missed indirect at-risk bits per ECC word)`.
    pub points: Vec<(usize, f64)>,
}

/// The Fig. 8 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8Result {
    /// All series.
    pub series: Vec<Fig8Series>,
}

/// Runs the experiment (including the underlying coverage sweep over all
/// five profilers).
pub fn run(config: &EvaluationConfig) -> Fig8Result {
    from_sweep(&run_coverage_sweep(config, &PROFILERS))
}

/// Aggregates an existing coverage sweep into the Fig. 8 series.
pub fn from_sweep(sweep: &CoverageSweep) -> Fig8Result {
    let checkpoints = round_checkpoints(sweep.rounds);
    let mut series = Vec::new();
    for &profiler in &sweep.profilers {
        for &error_count in &sweep.error_counts {
            for &probability in &sweep.probabilities {
                let evaluations: Vec<_> = sweep.cell(profiler, error_count, probability).collect();
                let points = checkpoints
                    .iter()
                    .map(|&round| {
                        let missed: Vec<f64> = evaluations
                            .iter()
                            .map(|e| e.series.missed_indirect[round - 1] as f64)
                            .collect();
                        (round, mean(&missed))
                    })
                    .collect();
                series.push(Fig8Series {
                    profiler,
                    error_count,
                    probability,
                    points,
                });
            }
        }
    }
    Fig8Result { series }
}

impl Fig8Result {
    /// Looks up one series.
    pub fn series_for(
        &self,
        profiler: ProfilerKind,
        error_count: usize,
        probability: f64,
    ) -> Option<&Fig8Series> {
        self.series.iter().find(|s| {
            s.profiler == profiler
                && s.error_count == error_count
                && (s.probability - probability).abs() < 1e-9
        })
    }

    /// Renders one row per series with the mean missed count per checkpoint.
    pub fn render(&self) -> String {
        let checkpoints: Vec<usize> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(r, _)| *r).collect())
            .unwrap_or_default();
        let mut header = vec![
            "profiler".to_owned(),
            "pre-corr errors".to_owned(),
            "per-bit p".to_owned(),
        ];
        header.extend(checkpoints.iter().map(|r| format!("r{r}")));
        let mut table = TextTable::new(header);
        for s in &self.series {
            let mut row = vec![
                s.profiler.to_string(),
                s.error_count.to_string(),
                percent(s.probability),
            ];
            row.extend(s.points.iter().map(|(_, m)| fixed(*m, 2)));
            table.push_row(row);
        }
        format!(
            "Fig. 8: bits at risk of indirect error missed per ECC word vs. profiling rounds\n{}",
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 3,
            rounds: 64,
            error_counts: vec![3],
            probabilities: vec![1.0],
            ..EvaluationConfig::quick()
        }
    }

    #[test]
    fn harp_a_misses_fewer_indirect_bits_than_harp_u() {
        let result = run(&tiny_config());
        let harp_a = result.series_for(ProfilerKind::HarpA, 3, 1.0).unwrap();
        let harp_u = result.series_for(ProfilerKind::HarpU, 3, 1.0).unwrap();
        let last_a = harp_a.points.last().unwrap().1;
        let last_u = harp_u.points.last().unwrap().1;
        assert!(
            last_a <= last_u,
            "HARP-A ({last_a}) should miss no more than HARP-U ({last_u})"
        );
    }

    #[test]
    fn missed_counts_are_non_negative_and_non_increasing() {
        let result = run(&tiny_config());
        for s in &result.series {
            for window in s.points.windows(2) {
                assert!(window[1].1 <= window[0].1 + 1e-9);
            }
            for (_, m) in &s.points {
                assert!(*m >= 0.0);
            }
        }
    }

    #[test]
    fn harp_a_beep_does_at_least_as_well_as_harp_a() {
        let result = run(&tiny_config());
        let harp_a = result.series_for(ProfilerKind::HarpA, 3, 1.0).unwrap();
        let combined = result.series_for(ProfilerKind::HarpABeep, 3, 1.0).unwrap();
        assert!(combined.points.last().unwrap().1 <= harp_a.points.last().unwrap().1 + 1e-9);
    }

    #[test]
    fn render_lists_all_five_profilers() {
        let rendered = run(&tiny_config()).render();
        for p in PROFILERS {
            assert!(rendered.contains(p.name()));
        }
    }
}
