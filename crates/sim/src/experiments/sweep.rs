//! The shared coverage sweep behind Figs. 6–9.
//!
//! The paper's active- and reactive-phase evaluations all derive from the
//! same Monte-Carlo experiment: for every combination of (number of
//! pre-correction errors per ECC word, per-bit error probability), simulate a
//! population of ECC words and run each profiler for 128 rounds, scoring each
//! round against the exact ground truth. [`run_coverage_sweep`] performs that
//! experiment once; the per-figure modules aggregate different views of it.
//!
//! Execution is **cell-batched**: the population of each sweep cell is
//! grouped by code index ([`crate::sample::group_by_code`]), every group runs
//! as one [`CampaignBatch`] whose words are scrubbed with a single multi-word
//! burst per round, and [`parallel_map`] shards across the groups — batching
//! inside a shard, threading across shards. Batched snapshots are
//! bit-identical to the per-word [`harp_profiler::ProfilingCampaign`]
//! reference path (enforced by `tests/campaign_equivalence.rs`), so this is
//! purely an execution-plan change.

use serde::{Deserialize, Serialize};

use harp_ecc::{HammingCode, LinearBlockCode};
use harp_profiler::{BatchWord, CampaignBatch, CoverageSeries, ProfilerKind};

use crate::config::EvaluationConfig;
use crate::runner::parallel_map;
use crate::sample::{group_by_code, sample_words_with, shard_groups, WordSample};

/// The coverage series of one (word, profiler) pair within the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WordEvaluation {
    /// Number of pre-correction errors injected into this word.
    pub error_count: usize,
    /// Per-bit pre-correction error probability.
    pub probability: f64,
    /// Which profiler produced this series.
    pub profiler: ProfilerKind,
    /// Per-round coverage metrics scored against the word's ground truth.
    pub series: CoverageSeries,
}

/// The full sweep: one [`WordEvaluation`] per (configuration, word,
/// profiler).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoverageSweep {
    /// Number of profiling rounds each campaign ran.
    pub rounds: usize,
    /// Error counts swept.
    pub error_counts: Vec<usize>,
    /// Probabilities swept.
    pub probabilities: Vec<f64>,
    /// Profilers evaluated.
    pub profilers: Vec<ProfilerKind>,
    /// All per-word results.
    pub evaluations: Vec<WordEvaluation>,
}

impl CoverageSweep {
    /// Iterates over the evaluations matching a (profiler, error count,
    /// probability) cell of the sweep.
    pub fn cell(
        &self,
        profiler: ProfilerKind,
        error_count: usize,
        probability: f64,
    ) -> impl Iterator<Item = &WordEvaluation> {
        self.evaluations.iter().filter(move |e| {
            e.profiler == profiler
                && e.error_count == error_count
                && (e.probability - probability).abs() < 1e-9
        })
    }

    /// Number of simulated words per sweep cell.
    pub fn words_per_cell(&self) -> usize {
        let Some(first) = self.evaluations.first() else {
            return 0;
        };
        self.cell(first.profiler, first.error_count, first.probability)
            .count()
    }
}

/// Runs every requested profiler against one code group (all words of a
/// sweep cell sharing a code) as cell-batched campaigns — one
/// [`CampaignBatch`] per profiler, one burst per round — and scores each
/// word against its ground truth.
///
/// Returns the coverage series in word-major order
/// (`result[word][profiler]`). The ground truth is enumerated once per word
/// and shared across profilers, and each profiler's full per-round snapshots
/// are reduced to compact series as soon as its batch completes, so only the
/// series stay alive across profilers. This is the single cell-batched
/// evaluation pipeline behind the coverage sweep *and* the fig10 case study.
pub(crate) fn code_group_series<C: LinearBlockCode + Clone + Send + 'static>(
    group: &[WordSample<C>],
    profilers: &[ProfilerKind],
    pattern: harp_memsim::pattern::DataPattern,
    rounds: usize,
) -> Vec<Vec<CoverageSeries>> {
    let batch = CampaignBatch::new(
        group[0].code.clone(),
        group
            .iter()
            .map(|sample| BatchWord::new(sample.faults.clone(), pattern, sample.campaign_seed))
            .collect(),
    );
    let spaces: Vec<harp_ecc::ErrorSpace> = (0..group.len())
        .map(|word| batch.error_space(word))
        .collect();
    let mut per_word: Vec<Vec<CoverageSeries>> = (0..group.len())
        .map(|_| Vec::with_capacity(profilers.len()))
        .collect();
    for &profiler in profilers {
        let results = batch.run(profiler, rounds);
        for ((result, space), word_series) in results.iter().zip(&spaces).zip(per_word.iter_mut()) {
            word_series.push(CoverageSeries::from_campaign(result, space));
        }
    }
    per_word
}

/// Evaluates one code group for the sweep, emitting evaluations in
/// word-major order (word, then profiler) — the same order the historical
/// per-word loop produced.
fn evaluate_code_group<C: LinearBlockCode + Clone + Send + 'static>(
    group: &[WordSample<C>],
    profilers: &[ProfilerKind],
    pattern: harp_memsim::pattern::DataPattern,
    rounds: usize,
    error_count: usize,
    probability: f64,
) -> Vec<WordEvaluation> {
    let per_word = code_group_series(group, profilers, pattern, rounds);
    let mut evaluations = Vec::with_capacity(group.len() * profilers.len());
    for word_series in per_word {
        for (&profiler, series) in profilers.iter().zip(word_series) {
            evaluations.push(WordEvaluation {
                error_count,
                probability,
                profiler,
                series,
            });
        }
    }
    evaluations
}

/// Runs the full coverage sweep for the given profilers over any code
/// family: `make_code` builds the per-code-index on-die ECC code from a
/// deterministic seed. This is the single generic HARP campaign path behind
/// Figs. 6–9 *and* the cross-code comparison experiment.
pub fn run_coverage_sweep_with<C, F>(
    config: &EvaluationConfig,
    profilers: &[ProfilerKind],
    make_code: F,
) -> CoverageSweep
where
    C: LinearBlockCode + Clone + Send + Sync + 'static,
    F: Fn(u64) -> C,
{
    config.validate();
    let mut evaluations = Vec::new();
    for &error_count in &config.error_counts {
        for &probability in &config.probabilities {
            let samples = sample_words_with(config, error_count, probability, &make_code);
            let groups = shard_groups(
                group_by_code(&samples),
                crate::runner::effective_threads(config.threads),
            );
            let per_group = parallel_map(&groups, config.threads, |group| {
                evaluate_code_group(
                    group,
                    profilers,
                    config.pattern,
                    config.rounds,
                    error_count,
                    probability,
                )
            });
            evaluations.extend(per_group.into_iter().flatten());
        }
    }
    CoverageSweep {
        rounds: config.rounds,
        error_counts: config.error_counts.clone(),
        probabilities: config.probabilities.clone(),
        profilers: profilers.to_vec(),
        evaluations,
    }
}

/// Runs the full coverage sweep with randomly generated SEC Hamming codes
/// (the paper's evaluated on-die ECC).
pub fn run_coverage_sweep(config: &EvaluationConfig, profilers: &[ProfilerKind]) -> CoverageSweep {
    run_coverage_sweep_with(config, profilers, |seed| {
        HammingCode::random(config.data_bits, seed)
            .expect("valid configuration always yields a valid code")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 2,
            rounds: 32,
            error_counts: vec![2, 4],
            probabilities: vec![0.5, 1.0],
            ..EvaluationConfig::quick()
        }
    }

    #[test]
    fn sweep_has_one_evaluation_per_cell_word_and_profiler() {
        let config = tiny_config();
        let profilers = [ProfilerKind::HarpU, ProfilerKind::Naive];
        let sweep = run_coverage_sweep(&config, &profilers);
        let expected =
            config.error_counts.len() * config.probabilities.len() * config.words_total() * 2;
        assert_eq!(sweep.evaluations.len(), expected);
        assert_eq!(sweep.words_per_cell(), config.words_total());
        assert_eq!(sweep.rounds, 32);
        for e in &sweep.evaluations {
            assert_eq!(e.series.rounds(), 32);
        }
    }

    #[test]
    fn harp_dominates_naive_in_every_cell() {
        let config = tiny_config();
        let sweep = run_coverage_sweep(&config, &[ProfilerKind::HarpU, ProfilerKind::Naive]);
        for &count in &config.error_counts {
            for &prob in &config.probabilities {
                let harp_cov: f64 = sweep
                    .cell(ProfilerKind::HarpU, count, prob)
                    .map(|e| e.series.final_direct_coverage())
                    .sum();
                let naive_cov: f64 = sweep
                    .cell(ProfilerKind::Naive, count, prob)
                    .map(|e| e.series.final_direct_coverage())
                    .sum();
                assert!(
                    harp_cov >= naive_cov,
                    "HARP should never trail Naive (count {count}, prob {prob})"
                );
            }
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let config = tiny_config();
        let a = run_coverage_sweep(&config, &[ProfilerKind::Beep]);
        let b = run_coverage_sweep(&config, &[ProfilerKind::Beep]);
        assert_eq!(a, b);
    }
}
