//! Table 2: how `n` bits at risk of pre-correction error amplify into
//! exponentially many bits at risk of post-correction error.
//!
//! The closed-form counts come from
//! [`harp_ecc::analysis::combinatorics`]; this module also cross-checks the
//! worst-case formula against concrete randomly-generated codes by exact
//! enumeration.

use serde::{Deserialize, Serialize};

use harp_ecc::analysis::combinatorics;

use crate::report::TextTable;

/// One column of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Number of bits at risk of pre-correction error (`n`).
    pub at_risk_pre_correction: u32,
    /// Unique pre-correction error patterns (`2^n − 1`).
    pub unique_patterns: u64,
    /// Uncorrectable pre-correction error patterns (`2^n − n − 1`).
    pub uncorrectable_patterns: u64,
    /// Worst-case bits at risk of post-correction error (`2^n − 1`).
    pub post_correction_at_risk: u64,
}

/// The reproduced Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table2Result {
    /// One row per evaluated `n`.
    pub rows: Vec<Table2Row>,
}

/// The `n` values shown in the paper's Table 2.
pub const PAPER_COLUMNS: [u32; 5] = [1, 2, 3, 4, 8];

/// Computes Table 2 for the paper's `n` values.
pub fn run() -> Table2Result {
    run_for(&PAPER_COLUMNS)
}

/// Computes Table 2 for custom `n` values.
pub fn run_for(ns: &[u32]) -> Table2Result {
    Table2Result {
        rows: ns
            .iter()
            .map(|&n| Table2Row {
                at_risk_pre_correction: n,
                unique_patterns: combinatorics::unique_error_patterns(n),
                uncorrectable_patterns: combinatorics::uncorrectable_patterns(n),
                post_correction_at_risk: combinatorics::worst_case_post_correction_at_risk(n),
            })
            .collect(),
    }
}

impl Table2Result {
    /// Renders the table in the paper's orientation (metrics as rows, `n` as
    /// columns).
    pub fn render(&self) -> String {
        let mut header = vec!["metric".to_owned()];
        header.extend(
            self.rows
                .iter()
                .map(|r| r.at_risk_pre_correction.to_string()),
        );
        let mut table = TextTable::new(header);
        type Metric = fn(&Table2Row) -> u64;
        let metrics: [(&str, Metric); 3] = [
            ("unique pre-correction error patterns (2^n - 1)", |r| {
                r.unique_patterns
            }),
            ("uncorrectable pre-correction patterns (2^n - n - 1)", |r| {
                r.uncorrectable_patterns
            }),
            ("bits at risk of post-correction error (2^n - 1)", |r| {
                r.post_correction_at_risk
            }),
        ];
        for (name, getter) in metrics {
            let mut row = vec![name.to_owned()];
            row.extend(self.rows.iter().map(|r| getter(r).to_string()));
            table.push_row(row);
        }
        format!(
            "Table 2: amplification of at-risk bits by on-die ECC (n = bits at risk of pre-correction error)\n{}",
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_columns_match_expected_values() {
        let result = run();
        let unique: Vec<u64> = result.rows.iter().map(|r| r.unique_patterns).collect();
        let post: Vec<u64> = result
            .rows
            .iter()
            .map(|r| r.post_correction_at_risk)
            .collect();
        assert_eq!(unique, vec![1, 3, 7, 15, 255]);
        assert_eq!(post, vec![1, 3, 7, 15, 255]);
        assert_eq!(result.rows[4].uncorrectable_patterns, 247);
    }

    #[test]
    fn enumeration_respects_worst_case_bound() {
        // For a concrete code, the exact post-correction at-risk count can
        // never exceed the Table 2 worst case.
        use harp_ecc::analysis::FailureDependence;
        use harp_ecc::{ErrorSpace, HammingCode};
        let code = HammingCode::random(64, 91).unwrap();
        for n in [2usize, 3, 4] {
            let at_risk: Vec<usize> = (0..n).map(|i| i * 13 + 1).collect();
            let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
            let bound = combinatorics::worst_case_post_correction_at_risk(n as u32);
            assert!(space.post_correction_at_risk().len() as u64 <= bound);
        }
    }

    #[test]
    fn render_includes_every_metric() {
        let rendered = run().render();
        assert!(rendered.contains("unique pre-correction"));
        assert!(rendered.contains("uncorrectable"));
        assert!(rendered.contains("post-correction"));
        assert!(rendered.contains("255"));
    }

    #[test]
    fn custom_columns_work() {
        let result = run_for(&[5, 6]);
        assert_eq!(result.rows.len(), 2);
        assert_eq!(result.rows[0].unique_patterns, 31);
        assert_eq!(result.rows[1].uncorrectable_patterns, 57);
    }
}
