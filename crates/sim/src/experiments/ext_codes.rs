//! Extension 6: one generic HARP campaign path, three on-die ECC codes.
//!
//! This experiment is the end-to-end proof of the code-abstraction layer: the
//! *same* generic coverage sweep behind Figs. 6–9
//! ([`sweep::run_coverage_sweep_with`] → [`harp_profiler::ProfilingCampaign`]
//! → generic [`harp_memsim::MemoryChip`] → [`harp_ecc::ErrorSpace`] scoring)
//! runs unchanged against three [`LinearBlockCode`] implementations:
//!
//! * the paper's SEC Hamming code (`t = 1`);
//! * the SEC-DED extended Hamming code (`t = 1`, detects double errors —
//!   eliminating pair-induced miscorrections, the dominant indirect-error
//!   source);
//! * the DEC BCH code (`t = 2`, the paper's future-work scenario).
//!
//! The comparison quantifies how the profiling challenges shift with the
//! code: bypass-based HARP-U is unaffected (direct errors are visible raw),
//! while Naive profiling *degrades* as the code gets stronger (more error
//! combinations are absorbed before it can observe them), and the
//! ground-truth indirect-error space shrinks from Hamming → SEC-DED → BCH.

use serde::{Deserialize, Serialize};

use harp_bch::BchCode;
use harp_ecc::{ExtendedHammingCode, HammingCode, LinearBlockCode};
use harp_profiler::ProfilerKind;

use crate::config::EvaluationConfig;
use crate::experiments::sweep::{run_coverage_sweep_with, CoverageSweep};
use crate::report::{fixed, TextTable};
use crate::stats::mean;

/// The profilers compared across code families.
pub const PROFILERS: [ProfilerKind; 3] = [
    ProfilerKind::HarpU,
    ProfilerKind::HarpA,
    ProfilerKind::Naive,
];

/// Aggregated campaign metrics for one code family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodeFamilyResult {
    /// Human-readable code description (e.g. `"SEC Hamming (71, 64)"`).
    pub family: String,
    /// Codeword length `n`.
    pub codeword_bits: usize,
    /// The code's correction capability `t`.
    pub correction_capability: usize,
    /// Mean ground-truth count of indirect-error at-risk bits per word.
    pub mean_indirect_truth: f64,
    /// Mean final direct-error coverage of HARP-U (bypass reads).
    pub harpu_direct_coverage: f64,
    /// Mean final direct-error coverage of Naive (post-correction reads).
    pub naive_direct_coverage: f64,
    /// Mean number of indirect-error bits still missed by HARP-A after the
    /// active phase (what reactive profiling must pick up).
    pub harpa_missed_indirect: f64,
    /// Worst-case simultaneous post-correction errors outside HARP-A's known
    /// set after the active phase, across all simulated words.
    pub harpa_max_simultaneous: usize,
}

/// The full cross-code comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtCodesResult {
    /// Profiling rounds per campaign.
    pub rounds: usize,
    /// One aggregate per code family (Hamming, SEC-DED, BCH).
    pub families: Vec<CodeFamilyResult>,
}

/// Runs the generic campaign path for one code family and aggregates it.
///
/// This function is deliberately generic over [`LinearBlockCode`]: it is the
/// single implementation all three families go through.
pub fn run_family<C, F>(config: &EvaluationConfig, make_code: F) -> CodeFamilyResult
where
    C: LinearBlockCode + Clone + Send + Sync + 'static,
    F: Fn(u64) -> C,
{
    let reference = make_code(config.seed_for(0, 0, 0xC0DE));
    let sweep = run_coverage_sweep_with(config, &PROFILERS, make_code);
    summarize(&sweep, &reference)
}

fn summarize<C: LinearBlockCode + ?Sized>(
    sweep: &CoverageSweep,
    reference: &C,
) -> CodeFamilyResult {
    let final_coverages = |kind: ProfilerKind| -> Vec<f64> {
        sweep
            .evaluations
            .iter()
            .filter(|e| e.profiler == kind)
            .map(|e| e.series.final_direct_coverage())
            .collect()
    };
    let harpa: Vec<_> = sweep
        .evaluations
        .iter()
        .filter(|e| e.profiler == ProfilerKind::HarpA)
        .collect();
    let missed: Vec<f64> = harpa
        .iter()
        .map(|e| *e.series.missed_indirect.last().unwrap_or(&0) as f64)
        .collect();
    let indirect_truth: Vec<f64> = harpa
        .iter()
        .map(|e| e.series.indirect_truth_len as f64)
        .collect();
    let max_simultaneous = harpa
        .iter()
        .filter_map(|e| e.series.max_simultaneous.last().copied())
        .max()
        .unwrap_or(0);
    CodeFamilyResult {
        family: reference.description(),
        codeword_bits: reference.codeword_len(),
        correction_capability: reference.correction_capability(),
        mean_indirect_truth: mean(&indirect_truth),
        harpu_direct_coverage: mean(&final_coverages(ProfilerKind::HarpU)),
        naive_direct_coverage: mean(&final_coverages(ProfilerKind::Naive)),
        harpa_missed_indirect: mean(&missed),
        harpa_max_simultaneous: max_simultaneous,
    }
}

/// Runs the cross-code comparison: Hamming, SEC-DED, and BCH words through
/// the identical generic campaign path.
///
/// # Panics
///
/// Panics if the configuration is invalid or a code cannot be constructed
/// for the configured dataword length.
pub fn run(config: &EvaluationConfig) -> ExtCodesResult {
    config.validate();
    let data_bits = config.data_bits;
    let hamming = run_family(config, |seed| {
        HammingCode::random(data_bits, seed).expect("valid SEC Hamming code")
    });
    let secded = run_family(config, |seed| {
        ExtendedHammingCode::random(data_bits, seed).expect("valid SEC-DED code")
    });
    // The BCH construction is deterministic (no free column arrangement), so
    // every code index shares one code; the word populations still differ.
    let bch_code = BchCode::dec(data_bits).expect("valid DEC BCH code");
    let bch = run_family(config, |_seed| bch_code.clone());
    ExtCodesResult {
        rounds: config.rounds,
        families: vec![hamming, secded, bch],
    }
}

impl ExtCodesResult {
    /// Renders the comparison as plain text.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "on-die ECC",
            "n",
            "t",
            "mean indirect at-risk (truth)",
            "HARP-U direct coverage",
            "Naive direct coverage",
            "HARP-A missed indirect",
            "max errors outside known set",
        ]);
        for family in &self.families {
            table.push_row([
                family.family.clone(),
                family.codeword_bits.to_string(),
                family.correction_capability.to_string(),
                fixed(family.mean_indirect_truth, 2),
                fixed(family.harpu_direct_coverage, 3),
                fixed(family.naive_direct_coverage, 3),
                fixed(family.harpa_missed_indirect, 2),
                family.harpa_max_simultaneous.to_string(),
            ]);
        }
        format!(
            "Extension 6: the generic HARP campaign across code families \
             ({} rounds per word)\n{}",
            self.rounds,
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 3,
            rounds: 64,
            error_counts: vec![2, 4],
            probabilities: vec![0.5],
            ..EvaluationConfig::quick()
        }
    }

    #[test]
    fn all_three_families_run_through_the_same_campaign_path() {
        let result = run(&smoke_config());
        assert_eq!(result.families.len(), 3);
        assert!(result.families[0].family.contains("SEC Hamming"));
        assert!(result.families[1].family.contains("SEC-DED"));
        assert!(result.families[2].family.contains("DEC BCH"));
        assert_eq!(result.families[0].correction_capability, 1);
        assert_eq!(result.families[1].correction_capability, 1);
        assert_eq!(result.families[2].correction_capability, 2);
    }

    #[test]
    fn bypass_profiling_is_code_agnostic_and_dominates_naive() {
        // HARP-U reads raw data bits, so its coverage is high for every code
        // family; Naive can only do as well or worse.
        let result = run(&smoke_config());
        for family in &result.families {
            assert!(
                family.harpu_direct_coverage > 0.9,
                "{}: HARP-U coverage {}",
                family.family,
                family.harpu_direct_coverage
            );
            assert!(
                family.harpu_direct_coverage >= family.naive_direct_coverage - 1e-12,
                "{}: Naive should not beat HARP-U",
                family.family
            );
        }
    }

    #[test]
    fn stronger_codes_shrink_the_indirect_error_space() {
        let result = run(&smoke_config());
        let hamming = &result.families[0];
        let secded = &result.families[1];
        let bch = &result.families[2];
        // SEC-DED detects pairs instead of miscorrecting; BCH corrects them.
        // Both strictly reduce the ground-truth indirect space relative to
        // plain SEC Hamming on average.
        assert!(secded.mean_indirect_truth <= hamming.mean_indirect_truth + 1e-12);
        assert!(bch.mean_indirect_truth <= hamming.mean_indirect_truth + 1e-12);
    }

    #[test]
    fn residual_simultaneous_errors_stay_within_each_capability_bound() {
        // After HARP-A's active phase every direct bit is identified (the
        // campaign uses p = 0.5 over 64 rounds), so at most t simultaneous
        // errors can remain outside the known set (paper insight 2,
        // generalized).
        let result = run(&smoke_config());
        for family in &result.families {
            assert!(
                family.harpa_max_simultaneous <= family.correction_capability,
                "{}: {} residual errors exceeds t = {}",
                family.family,
                family.harpa_max_simultaneous,
                family.correction_capability
            );
        }
    }

    #[test]
    fn render_lists_every_family() {
        let rendered = run(&smoke_config()).render();
        assert!(rendered.contains("Extension 6"));
        assert!(rendered.contains("SEC Hamming"));
        assert!(rendered.contains("SEC-DED"));
        assert!(rendered.contains("DEC BCH"));
    }
}
