//! Extension 2: reverse-engineering the on-die ECC (BEER) as the input to
//! BEEP and HARP-A.
//!
//! The paper's H-aware profilers (BEEP and HARP-A) assume the on-die ECC
//! parity-check matrix is available, "potentially provided through
//! manufacturer support, datasheet information, or previously-proposed
//! reverse engineering techniques" (§1, footnote 4). This experiment closes
//! that loop: it runs the BEER-style pair-charged test campaign from
//! [`harp_beer`] against black-box chips with secret codes and measures
//!
//! * whether the recovered miscorrection profile matches the ground truth
//!   computed from the secret parity-check matrix;
//! * how much of HARP-A's indirect-error prediction the recovered profile
//!   already provides, relative to full knowledge of `H`;
//! * for small codes, whether a concrete *equivalent* code can be
//!   reconstructed from the profile;
//! * cross-family: the same family-generic pipeline (extended
//!   weight-2/weight-3 campaign → [`VisibleErrorProfile`] →
//!   [`reconstruct_code`]) run against both SEC Hamming *and* SEC-DED
//!   secrets, certifying each recovery with a weight-3
//!   [`data_visible_equivalent`] check. SEC-DED detects every data-bit pair,
//!   so its reconstruction works entirely from the weight-3 observations —
//!   the scenario the pairwise-only profile cannot handle at all.

use serde::{Deserialize, Serialize};

use harp_beer::{
    data_visible_equivalent, reconstruct_code, reconstruct_equivalent_code, BeerCampaign,
    CodeFamily, MiscorrectionProfile, VisibleErrorProfile,
};
use harp_ecc::analysis::{predict_indirect_from_direct, FailureDependence};
use harp_ecc::HammingCode;
use harp_ecc::LinearBlockCode;

use crate::config::EvaluationConfig;
use crate::report::{fixed, TextTable};
use crate::runner::parallel_map;

/// The per-code outcome of the reverse-engineering campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext2CodeOutcome {
    /// Seed of the secret code.
    pub code_seed: u64,
    /// Dataword length of the secret code.
    pub data_bits: usize,
    /// Number of pair-charged test patterns programmed.
    pub patterns_tested: usize,
    /// Fraction of pairs that provoke a data-visible miscorrection.
    pub miscorrecting_fraction: f64,
    /// Whether the recovered profile matches the ground truth from `H`.
    pub profile_matches: bool,
    /// Fraction of the full (H-aware) HARP-A indirect-error prediction that
    /// the pairwise profile alone recovers, averaged over sampled
    /// direct-error sets.
    pub prediction_coverage: f64,
    /// Whether an equivalent code was reconstructed from the profile
    /// (attempted only for datawords of at most 16 bits).
    pub reconstructed_equivalent: Option<bool>,
}

/// The per-(family, code) outcome of the cross-family reconstruction
/// pipeline: extended pattern campaign → [`VisibleErrorProfile`] →
/// family-dispatched [`reconstruct_code`] → weight-3 data-visible
/// equivalence against the secret.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext2FamilyOutcome {
    /// The secret (and reconstruction target) code family.
    pub family: CodeFamily,
    /// Seed of the secret code.
    pub code_seed: u64,
    /// Dataword length of the secret code.
    pub data_bits: usize,
    /// Number of charged patterns programmed (pairs plus triples).
    pub patterns_tested: usize,
    /// Number of observations carrying a data-visible miscorrection (the
    /// ones that become linear relation rows). SEC-DED pairs contribute
    /// zero by construction — only its triples are informative.
    pub miscorrecting_patterns: usize,
    /// Whether the recovered profile matches the ground truth from `H`.
    pub profile_matches: bool,
    /// Whether reconstruction converged to a code of the requested family.
    pub reconstructed: bool,
    /// Whether the recovered code is weight-3 data-visible-equivalent to
    /// the secret (the strongest certificate observable from outside the
    /// chip).
    pub visible_equivalent_w3: bool,
}

/// The full extension-2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext2BeerResult {
    /// Outcomes for the (71, 64)-class secret codes.
    pub large_codes: Vec<Ext2CodeOutcome>,
    /// Outcomes for the small (16-bit dataword) codes used to exercise full
    /// code reconstruction.
    pub small_codes: Vec<Ext2CodeOutcome>,
    /// Cross-family reconstruction outcomes (SEC Hamming and SEC-DED
    /// secrets, each reverse-engineered through the same family-generic
    /// pipeline).
    pub cross_family: Vec<Ext2FamilyOutcome>,
}

fn evaluate_code(data_bits: usize, code_seed: u64, reconstruct: bool) -> Ext2CodeOutcome {
    let secret = HammingCode::random(data_bits, code_seed).expect("secret code");
    let campaign = BeerCampaign::new(data_bits);
    let profile = campaign.extract_profile(&secret);
    let truth = MiscorrectionProfile::from_code(&secret);

    // How much of the full HARP-A prediction the pairwise profile recovers,
    // over a handful of representative direct-error sets.
    let mut ratios = Vec::new();
    for offset in 0..4usize {
        let direct: Vec<usize> = (0..4).map(|i| (offset * 7 + i * 3) % data_bits).collect();
        let full = predict_indirect_from_direct(&secret, &direct, FailureDependence::TrueCell);
        if full.is_empty() {
            continue;
        }
        let pairwise = profile.predict_indirect_from_direct(&direct);
        ratios.push(pairwise.intersection(&full).count() as f64 / full.len() as f64);
    }
    let prediction_coverage = if ratios.is_empty() {
        1.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };

    let reconstructed_equivalent = if reconstruct {
        Some(
            reconstruct_equivalent_code(&profile, secret.parity_len(), code_seed, 200_000)
                .map(|code| profile.is_consistent_with(&code))
                .unwrap_or(false),
        )
    } else {
        None
    };

    Ext2CodeOutcome {
        code_seed,
        data_bits,
        patterns_tested: campaign.pattern_count(),
        miscorrecting_fraction: profile.miscorrecting_pair_count() as f64
            / campaign.pattern_count() as f64,
        profile_matches: profile == truth,
        prediction_coverage,
        reconstructed_equivalent,
    }
}

fn evaluate_family(family: CodeFamily, data_bits: usize, code_seed: u64) -> Ext2FamilyOutcome {
    let secret = family.random(data_bits, code_seed).expect("secret code");
    let campaign = BeerCampaign::new(data_bits);
    let profile = campaign.extract_visible_profile(&secret);
    let profile_matches = profile == VisibleErrorProfile::from_code(&secret);
    let miscorrecting_patterns =
        profile.miscorrecting_pair_count() + profile.miscorrecting_triple_count();
    let recovered = reconstruct_code(
        &profile,
        family,
        family.min_parity_bits(data_bits),
        code_seed,
        200_000,
    );
    let visible_equivalent_w3 = recovered
        .as_ref()
        .map(|code| data_visible_equivalent(&secret, code, 3))
        .unwrap_or(false);
    Ext2FamilyOutcome {
        family,
        code_seed,
        data_bits,
        patterns_tested: campaign.visible_pattern_count(),
        miscorrecting_patterns,
        profile_matches,
        reconstructed: recovered.is_ok(),
        visible_equivalent_w3,
    }
}

/// Runs the extension experiment.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run(config: &EvaluationConfig) -> Ext2BeerResult {
    config.validate();
    let large_seeds: Vec<u64> = (0..config.num_codes as u64)
        .map(|i| config.base_seed ^ (0xBEE0 + i))
        .collect();
    let small_seeds: Vec<u64> = (0..config.num_codes.min(2) as u64)
        .map(|i| config.base_seed ^ (0x5A00 + i))
        .collect();
    let family_tasks: Vec<(CodeFamily, u64)> = CodeFamily::ALL
        .iter()
        .flat_map(|&family| small_seeds.iter().map(move |&seed| (family, seed)))
        .collect();

    let large_codes = parallel_map(&large_seeds, config.threads, |&seed| {
        evaluate_code(config.data_bits, seed, false)
    });
    let small_codes = parallel_map(&small_seeds, config.threads, |&seed| {
        evaluate_code(16, seed, true)
    });
    let cross_family = parallel_map(&family_tasks, config.threads, |&(family, seed)| {
        evaluate_family(family, 16, seed)
    });

    Ext2BeerResult {
        large_codes,
        small_codes,
        cross_family,
    }
}

impl Ext2BeerResult {
    /// Renders the result as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "dataword",
            "code seed",
            "patterns",
            "miscorrecting pairs",
            "profile matches H",
            "HARP-A prediction coverage",
            "equivalent code rebuilt",
        ]);
        for outcome in self.large_codes.iter().chain(&self.small_codes) {
            table.push_row([
                outcome.data_bits.to_string(),
                format!("{:#x}", outcome.code_seed),
                outcome.patterns_tested.to_string(),
                fixed(outcome.miscorrecting_fraction, 3),
                outcome.profile_matches.to_string(),
                fixed(outcome.prediction_coverage, 3),
                outcome
                    .reconstructed_equivalent
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "-".to_owned()),
            ]);
        }
        let mut family_table = TextTable::new([
            "family",
            "dataword",
            "code seed",
            "patterns (w2+w3)",
            "miscorrecting",
            "profile matches H",
            "reconstructed",
            "visible-equivalent (w<=3)",
        ]);
        for outcome in &self.cross_family {
            family_table.push_row([
                outcome.family.to_string(),
                outcome.data_bits.to_string(),
                format!("{:#x}", outcome.code_seed),
                outcome.patterns_tested.to_string(),
                outcome.miscorrecting_patterns.to_string(),
                outcome.profile_matches.to_string(),
                outcome.reconstructed.to_string(),
                outcome.visible_equivalent_w3.to_string(),
            ]);
        }
        format!(
            "Extension 2: BEER-style reverse engineering of the on-die ECC\n{}\n\
             Cross-family reconstruction (visible-error profile -> equivalent code)\n{}",
            table.render(),
            family_table.render()
        )
    }

    /// Returns `true` if every campaign recovered the exact ground-truth
    /// profile.
    pub fn all_profiles_match(&self) -> bool {
        self.large_codes
            .iter()
            .chain(&self.small_codes)
            .all(|o| o.profile_matches)
            && self.cross_family.iter().all(|o| o.profile_matches)
    }

    /// Returns `true` if every cross-family pipeline reconstructed a
    /// weight-3 data-visible-equivalent code of its secret's family.
    pub fn all_cross_family_roundtrip(&self) -> bool {
        !self.cross_family.is_empty()
            && self
                .cross_family
                .iter()
                .all(|o| o.reconstructed && o.visible_equivalent_w3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            data_bits: 32,
            ..EvaluationConfig::smoke()
        }
    }

    #[test]
    fn every_recovered_profile_matches_the_secret_code() {
        let result = run(&smoke_config());
        assert!(result.all_profiles_match());
        assert_eq!(result.large_codes.len(), 2);
        assert!(!result.small_codes.is_empty());
    }

    #[test]
    fn small_codes_reconstruct_equivalents() {
        let result = run(&smoke_config());
        for outcome in &result.small_codes {
            assert_eq!(outcome.reconstructed_equivalent, Some(true));
        }
    }

    #[test]
    fn cross_family_pipelines_round_trip_both_families() {
        let result = run(&smoke_config());
        assert!(result.all_cross_family_roundtrip());
        // Both families appear, and SEC-DED's information really does come
        // exclusively from the weight-3 patterns.
        for family in CodeFamily::ALL {
            let outcomes: Vec<_> = result
                .cross_family
                .iter()
                .filter(|o| o.family == family)
                .collect();
            assert!(!outcomes.is_empty(), "{family} missing");
            for outcome in outcomes {
                assert!(outcome.profile_matches);
                assert!(outcome.miscorrecting_patterns > 0);
                assert_eq!(
                    outcome.patterns_tested,
                    BeerCampaign::new(outcome.data_bits).visible_pattern_count()
                );
            }
        }
    }

    #[test]
    fn prediction_coverage_is_a_fraction() {
        let result = run(&smoke_config());
        for outcome in result.large_codes.iter().chain(&result.small_codes) {
            assert!((0.0..=1.0).contains(&outcome.prediction_coverage));
            assert!((0.0..=1.0).contains(&outcome.miscorrecting_fraction));
        }
        assert!(result.render().contains("Extension 2"));
        assert!(result.render().contains("Cross-family reconstruction"));
        assert!(result.render().contains("SEC-DED extended Hamming"));
    }
}
