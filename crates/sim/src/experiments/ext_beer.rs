//! Extension 2: reverse-engineering the on-die ECC (BEER) as the input to
//! BEEP and HARP-A.
//!
//! The paper's H-aware profilers (BEEP and HARP-A) assume the on-die ECC
//! parity-check matrix is available, "potentially provided through
//! manufacturer support, datasheet information, or previously-proposed
//! reverse engineering techniques" (§1, footnote 4). This experiment closes
//! that loop: it runs the BEER-style pair-charged test campaign from
//! [`harp_beer`] against black-box chips with secret codes and measures
//!
//! * whether the recovered miscorrection profile matches the ground truth
//!   computed from the secret parity-check matrix;
//! * how much of HARP-A's indirect-error prediction the recovered profile
//!   already provides, relative to full knowledge of `H`;
//! * for small codes, whether a concrete *equivalent* code can be
//!   reconstructed from the profile.

use serde::{Deserialize, Serialize};

use harp_beer::{reconstruct_equivalent_code, BeerCampaign, MiscorrectionProfile};
use harp_ecc::analysis::{predict_indirect_from_direct, FailureDependence};
use harp_ecc::HammingCode;
use harp_ecc::LinearBlockCode;

use crate::config::EvaluationConfig;
use crate::report::{fixed, TextTable};
use crate::runner::parallel_map;

/// The per-code outcome of the reverse-engineering campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext2CodeOutcome {
    /// Seed of the secret code.
    pub code_seed: u64,
    /// Dataword length of the secret code.
    pub data_bits: usize,
    /// Number of pair-charged test patterns programmed.
    pub patterns_tested: usize,
    /// Fraction of pairs that provoke a data-visible miscorrection.
    pub miscorrecting_fraction: f64,
    /// Whether the recovered profile matches the ground truth from `H`.
    pub profile_matches: bool,
    /// Fraction of the full (H-aware) HARP-A indirect-error prediction that
    /// the pairwise profile alone recovers, averaged over sampled
    /// direct-error sets.
    pub prediction_coverage: f64,
    /// Whether an equivalent code was reconstructed from the profile
    /// (attempted only for datawords of at most 16 bits).
    pub reconstructed_equivalent: Option<bool>,
}

/// The full extension-2 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext2BeerResult {
    /// Outcomes for the (71, 64)-class secret codes.
    pub large_codes: Vec<Ext2CodeOutcome>,
    /// Outcomes for the small (16-bit dataword) codes used to exercise full
    /// code reconstruction.
    pub small_codes: Vec<Ext2CodeOutcome>,
}

fn evaluate_code(data_bits: usize, code_seed: u64, reconstruct: bool) -> Ext2CodeOutcome {
    let secret = HammingCode::random(data_bits, code_seed).expect("secret code");
    let campaign = BeerCampaign::new(data_bits);
    let profile = campaign.extract_profile(&secret);
    let truth = MiscorrectionProfile::from_code(&secret);

    // How much of the full HARP-A prediction the pairwise profile recovers,
    // over a handful of representative direct-error sets.
    let mut ratios = Vec::new();
    for offset in 0..4usize {
        let direct: Vec<usize> = (0..4).map(|i| (offset * 7 + i * 3) % data_bits).collect();
        let full = predict_indirect_from_direct(&secret, &direct, FailureDependence::TrueCell);
        if full.is_empty() {
            continue;
        }
        let pairwise = profile.predict_indirect_from_direct(&direct);
        ratios.push(pairwise.intersection(&full).count() as f64 / full.len() as f64);
    }
    let prediction_coverage = if ratios.is_empty() {
        1.0
    } else {
        ratios.iter().sum::<f64>() / ratios.len() as f64
    };

    let reconstructed_equivalent = if reconstruct {
        Some(
            reconstruct_equivalent_code(&profile, secret.parity_len(), code_seed, 200_000)
                .map(|code| profile.is_consistent_with(&code))
                .unwrap_or(false),
        )
    } else {
        None
    };

    Ext2CodeOutcome {
        code_seed,
        data_bits,
        patterns_tested: campaign.pattern_count(),
        miscorrecting_fraction: profile.miscorrecting_pair_count() as f64
            / campaign.pattern_count() as f64,
        profile_matches: profile == truth,
        prediction_coverage,
        reconstructed_equivalent,
    }
}

/// Runs the extension experiment.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run(config: &EvaluationConfig) -> Ext2BeerResult {
    config.validate();
    let large_seeds: Vec<u64> = (0..config.num_codes as u64)
        .map(|i| config.base_seed ^ (0xBEE0 + i))
        .collect();
    let small_seeds: Vec<u64> = (0..config.num_codes.min(2) as u64)
        .map(|i| config.base_seed ^ (0x5A00 + i))
        .collect();

    let large_codes = parallel_map(&large_seeds, config.threads, |&seed| {
        evaluate_code(config.data_bits, seed, false)
    });
    let small_codes = parallel_map(&small_seeds, config.threads, |&seed| {
        evaluate_code(16, seed, true)
    });

    Ext2BeerResult {
        large_codes,
        small_codes,
    }
}

impl Ext2BeerResult {
    /// Renders the result as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "dataword",
            "code seed",
            "patterns",
            "miscorrecting pairs",
            "profile matches H",
            "HARP-A prediction coverage",
            "equivalent code rebuilt",
        ]);
        for outcome in self.large_codes.iter().chain(&self.small_codes) {
            table.push_row([
                outcome.data_bits.to_string(),
                format!("{:#x}", outcome.code_seed),
                outcome.patterns_tested.to_string(),
                fixed(outcome.miscorrecting_fraction, 3),
                outcome.profile_matches.to_string(),
                fixed(outcome.prediction_coverage, 3),
                outcome
                    .reconstructed_equivalent
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "-".to_owned()),
            ]);
        }
        format!(
            "Extension 2: BEER-style reverse engineering of the on-die ECC\n{}",
            table.render()
        )
    }

    /// Returns `true` if every campaign recovered the exact ground-truth
    /// profile.
    pub fn all_profiles_match(&self) -> bool {
        self.large_codes
            .iter()
            .chain(&self.small_codes)
            .all(|o| o.profile_matches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            data_bits: 32,
            ..EvaluationConfig::smoke()
        }
    }

    #[test]
    fn every_recovered_profile_matches_the_secret_code() {
        let result = run(&smoke_config());
        assert!(result.all_profiles_match());
        assert_eq!(result.large_codes.len(), 2);
        assert!(!result.small_codes.is_empty());
    }

    #[test]
    fn small_codes_reconstruct_equivalents() {
        let result = run(&smoke_config());
        for outcome in &result.small_codes {
            assert_eq!(outcome.reconstructed_equivalent, Some(true));
        }
    }

    #[test]
    fn prediction_coverage_is_a_fraction() {
        let result = run(&smoke_config());
        for outcome in result.large_codes.iter().chain(&result.small_codes) {
            assert!((0.0..=1.0).contains(&outcome.prediction_coverage));
            assert!((0.0..=1.0).contains(&outcome.miscorrecting_fraction));
        }
        assert!(result.render().contains("Extension 2"));
    }
}
