//! The paper's headline claims, derived from the Fig. 9b and Fig. 10 data:
//!
//! * HARP achieves 99th-percentile coverage (the ≤1-simultaneous-error state)
//!   in 20.6% / 36.4% / 52.9% / 62.1% of the rounds required by the best
//!   baseline for 2 / 3 / 4 / 5 pre-correction errors at p = 0.5;
//! * in the case study, HARP enables the repair mechanism to mitigate all
//!   errors 3.7× faster than the best baseline at a raw per-bit error
//!   probability of 0.75.
//!
//! Absolute ratios depend on the Monte-Carlo sample sizes, but the direction
//! (HARP strictly faster, ratio < 1) must hold at any scale.

use serde::{Deserialize, Serialize};

use harp_profiler::ProfilerKind;

use crate::config::EvaluationConfig;
use crate::experiments::{fig10, fig9, sweep};
use crate::report::{fixed, TextTable};

/// Relative speed of HARP vs. the best baseline for one pre-correction error
/// count (Fig. 9b-derived headline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageSpeedup {
    /// Number of pre-correction errors per ECC word.
    pub error_count: usize,
    /// Rounds HARP needs to reach the ≤1-simultaneous-error state (99th
    /// percentile word), if reached.
    pub harp_rounds: Option<usize>,
    /// Rounds the best baseline (Naive or BEEP) needs, if reached.
    pub best_baseline_rounds: Option<usize>,
    /// `harp_rounds / best_baseline_rounds` (the paper reports 20.6%–62.1%).
    pub ratio: Option<f64>,
}

/// Relative speed of HARP vs. the best baseline to reach zero post-reactive
/// BER in the case study (Fig. 10-derived headline).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CaseStudySpeedup {
    /// Per-bit pre-correction error probability.
    pub probability: f64,
    /// Rounds HARP needs to reach zero post-reactive BER.
    pub harp_rounds: Option<usize>,
    /// Rounds the best baseline needs.
    pub best_baseline_rounds: Option<usize>,
    /// `best_baseline_rounds / harp_rounds` (the paper reports 3.7×).
    pub speedup: Option<f64>,
}

/// The headline-claims summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineResult {
    /// Per-error-count coverage speedups at p = 0.5.
    pub coverage: Vec<CoverageSpeedup>,
    /// Case-study speedups per probability.
    pub case_study: Vec<CaseStudySpeedup>,
}

/// Computes the headline summary (runs its own sweeps).
pub fn run(config: &EvaluationConfig) -> HeadlineResult {
    let sweep = sweep::run_coverage_sweep(config, &fig9::PROFILERS);
    let fig9_result = fig9::from_sweep(&sweep);
    let fig10_result = fig10::run(config);
    summarize(config, &fig9_result, &fig10_result)
}

/// Derives the headline summary from existing Fig. 9 / Fig. 10 results.
pub fn summarize(
    config: &EvaluationConfig,
    fig9_result: &fig9::Fig9Result,
    fig10_result: &fig10::Fig10Result,
) -> HeadlineResult {
    let probability = 0.5;
    let coverage = config
        .error_counts
        .iter()
        .map(|&error_count| {
            let harp = fig9_result.rounds_to_single_error_p99(
                ProfilerKind::HarpU,
                error_count,
                probability,
            );
            let naive = fig9_result.rounds_to_single_error_p99(
                ProfilerKind::Naive,
                error_count,
                probability,
            );
            let beep = fig9_result.rounds_to_single_error_p99(
                ProfilerKind::Beep,
                error_count,
                probability,
            );
            let best_baseline = match (naive, beep) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };
            let ratio = match (harp, best_baseline) {
                (Some(h), Some(b)) if b > 0 => Some(h as f64 / b as f64),
                _ => None,
            };
            CoverageSpeedup {
                error_count,
                harp_rounds: harp,
                best_baseline_rounds: best_baseline,
                ratio,
            }
        })
        .collect();

    // Case-study speedups: best RBER series available per probability.
    let mut case_study = Vec::new();
    for &probability in &config.probabilities {
        let mut harp_rounds: Option<usize> = None;
        let mut baseline_rounds: Option<usize> = None;
        for s in &fig10_result.series {
            if (s.probability - probability).abs() > 1e-9 {
                continue;
            }
            let to_zero = s.rounds_to_zero_after();
            match s.profiler {
                ProfilerKind::HarpU | ProfilerKind::HarpA | ProfilerKind::HarpS => {
                    harp_rounds = merge_min(harp_rounds, to_zero);
                }
                ProfilerKind::Naive | ProfilerKind::Beep => {
                    baseline_rounds = merge_min(baseline_rounds, to_zero);
                }
                ProfilerKind::HarpABeep => {}
            }
        }
        let speedup = match (harp_rounds, baseline_rounds) {
            (Some(h), Some(b)) if h > 0 => Some(b as f64 / h as f64),
            _ => None,
        };
        case_study.push(CaseStudySpeedup {
            probability,
            harp_rounds,
            best_baseline_rounds: baseline_rounds,
            speedup,
        });
    }

    HeadlineResult {
        coverage,
        case_study,
    }
}

fn merge_min(current: Option<usize>, candidate: Option<usize>) -> Option<usize> {
    match (current, candidate) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (Some(a), None) => Some(a),
        (None, b) => b,
    }
}

impl HeadlineResult {
    /// Renders the headline comparison.
    pub fn render(&self) -> String {
        let mut coverage_table = TextTable::new([
            "pre-corr errors",
            "HARP rounds",
            "best baseline rounds",
            "HARP / baseline",
        ]);
        for c in &self.coverage {
            coverage_table.push_row([
                c.error_count.to_string(),
                c.harp_rounds.map_or("-".into(), |r| r.to_string()),
                c.best_baseline_rounds.map_or("-".into(), |r| r.to_string()),
                c.ratio.map_or("-".into(), |r| fixed(r, 3)),
            ]);
        }
        let mut case_table = TextTable::new([
            "per-bit p",
            "HARP rounds to zero BER",
            "baseline rounds to zero BER",
            "speedup",
        ]);
        for c in &self.case_study {
            case_table.push_row([
                fixed(c.probability, 2),
                c.harp_rounds.map_or("-".into(), |r| r.to_string()),
                c.best_baseline_rounds.map_or("-".into(), |r| r.to_string()),
                c.speedup.map_or("-".into(), |s| format!("{s:.1}x")),
            ]);
        }
        format!(
            "Headline: rounds to the <=1-simultaneous-error state (p = 0.5, 99th percentile)\n{}\nHeadline: case-study rounds to zero post-reactive BER\n{}",
            coverage_table.render(),
            case_table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harp_is_never_slower_than_the_best_baseline() {
        let config = EvaluationConfig {
            num_codes: 2,
            words_per_code: 4,
            rounds: 64,
            error_counts: vec![2, 4],
            probabilities: vec![0.5, 0.75],
            ..EvaluationConfig::quick()
        };
        let result = run(&config);
        for c in &result.coverage {
            if let Some(ratio) = c.ratio {
                assert!(ratio <= 1.0 + 1e-9, "ratio {ratio} for n={}", c.error_count);
            }
            assert!(c.harp_rounds.is_some(), "HARP must reach the target");
        }
        for c in &result.case_study {
            if let Some(speedup) = c.speedup {
                assert!(speedup >= 1.0 - 1e-9, "speedup {speedup}");
            }
        }
        let rendered = result.render();
        assert!(rendered.contains("Headline"));
        assert!(rendered.contains("speedup"));
    }
}
