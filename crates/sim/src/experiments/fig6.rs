//! Fig. 6: coverage of bits at risk of direct error vs. number of profiling
//! rounds, for HARP-U, Naive, and BEEP across the (pre-correction error
//! count × per-bit probability) sweep.
//!
//! The qualitative shape to reproduce: HARP reaches full coverage almost
//! immediately regardless of the configuration, Naive improves steadily but
//! needs many more rounds (and depends strongly on the error count /
//! probability), and BEEP can plateau below full coverage.

use serde::{Deserialize, Serialize};

use harp_profiler::ProfilerKind;

use crate::config::EvaluationConfig;
use crate::experiments::sweep::{run_coverage_sweep, CoverageSweep};
use crate::report::{fixed, percent, TextTable};
use crate::stats::round_checkpoints;

/// Aggregate direct-error coverage at each checkpoint round for one
/// (profiler, error count, probability) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Series {
    /// Profiler evaluated.
    pub profiler: ProfilerKind,
    /// Number of pre-correction errors per ECC word.
    pub error_count: usize,
    /// Per-bit pre-correction error probability.
    pub probability: f64,
    /// `(round, aggregate coverage)` points; coverage is computed as the
    /// fraction of all at-risk direct-error bits identified across all
    /// simulated ECC words (matching §7.2.1).
    pub points: Vec<(usize, f64)>,
}

/// The Fig. 6 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// All series (profiler × error count × probability).
    pub series: Vec<Fig6Series>,
}

/// Profilers compared in Fig. 6 (and Fig. 7).
pub const PROFILERS: [ProfilerKind; 3] = ProfilerKind::ACTIVE_BASELINES;

/// Runs the experiment (including the underlying coverage sweep).
pub fn run(config: &EvaluationConfig) -> Fig6Result {
    from_sweep(&run_coverage_sweep(config, &PROFILERS))
}

/// Aggregates an existing coverage sweep into the Fig. 6 series.
pub fn from_sweep(sweep: &CoverageSweep) -> Fig6Result {
    let checkpoints = round_checkpoints(sweep.rounds);
    let mut series = Vec::new();
    for &profiler in &sweep.profilers {
        for &error_count in &sweep.error_counts {
            for &probability in &sweep.probabilities {
                let evaluations: Vec<_> = sweep.cell(profiler, error_count, probability).collect();
                let points = checkpoints
                    .iter()
                    .map(|&round| {
                        let mut identified = 0.0;
                        let mut total = 0.0;
                        for e in &evaluations {
                            let truth = e.series.direct_truth_len as f64;
                            identified += e.series.direct_coverage[round - 1] * truth;
                            total += truth;
                        }
                        let coverage = if total == 0.0 {
                            1.0
                        } else {
                            identified / total
                        };
                        (round, coverage)
                    })
                    .collect();
                series.push(Fig6Series {
                    profiler,
                    error_count,
                    probability,
                    points,
                });
            }
        }
    }
    Fig6Result { series }
}

impl Fig6Result {
    /// Looks up one series.
    pub fn series_for(
        &self,
        profiler: ProfilerKind,
        error_count: usize,
        probability: f64,
    ) -> Option<&Fig6Series> {
        self.series.iter().find(|s| {
            s.profiler == profiler
                && s.error_count == error_count
                && (s.probability - probability).abs() < 1e-9
        })
    }

    /// Renders one table row per series, with coverage at each checkpoint.
    pub fn render(&self) -> String {
        let checkpoints: Vec<usize> = self
            .series
            .first()
            .map(|s| s.points.iter().map(|(r, _)| *r).collect())
            .unwrap_or_default();
        let mut header = vec![
            "profiler".to_owned(),
            "pre-corr errors".to_owned(),
            "per-bit p".to_owned(),
        ];
        header.extend(checkpoints.iter().map(|r| format!("r{r}")));
        let mut table = TextTable::new(header);
        for s in &self.series {
            let mut row = vec![
                s.profiler.to_string(),
                s.error_count.to_string(),
                percent(s.probability),
            ];
            row.extend(s.points.iter().map(|(_, c)| fixed(*c, 3)));
            table.push_row(row);
        }
        format!(
            "Fig. 6: coverage of bits at risk of direct errors vs. profiling rounds\n{}",
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 3,
            rounds: 64,
            error_counts: vec![2, 4],
            probabilities: vec![0.5],
            ..EvaluationConfig::quick()
        }
    }

    #[test]
    fn harp_reaches_full_coverage_and_beats_baselines() {
        let result = run(&tiny_config());
        for &count in &[2usize, 4] {
            let harp = result.series_for(ProfilerKind::HarpU, count, 0.5).unwrap();
            let naive = result.series_for(ProfilerKind::Naive, count, 0.5).unwrap();
            let final_harp = harp.points.last().unwrap().1;
            let final_naive = naive.points.last().unwrap().1;
            assert!(
                (final_harp - 1.0).abs() < 1e-9,
                "HARP final coverage {final_harp}"
            );
            assert!(final_harp >= final_naive);
            // HARP is also at least as good at every checkpoint.
            for ((_, h), (_, n)) in harp.points.iter().zip(&naive.points) {
                assert!(h + 1e-9 >= *n);
            }
        }
    }

    #[test]
    fn coverage_is_monotonic_in_rounds() {
        let result = run(&tiny_config());
        for s in &result.series {
            for window in s.points.windows(2) {
                assert!(window[1].1 + 1e-12 >= window[0].1);
            }
        }
    }

    #[test]
    fn render_lists_every_profiler() {
        let rendered = run(&tiny_config()).render();
        assert!(rendered.contains("HARP-U"));
        assert!(rendered.contains("Naive"));
        assert!(rendered.contains("BEEP"));
    }
}
