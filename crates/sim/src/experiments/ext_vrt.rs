//! Extension 5: low-probability (variable-retention-time) errors and
//! reactive scrubbing.
//!
//! §2.4 of the paper excludes low-probability errors such as VRT from the
//! active-profiling error model and argues they are "left to reactive
//! profiling for detection and/or mitigation". This experiment exercises that
//! claim end to end: ECC words carry both always-at-risk bits (identified and
//! repaired by HARP's active phase) and VRT cells that toggle between leaky
//! and retentive states during runtime. A secondary-ECC scrubber then runs
//! for a configurable number of scrub intervals, and the experiment reports
//!
//! * how quickly reactive profiling identifies the VRT bits as a function of
//!   their toggle probability;
//! * how often two still-unidentified VRT bits fail in the same interval,
//!   exceeding a single-error-correcting secondary ECC — the residual risk
//!   §6.3.2's "increase the secondary ECC strength" discussion addresses.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::LinearBlockCode;
use harp_ecc::{HammingCode, SecondaryEcc};
use harp_gf2::BitVec;
use harp_memsim::retention::{VrtCell, VrtFaultProcess};
use harp_memsim::FaultModel;
use harp_profiler::ReactiveProfiler;

use crate::config::EvaluationConfig;
use crate::report::{fixed, TextTable};
use crate::runner::parallel_map;
use crate::stats::mean;

/// The VRT toggle probabilities swept by default.
pub const DEFAULT_TOGGLE_PROBABILITIES: [f64; 3] = [0.01, 0.05, 0.2];

/// Scrub-interval checkpoints at which coverage is reported.
pub const CHECKPOINTS: [usize; 4] = [8, 32, 64, 128];

/// One cell: a toggle probability evaluated over the word population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext5Cell {
    /// Per-access probability of a VRT cell toggling state.
    pub toggle_probability: f64,
    /// Words simulated.
    pub words: usize,
    /// VRT cells per word.
    pub vrt_cells_per_word: usize,
    /// Mean fraction of VRT bits identified by reactive profiling at each
    /// checkpoint of [`CHECKPOINTS`].
    pub coverage_at_checkpoints: Vec<f64>,
    /// Mean number of scrub observations whose error count exceeded the
    /// SEC secondary ECC (per word, across all intervals).
    pub mean_unsafe_events: f64,
}

/// The full extension-5 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext5VrtResult {
    /// Scrub intervals simulated per word.
    pub scrub_intervals: usize,
    /// One cell per toggle probability.
    pub cells: Vec<Ext5Cell>,
}

/// Runs the extension experiment with the default toggle-probability sweep.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run(config: &EvaluationConfig) -> Ext5VrtResult {
    run_with_toggle_probabilities(config, &DEFAULT_TOGGLE_PROBABILITIES)
}

/// Runs the extension experiment for explicit toggle probabilities.
///
/// # Panics
///
/// Panics if the configuration is invalid or any probability is outside
/// `[0, 1]`.
pub fn run_with_toggle_probabilities(
    config: &EvaluationConfig,
    toggle_probabilities: &[f64],
) -> Ext5VrtResult {
    config.validate();
    let scrub_intervals = config.rounds;
    let vrt_cells_per_word = 2usize;

    let cells = toggle_probabilities
        .iter()
        .map(|&toggle| {
            assert!(
                (0.0..=1.0).contains(&toggle),
                "toggle probability {toggle} outside [0, 1]"
            );
            let word_indices: Vec<usize> = (0..config.words_total()).collect();
            let per_word = parallel_map(&word_indices, config.threads, |&word| {
                simulate_word(config, word, toggle, vrt_cells_per_word, scrub_intervals)
            });

            let coverage_at_checkpoints = CHECKPOINTS
                .iter()
                .map(|&checkpoint| {
                    mean(
                        &per_word
                            .iter()
                            .map(|w| w.coverage_at(checkpoint.min(scrub_intervals)))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            Ext5Cell {
                toggle_probability: toggle,
                words: per_word.len(),
                vrt_cells_per_word,
                coverage_at_checkpoints,
                mean_unsafe_events: mean(
                    &per_word
                        .iter()
                        .map(|w| w.unsafe_events as f64)
                        .collect::<Vec<_>>(),
                ),
            }
        })
        .collect();

    Ext5VrtResult {
        scrub_intervals,
        cells,
    }
}

struct WordOutcome {
    /// For each VRT bit, the 1-based scrub interval at which it was
    /// identified (`None` if never).
    identified_at: Vec<Option<usize>>,
    unsafe_events: usize,
}

impl WordOutcome {
    fn coverage_at(&self, interval: usize) -> f64 {
        if self.identified_at.is_empty() {
            return 1.0;
        }
        let hit = self
            .identified_at
            .iter()
            .filter(|r| r.is_some_and(|at| at <= interval))
            .count();
        hit as f64 / self.identified_at.len() as f64
    }
}

/// Salt keying a word's RNG stream by its toggle probability, so sweeping
/// the toggle axis never reuses a stream (micro-units keep distinct sweep
/// points distinct after the integer cast).
fn toggle_salt(toggle: f64) -> u64 {
    (toggle * 1e6) as u64
}

fn simulate_word(
    config: &EvaluationConfig,
    word: usize,
    toggle: f64,
    vrt_cells_per_word: usize,
    scrub_intervals: usize,
) -> WordOutcome {
    let seed = config.seed_for(word, 0, toggle_salt(toggle));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let code = HammingCode::random(config.data_bits, seed ^ 0x7123).expect("code");

    // Distinct data positions: two always-at-risk bits (covered by active
    // profiling) and the VRT cells reactive profiling must find.
    let mut positions: Vec<usize> = (0..config.data_bits).collect();
    positions.shuffle(&mut rng);
    let static_bits = [positions[0], positions[1]];
    let vrt_positions: Vec<usize> = positions[2..2 + vrt_cells_per_word].to_vec();

    let static_model = FaultModel::uniform(&static_bits, 0.5);
    let vrt_cells: Vec<VrtCell> = vrt_positions
        .iter()
        .map(|&p| VrtCell::new(p, 0.5, toggle))
        .collect();
    let mut process = VrtFaultProcess::new(static_model, vrt_cells);

    // HARP's active phase has already identified (and repair covers) the
    // static bits; the reactive profiler starts from that profile.
    let repaired: std::collections::BTreeSet<usize> = static_bits.iter().copied().collect();
    let mut reactive = ReactiveProfiler::new(SecondaryEcc::ideal_sec());

    let written = BitVec::ones(config.data_bits);
    let stored = code.encode(&written);
    let mut identified_at: Vec<Option<usize>> = vec![None; vrt_positions.len()];

    for interval in 1..=scrub_intervals {
        let raw_errors = process.sample_errors(&stored, &mut rng);
        let result = code.decode(&(&stored ^ &raw_errors));
        // The repair mechanism restores every profiled bit.
        let mut post_repair = result.dataword.clone();
        for &bit in repaired.iter().chain(reactive.identified().iter()) {
            post_repair.set(bit, written.get(bit));
        }
        let newly = reactive.observe(&written, &post_repair);
        for position in newly {
            if let Some(index) = vrt_positions.iter().position(|&p| p == position) {
                identified_at[index].get_or_insert(interval);
            }
        }
    }

    WordOutcome {
        identified_at,
        unsafe_events: reactive.unsafe_events(),
    }
}

impl Ext5VrtResult {
    /// Renders the result as a plain-text table.
    pub fn render(&self) -> String {
        let mut header = vec![
            "toggle probability".to_owned(),
            "words".to_owned(),
            "VRT cells/word".to_owned(),
        ];
        header.extend(CHECKPOINTS.iter().map(|c| format!("coverage@{c}")));
        header.push("mean unsafe events".to_owned());
        let mut table = TextTable::new(header);
        for cell in &self.cells {
            let mut row = vec![
                fixed(cell.toggle_probability, 3),
                cell.words.to_string(),
                cell.vrt_cells_per_word.to_string(),
            ];
            row.extend(cell.coverage_at_checkpoints.iter().map(|c| fixed(*c, 3)));
            row.push(fixed(cell.mean_unsafe_events, 3));
            table.push_row(row);
        }
        format!(
            "Extension 5: VRT (low-probability) errors under reactive scrubbing, {} scrub intervals\n{}",
            self.scrub_intervals,
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 6,
            rounds: 64,
            ..EvaluationConfig::quick()
        }
    }

    #[test]
    fn coverage_is_monotone_in_scrub_intervals() {
        let result = run_with_toggle_probabilities(&smoke_config(), &[0.1]);
        let cell = &result.cells[0];
        for window in cell.coverage_at_checkpoints.windows(2) {
            assert!(window[1] >= window[0] - 1e-12);
        }
        assert!((0.0..=1.0).contains(cell.coverage_at_checkpoints.last().unwrap()));
    }

    #[test]
    fn faster_toggling_cells_are_found_sooner() {
        let result = run_with_toggle_probabilities(&smoke_config(), &[0.01, 0.3]);
        let slow = result.cells[0]
            .coverage_at_checkpoints
            .last()
            .copied()
            .unwrap();
        let fast = result.cells[1]
            .coverage_at_checkpoints
            .last()
            .copied()
            .unwrap();
        assert!(fast >= slow, "fast {fast} < slow {slow}");
    }

    #[test]
    fn render_reports_every_checkpoint() {
        let result = run_with_toggle_probabilities(&smoke_config(), &[0.05]);
        let rendered = result.render();
        assert!(rendered.contains("Extension 5"));
        for checkpoint in CHECKPOINTS {
            assert!(rendered.contains(&format!("coverage@{checkpoint}")));
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_toggle_probability_is_rejected() {
        run_with_toggle_probabilities(&smoke_config(), &[1.5]);
    }
}
