//! Fig. 4: distribution of each at-risk bit's probability of post-correction
//! error as a function of the number of pre-correction errors per ECC word.
//!
//! The paper injects a fixed number of at-risk bits per word, each failing
//! with probability 0.5 under the 0xFF (all-charged) data pattern, and plots
//! the distribution of per-bit post-correction error probabilities across
//! many randomly generated codes. The key observations this experiment must
//! reproduce: pre-correction probabilities stay at 0.5 by construction, while
//! post-correction probabilities are spread wide and shift towards zero as
//! the number of pre-correction errors grows (making at-risk bits harder to
//! identify — challenge 2 of §4).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;

use crate::config::EvaluationConfig;
use crate::report::{fixed, TextTable};
use crate::runner::parallel_map;
use crate::sample::sample_words;
use crate::stats::Summary;

/// Number of Monte-Carlo accesses simulated per ECC word.
pub const TRIALS_PER_WORD: usize = 256;

/// The per-bit post-correction error-probability distribution for one
/// pre-correction error count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Point {
    /// Number of pre-correction errors injected per ECC word.
    pub error_count: usize,
    /// Summary of the observed per-bit *pre*-correction error probabilities
    /// (should concentrate at the configured per-bit probability).
    pub pre_correction: Summary,
    /// Summary of the observed per-bit *post*-correction error probabilities
    /// across all at-risk bits of all simulated words.
    pub post_correction: Summary,
}

/// The Fig. 4 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Per-bit probability used for the injected pre-correction errors.
    pub per_bit_probability: f64,
    /// One point per evaluated pre-correction error count.
    pub points: Vec<Fig4Point>,
}

/// The pre-correction error counts swept in the paper's Fig. 4.
pub const ERROR_COUNTS: [usize; 7] = [2, 3, 4, 5, 6, 7, 8];

/// Salt separating the Monte-Carlo error-space draw from the campaign's
/// own stream for the same word.
const FIG4_SPACE_SALT: u64 = 0xF164;

/// Runs the Fig. 4 experiment with the paper's parameters (p = 0.5, charged
/// data pattern).
pub fn run(config: &EvaluationConfig) -> Fig4Result {
    run_with(config, &ERROR_COUNTS, 0.5)
}

/// Runs the experiment for custom error counts / per-bit probability.
pub fn run_with(
    config: &EvaluationConfig,
    error_counts: &[usize],
    per_bit_probability: f64,
) -> Fig4Result {
    config.validate();
    let mut points = Vec::with_capacity(error_counts.len());
    for &error_count in error_counts {
        let samples = sample_words(config, error_count, per_bit_probability);
        let per_word: Vec<(Vec<f64>, Vec<f64>)> =
            parallel_map(&samples, config.threads, |sample| {
                // Each word is programmed with the charged (0xFF) pattern.
                let data = BitVec::ones(sample.code.data_len());
                let encoded = sample.code.encode(&data);
                let mut rng = ChaCha8Rng::seed_from_u64(sample.campaign_seed ^ FIG4_SPACE_SALT);
                let at_risk = sample.faults.at_risk_positions();
                let space = harp_ecc::ErrorSpace::enumerate(
                    &sample.code,
                    &at_risk,
                    sample.faults.dependence(),
                );
                let post_risk: Vec<usize> =
                    space.post_correction_at_risk().iter().copied().collect();
                let mut pre_failures = vec![0usize; at_risk.len()];
                let mut post_failures = vec![0usize; post_risk.len()];
                for _ in 0..TRIALS_PER_WORD {
                    let raw = sample.faults.sample_errors(&encoded, &mut rng);
                    for (i, &pos) in at_risk.iter().enumerate() {
                        if raw.get(pos) {
                            pre_failures[i] += 1;
                        }
                    }
                    let stored = &encoded ^ &raw;
                    let decoded = sample.code.decode(&stored);
                    let errors = decoded.post_correction_errors(&data);
                    for (i, &pos) in post_risk.iter().enumerate() {
                        if errors.contains(&pos) {
                            post_failures[i] += 1;
                        }
                    }
                }
                let pre: Vec<f64> = pre_failures
                    .iter()
                    .map(|&f| f as f64 / TRIALS_PER_WORD as f64)
                    .collect();
                let post: Vec<f64> = post_failures
                    .iter()
                    .map(|&f| f as f64 / TRIALS_PER_WORD as f64)
                    .collect();
                (pre, post)
            });
        let mut all_pre = Vec::new();
        let mut all_post = Vec::new();
        for (pre, post) in per_word {
            all_pre.extend(pre);
            all_post.extend(post);
        }
        points.push(Fig4Point {
            error_count,
            pre_correction: Summary::of(&all_pre),
            post_correction: Summary::of(&all_post),
        });
    }
    Fig4Result {
        per_bit_probability,
        points,
    }
}

impl Fig4Result {
    /// Renders the distribution summaries as a table (one row per error
    /// count).
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "pre-corr errors",
            "pre p (median)",
            "post p (p25)",
            "post p (median)",
            "post p (p75)",
            "post p (max)",
            "at-risk samples",
        ]);
        for point in &self.points {
            table.push_row([
                point.error_count.to_string(),
                fixed(point.pre_correction.median, 3),
                fixed(point.post_correction.p25, 3),
                fixed(point.post_correction.median, 3),
                fixed(point.post_correction.p75, 3),
                fixed(point.post_correction.max, 3),
                point.post_correction.count.to_string(),
            ]);
        }
        format!(
            "Fig. 4: per-bit probability of post-correction error (per-bit pre-correction probability {:.2}, charged pattern)\n{}",
            self.per_bit_probability,
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 4,
            ..EvaluationConfig::smoke()
        }
    }

    #[test]
    fn pre_correction_probability_stays_at_the_configured_value() {
        let result = run_with(&tiny_config(), &[2, 4], 0.5);
        for point in &result.points {
            assert!(
                (point.pre_correction.median - 0.5).abs() < 0.15,
                "pre-correction median {} too far from 0.5",
                point.pre_correction.median
            );
        }
    }

    #[test]
    fn post_correction_probabilities_shift_towards_zero_with_more_errors() {
        let result = run_with(&tiny_config(), &[2, 6], 0.5);
        let few = &result.points[0].post_correction;
        let many = &result.points[1].post_correction;
        // The paper's observation: with more pre-correction errors, each
        // individual at-risk bit fails less often.
        assert!(many.median <= few.median + 0.05);
        assert!(many.mean < few.mean);
    }

    #[test]
    fn post_correction_probabilities_are_valid_and_spread() {
        let result = run_with(&tiny_config(), &[3], 0.5);
        let post = &result.points[0].post_correction;
        assert!(post.min >= 0.0 && post.max <= 1.0);
        // The distribution is wide (not concentrated at 0.5 like the
        // pre-correction one).
        assert!(post.max - post.min > 0.2);
        assert!(post.count > 0);
    }

    #[test]
    fn render_mentions_every_error_count() {
        let result = run_with(&tiny_config(), &[2, 3], 0.5);
        let rendered = result.render();
        assert!(rendered.contains("Fig. 4"));
        assert!(rendered.lines().count() >= 5);
    }
}
