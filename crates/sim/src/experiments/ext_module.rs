//! Extension 3: secondary-ECC word layout across a multi-chip rank (§6.3).
//!
//! The paper evaluates a single chip per access and notes that real systems
//! must decide how secondary ECC words line up with on-die ECC words when a
//! cache line is spread across several chips and beats. This experiment
//! quantifies that trade-off using [`harp_module`]:
//!
//! * analytically, the correction capability and parity overhead each layout
//!   requires for a set of representative rank geometries, assuming HARP's
//!   active phase has bounded every on-die word to one concurrent indirect
//!   error;
//! * empirically, the worst number of simultaneous post-correction errors a
//!   secondary ECC word actually sees when a configurable number of chips
//!   hold uncorrectable fault patterns at once — confirming the analytic
//!   bound is tight for the interleaved layout and loose only when fewer
//!   chips are faulty.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::analysis::FailureDependence;
use harp_ecc::HammingCode;
use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;
use harp_memsim::{AtRiskBit, FaultModel};
use harp_module::{MemoryModule, ModuleGeometry, SecondaryLayout};

use crate::config::EvaluationConfig;
use crate::report::TextTable;
use crate::runner::parallel_map;

/// One analytic row: a (geometry, layout) combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext3LayoutRow {
    /// Human-readable geometry description.
    pub geometry: String,
    /// Layout analysed.
    pub layout: SecondaryLayout,
    /// Secondary ECC words per access.
    pub secondary_words: usize,
    /// Correction capability each secondary word needs (on-die t = 1).
    pub required_capability: usize,
    /// First-order parity overhead in bits per cache line.
    pub parity_overhead_bits: usize,
}

/// One empirical row: worst errors per secondary word seen in simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext3StressRow {
    /// Number of chips holding an uncorrectable fault pattern.
    pub faulty_chips: usize,
    /// Trials simulated.
    pub trials: usize,
    /// Worst observed errors inside one secondary word, per layout (in
    /// [`SecondaryLayout::ALL`] order).
    pub worst_per_layout: Vec<usize>,
}

/// The full extension-3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext3ModuleResult {
    /// Analytic capability/overhead table.
    pub layouts: Vec<Ext3LayoutRow>,
    /// Stress-test rows for the DDR4-style rank.
    pub stress: Vec<Ext3StressRow>,
}

/// Runs the extension experiment.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run(config: &EvaluationConfig) -> Ext3ModuleResult {
    config.validate();
    let geometries = [
        ModuleGeometry::single_chip_64(),
        ModuleGeometry::lpddr4_x16(),
        ModuleGeometry::ddr5_style_subchannel(),
        ModuleGeometry::ddr4_style_rank(),
    ];
    let mut layouts = Vec::new();
    for geometry in geometries {
        for layout in SecondaryLayout::ALL {
            layouts.push(Ext3LayoutRow {
                geometry: geometry.to_string(),
                layout,
                secondary_words: layout.words_per_access(&geometry),
                required_capability: layout.required_capability(&geometry, 1),
                parity_overhead_bits: layout.parity_overhead_bits(&geometry, 1),
            });
        }
    }

    let geometry = ModuleGeometry::ddr4_style_rank();
    let trials = (config.words_total()).max(8);
    let faulty_counts = [1usize, 2, 4, 8];
    let stress = parallel_map(&faulty_counts, config.threads, |&faulty_chips| {
        let mut worst = vec![0usize; SecondaryLayout::ALL.len()];
        for trial in 0..trials {
            let seed = config.seed_for(trial, faulty_chips, 0x30D);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut module =
                MemoryModule::homogeneous(geometry, 1, seed ^ 0xC0DE).expect("module codes");
            for chip in 0..faulty_chips {
                // Two raw errors confined to the parity bits of each faulty
                // chip's word, chosen to provoke a data-bit miscorrection:
                // the scenario after HARP's active phase, where every
                // remaining post-correction error is an indirect error (at
                // most one per on-die ECC word).
                let pair = miscorrecting_parity_pair(module.chips()[chip].code());
                let at_risk = pair.iter().map(|&p| AtRiskBit::new(p, 1.0)).collect();
                module.set_fault_model(
                    chip,
                    0,
                    0,
                    FaultModel::new(at_risk, FailureDependence::DataIndependent),
                );
            }
            let line = BitVec::ones(geometry.line_bits());
            module.write(0, &line);
            let outcome = module.read(0, &mut rng);
            for (index, layout) in SecondaryLayout::ALL.iter().enumerate() {
                worst[index] =
                    worst[index].max(outcome.max_errors_in_secondary_word(&geometry, *layout));
            }
        }
        Ext3StressRow {
            faulty_chips,
            trials,
            worst_per_layout: worst,
        }
    });

    Ext3ModuleResult { layouts, stress }
}

/// Finds two parity positions of `code` whose simultaneous failure provokes a
/// miscorrection of a data bit (falling back to the first two parity
/// positions if no such pair exists for this code).
fn miscorrecting_parity_pair(code: &HammingCode) -> [usize; 2] {
    let k = code.data_len();
    for a in k..code.codeword_len() {
        for b in (a + 1)..code.codeword_len() {
            let syndrome = code.column(a) ^ code.column(b);
            if code.position_for_syndrome(&syndrome).is_some_and(|m| m < k) {
                return [a, b];
            }
        }
    }
    [k, k + 1]
}

impl Ext3ModuleResult {
    /// Renders the result as plain-text tables.
    pub fn render(&self) -> String {
        let mut analytic = TextTable::new([
            "geometry",
            "layout",
            "secondary words/access",
            "required capability",
            "parity overhead (bits/line)",
        ]);
        for row in &self.layouts {
            analytic.push_row([
                row.geometry.clone(),
                row.layout.to_string(),
                row.secondary_words.to_string(),
                row.required_capability.to_string(),
                row.parity_overhead_bits.to_string(),
            ]);
        }

        let mut header = vec!["faulty chips".to_owned(), "trials".to_owned()];
        header.extend(
            SecondaryLayout::ALL
                .iter()
                .map(|l| format!("worst in {l} word")),
        );
        let mut stress = TextTable::new(header);
        for row in &self.stress {
            let mut cells = vec![row.faulty_chips.to_string(), row.trials.to_string()];
            cells.extend(row.worst_per_layout.iter().map(usize::to_string));
            stress.push_row(cells);
        }

        format!(
            "Extension 3: secondary-ECC layout across a multi-chip rank (§6.3)\n\n\
             Required secondary-ECC strength per layout (on-die ECC t = 1):\n{}\n\
             Worst simultaneous errors per secondary word, DDR4-style rank stress test:\n{}",
            analytic.render(),
            stress.render()
        )
    }

    /// The analytic capability requirement for a layout on the DDR4-style
    /// rank (used by tests and the headline summary).
    pub fn ddr4_capability(&self, layout: SecondaryLayout) -> Option<usize> {
        self.layouts
            .iter()
            .find(|row| row.layout == layout && row.geometry.starts_with("8 chip"))
            .map(|row| row.required_capability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_capabilities_match_the_layout_structure() {
        let result = run(&EvaluationConfig::smoke());
        assert_eq!(
            result.ddr4_capability(SecondaryLayout::PerOnDieWord),
            Some(1)
        );
        assert_eq!(
            result.ddr4_capability(SecondaryLayout::PerCacheLine),
            Some(8)
        );
        assert_eq!(result.layouts.len(), 4 * SecondaryLayout::ALL.len());
    }

    #[test]
    fn observed_errors_never_exceed_the_analytic_bound() {
        // The stress test injects indirect errors only (raw errors confined
        // to parity bits), so the analytic per-layout capability is a hard
        // bound on what any secondary word observes.
        let result = run(&EvaluationConfig::smoke());
        for row in &result.stress {
            for (index, layout) in SecondaryLayout::ALL.iter().enumerate() {
                let bound = result.ddr4_capability(*layout).unwrap();
                assert!(
                    row.worst_per_layout[index] <= bound,
                    "{layout}: observed {} exceeds bound {bound}",
                    row.worst_per_layout[index]
                );
            }
        }
    }

    #[test]
    fn more_faulty_chips_stress_the_interleaved_layout_harder() {
        let result = run(&EvaluationConfig::smoke());
        let interleaved_index = SecondaryLayout::ALL
            .iter()
            .position(|l| *l == SecondaryLayout::PerCacheLine)
            .unwrap();
        let single = &result.stress[0];
        let all = result.stress.last().unwrap();
        assert!(
            all.worst_per_layout[interleaved_index] >= single.worst_per_layout[interleaved_index]
        );
        assert!(result.render().contains("Extension 3"));
    }
}
