//! Extension 3: secondary-ECC word layout across a multi-chip rank (§6.3).
//!
//! The paper evaluates a single chip per access and notes that real systems
//! must decide how secondary ECC words line up with on-die ECC words when a
//! cache line is spread across several chips and beats. This experiment
//! quantifies that trade-off using [`harp_module`]:
//!
//! * analytically, the correction capability and parity overhead each layout
//!   requires for a set of representative rank geometries, assuming HARP's
//!   active phase has bounded every on-die word to one concurrent indirect
//!   error;
//! * empirically, the worst number of simultaneous post-correction errors a
//!   secondary ECC word actually sees when a configurable number of chips
//!   hold uncorrectable fault patterns at once — for **all three on-die ECC
//!   families** (SEC Hamming, SEC-DED, DEC BCH) through the same generic
//!   [`MemoryModule`] burst read path. The analytic bound scales with the
//!   family's correction capability `t` (a bounded-distance decoder flips at
//!   most `t` positions per word), and the stress test confirms it is tight
//!   for the interleaved layout and loose only when fewer chips are faulty.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_bch::BchCode;
use harp_ecc::analysis::FailureDependence;
use harp_ecc::{ExtendedHammingCode, HammingCode, LinearBlockCode};
use harp_gf2::BitVec;
use harp_memsim::{AtRiskBit, FaultModel};
use harp_module::{MemoryModule, ModuleGeometry, SecondaryLayout};

use crate::config::EvaluationConfig;
use crate::report::TextTable;
use crate::runner::parallel_map;

/// One analytic row: a (geometry, layout) combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext3LayoutRow {
    /// Human-readable geometry description.
    pub geometry: String,
    /// Layout analysed.
    pub layout: SecondaryLayout,
    /// Secondary ECC words per access.
    pub secondary_words: usize,
    /// Correction capability each secondary word needs (on-die t = 1).
    pub required_capability: usize,
    /// First-order parity overhead in bits per cache line.
    pub parity_overhead_bits: usize,
}

/// One empirical row: worst errors per secondary word seen in simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext3StressRow {
    /// Number of chips holding an uncorrectable fault pattern.
    pub faulty_chips: usize,
    /// Trials simulated.
    pub trials: usize,
    /// Worst observed errors inside one secondary word, per layout (in
    /// [`SecondaryLayout::ALL`] order).
    pub worst_per_layout: Vec<usize>,
}

/// The stress-test sweep of one on-die ECC family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext3FamilyStress {
    /// Human-readable family description (e.g. `"SEC Hamming (71, 64)"`).
    pub family: String,
    /// The family's correction capability `t` — each on-die word contributes
    /// at most this many indirect errors, so the analytic per-layout bound is
    /// `required_capability(geometry, t)`.
    pub correction_capability: usize,
    /// One row per faulty-chip count.
    pub rows: Vec<Ext3StressRow>,
}

/// The full extension-3 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext3ModuleResult {
    /// Analytic capability/overhead table.
    pub layouts: Vec<Ext3LayoutRow>,
    /// Stress-test sweeps for the DDR4-style rank, one per on-die ECC family
    /// (SEC Hamming, SEC-DED, DEC BCH).
    pub stress: Vec<Ext3FamilyStress>,
}

/// Salt keying each `(trial, faulty_chips)` stress cell's RNG stream.
const MODULE_TRIAL_SALT: u64 = 0x30D;

/// Runs the extension experiment.
///
/// # Panics
///
/// Panics if the configuration is invalid or a code family cannot be
/// constructed for the geometry's on-die word size.
pub fn run(config: &EvaluationConfig) -> Ext3ModuleResult {
    config.validate();
    let geometries = [
        ModuleGeometry::single_chip_64(),
        ModuleGeometry::lpddr4_x16(),
        ModuleGeometry::ddr5_style_subchannel(),
        ModuleGeometry::ddr4_style_rank(),
    ];
    let mut layouts = Vec::new();
    for geometry in geometries {
        for layout in SecondaryLayout::ALL {
            layouts.push(Ext3LayoutRow {
                geometry: geometry.to_string(),
                layout,
                secondary_words: layout.words_per_access(&geometry),
                required_capability: layout.required_capability(&geometry, 1),
                parity_overhead_bits: layout.parity_overhead_bits(&geometry, 1),
            });
        }
    }

    let geometry = ModuleGeometry::ddr4_style_rank();
    let word_bits = geometry.ondie_word_bits();
    let bch = BchCode::dec(word_bits).expect("valid DEC BCH code");
    let stress = vec![
        stress_family(config, geometry, |seed| {
            HammingCode::random(word_bits, seed)
        }),
        stress_family(config, geometry, |seed| {
            ExtendedHammingCode::random(word_bits, seed)
        }),
        // The BCH construction is deterministic, so every chip shares the
        // code; the injected fault patterns still differ per trial seed.
        stress_family(config, geometry, |_seed| {
            Ok::<_, harp_bch::BchError>(bch.clone())
        }),
    ];

    Ext3ModuleResult { layouts, stress }
}

/// Runs the DDR4-rank stress sweep for one on-die ECC family through the
/// generic [`MemoryModule`] burst read path.
fn stress_family<C, E, F>(
    config: &EvaluationConfig,
    geometry: ModuleGeometry,
    make_code: F,
) -> Ext3FamilyStress
where
    C: LinearBlockCode + Clone + PartialEq + Send + Sync,
    E: std::fmt::Debug,
    F: Fn(u64) -> Result<C, E> + Sync,
{
    let reference = make_code(config.seed_for(0, 0, MODULE_TRIAL_SALT)).expect("family code");
    // Memoizes the subset search for deterministic families (every BCH chip
    // shares the one `BchCode::dec` code); randomly drawn codes miss and
    // search their own pattern.
    let reference_pattern = miscorrecting_parity_pattern(&reference);
    let trials = (config.words_total()).max(8);
    let faulty_counts = [1usize, 2, 4, 8];
    let rows = parallel_map(&faulty_counts, config.threads, |&faulty_chips| {
        let mut worst = vec![0usize; SecondaryLayout::ALL.len()];
        for trial in 0..trials {
            let seed = config.seed_for(trial, faulty_chips, MODULE_TRIAL_SALT);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut module =
                MemoryModule::heterogeneous_with(geometry, 1, seed ^ 0xC0DE, &make_code)
                    .expect("module codes");
            for chip in 0..faulty_chips {
                // Raw errors confined to the parity bits of each faulty
                // chip's word, chosen to provoke a data-bit miscorrection:
                // the scenario after HARP's active phase, where every
                // remaining post-correction error is an indirect error (at
                // most `t` per on-die ECC word).
                let code = module.chips()[chip].code();
                let pattern = if code == &reference {
                    reference_pattern.clone()
                } else {
                    miscorrecting_parity_pattern(code)
                };
                let at_risk = pattern.iter().map(|&p| AtRiskBit::new(p, 1.0)).collect();
                module.set_fault_model(
                    chip,
                    0,
                    0,
                    FaultModel::new(at_risk, FailureDependence::DataIndependent),
                );
            }
            let line = BitVec::ones(geometry.line_bits());
            module.write(0, &line);
            let outcome = module.read(0, &mut rng);
            for (index, layout) in SecondaryLayout::ALL.iter().enumerate() {
                worst[index] =
                    worst[index].max(outcome.max_errors_in_secondary_word(&geometry, *layout));
            }
        }
        Ext3StressRow {
            faulty_chips,
            trials,
            worst_per_layout: worst,
        }
    });
    Ext3FamilyStress {
        family: reference.description(),
        correction_capability: reference.correction_capability(),
        rows,
    }
}

/// Finds a small set of parity positions of `code` whose simultaneous
/// failure provokes a miscorrection of at least one *data* bit, generically
/// over the code family: subsets of `t + 1` (then `t + 2`) parity positions
/// are decoded as error patterns until one flips a data bit. Falls back to
/// the first `t + 1` parity positions if no such subset exists (the chip
/// then contributes detected-but-uncorrected parity errors only, which is
/// harmless to the stress bound).
fn miscorrecting_parity_pattern<C: LinearBlockCode>(code: &C) -> Vec<usize> {
    let k = code.data_len();
    let n = code.codeword_len();
    let t = code.correction_capability();
    for size in [t + 1, t + 2] {
        if size > n - k {
            continue;
        }
        let mut subset = vec![0usize; size];
        if search_parity_subset(code, &mut subset, 0, k) {
            return subset;
        }
    }
    (k..(k + t + 1).min(n)).collect()
}

/// Depth-first search over ascending parity-position subsets; fills
/// `subset[depth..]` starting at `from` and returns `true` once the decoded
/// error pattern flips a data bit.
fn search_parity_subset<C: LinearBlockCode>(
    code: &C,
    subset: &mut Vec<usize>,
    depth: usize,
    from: usize,
) -> bool {
    if depth == subset.len() {
        let error = BitVec::from_indices(code.codeword_len(), subset.iter().copied());
        let result = code.decode_error_pattern(&error);
        return result
            .outcome
            .corrected_positions()
            .iter()
            .any(|&position| position < code.data_len());
    }
    for position in from..code.codeword_len() {
        subset[depth] = position;
        if search_parity_subset(code, subset, depth + 1, position + 1) {
            return true;
        }
    }
    false
}

impl Ext3ModuleResult {
    /// Renders the result as plain-text tables.
    pub fn render(&self) -> String {
        let mut analytic = TextTable::new([
            "geometry",
            "layout",
            "secondary words/access",
            "required capability",
            "parity overhead (bits/line)",
        ]);
        for row in &self.layouts {
            analytic.push_row([
                row.geometry.clone(),
                row.layout.to_string(),
                row.secondary_words.to_string(),
                row.required_capability.to_string(),
                row.parity_overhead_bits.to_string(),
            ]);
        }

        let mut header = vec![
            "on-die ECC".to_owned(),
            "t".to_owned(),
            "faulty chips".to_owned(),
            "trials".to_owned(),
        ];
        header.extend(
            SecondaryLayout::ALL
                .iter()
                .map(|l| format!("worst in {l} word")),
        );
        let mut stress = TextTable::new(header);
        for family in &self.stress {
            for row in &family.rows {
                let mut cells = vec![
                    family.family.clone(),
                    family.correction_capability.to_string(),
                    row.faulty_chips.to_string(),
                    row.trials.to_string(),
                ];
                cells.extend(row.worst_per_layout.iter().map(usize::to_string));
                stress.push_row(cells);
            }
        }

        format!(
            "Extension 3: secondary-ECC layout across a multi-chip rank (§6.3)\n\n\
             Required secondary-ECC strength per layout (on-die ECC t = 1):\n{}\n\
             Worst simultaneous errors per secondary word, DDR4-style rank stress test\n\
             (per on-die ECC family; the analytic bound scales with the family's t):\n{}",
            analytic.render(),
            stress.render()
        )
    }

    /// The analytic capability requirement for a layout on the DDR4-style
    /// rank (used by tests and the headline summary).
    pub fn ddr4_capability(&self, layout: SecondaryLayout) -> Option<usize> {
        self.layouts
            .iter()
            .find(|row| row.layout == layout && row.geometry.starts_with("8 chip"))
            .map(|row| row.required_capability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_capabilities_match_the_layout_structure() {
        let result = run(&EvaluationConfig::smoke());
        assert_eq!(
            result.ddr4_capability(SecondaryLayout::PerOnDieWord),
            Some(1)
        );
        assert_eq!(
            result.ddr4_capability(SecondaryLayout::PerCacheLine),
            Some(8)
        );
        assert_eq!(result.layouts.len(), 4 * SecondaryLayout::ALL.len());
    }

    #[test]
    fn stress_covers_all_three_families() {
        let result = run(&EvaluationConfig::smoke());
        assert_eq!(result.stress.len(), 3);
        assert!(result.stress[0].family.contains("SEC Hamming"));
        assert!(result.stress[1].family.contains("SEC-DED"));
        assert!(result.stress[2].family.contains("DEC BCH"));
        assert_eq!(result.stress[0].correction_capability, 1);
        assert_eq!(result.stress[1].correction_capability, 1);
        assert_eq!(result.stress[2].correction_capability, 2);
    }

    #[test]
    fn observed_errors_never_exceed_the_analytic_bound_per_family() {
        // The stress test injects indirect errors only (raw errors confined
        // to parity bits), so each word holds at most `t` post-correction
        // errors and the per-layout capability at that `t` is a hard bound
        // on what any secondary word observes.
        let geometry = ModuleGeometry::ddr4_style_rank();
        let result = run(&EvaluationConfig::smoke());
        for family in &result.stress {
            for row in &family.rows {
                for (index, layout) in SecondaryLayout::ALL.iter().enumerate() {
                    let bound = layout.required_capability(&geometry, family.correction_capability);
                    assert!(
                        row.worst_per_layout[index] <= bound,
                        "{} / {layout}: observed {} exceeds bound {bound}",
                        family.family,
                        row.worst_per_layout[index]
                    );
                }
            }
        }
    }

    #[test]
    fn more_faulty_chips_stress_the_interleaved_layout_harder() {
        let result = run(&EvaluationConfig::smoke());
        let interleaved_index = SecondaryLayout::ALL
            .iter()
            .position(|l| *l == SecondaryLayout::PerCacheLine)
            .unwrap();
        for family in &result.stress {
            let single = &family.rows[0];
            let all = family.rows.last().unwrap();
            assert!(
                all.worst_per_layout[interleaved_index]
                    >= single.worst_per_layout[interleaved_index],
                "{}",
                family.family
            );
        }
        assert!(result.render().contains("Extension 3"));
    }

    #[test]
    fn miscorrecting_patterns_stay_inside_the_parity_region() {
        let hamming = HammingCode::random(64, 3).unwrap();
        let secded = ExtendedHammingCode::random(64, 3).unwrap();
        let bch = BchCode::dec(64).unwrap();
        fn check<C: LinearBlockCode>(code: &C) {
            let pattern = miscorrecting_parity_pattern(code);
            assert!(!pattern.is_empty());
            assert!(pattern.len() <= code.correction_capability() + 2);
            for &position in &pattern {
                assert!(
                    position >= code.data_len() && position < code.codeword_len(),
                    "{}: position {position} is not a parity bit",
                    code.description()
                );
            }
        }
        check(&hamming);
        check(&secded);
        check(&bch);
    }
}
