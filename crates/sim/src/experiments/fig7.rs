//! Fig. 7: the bootstrapping problem — how many profiling rounds each
//! profiler needs before it identifies its *first* direct error.
//!
//! Profilers that only observe post-correction errors (Naive, BEEP) must wait
//! until a specific uncorrectable combination of pre-correction errors
//! occurs; HARP observes raw errors directly and bootstraps almost
//! immediately. Words in which a profiler never identifies a direct error
//! within the simulated rounds are counted at the maximum round count,
//! mirroring the paper's conservative plotting convention.

use serde::{Deserialize, Serialize};

use harp_profiler::ProfilerKind;

use crate::config::EvaluationConfig;
use crate::experiments::fig6::PROFILERS;
use crate::experiments::sweep::{run_coverage_sweep, CoverageSweep};
use crate::report::{fixed, percent, TextTable};
use crate::stats::Summary;

/// Bootstrapping statistics for one (profiler, error count, probability)
/// cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Cell {
    /// Profiler evaluated.
    pub profiler: ProfilerKind,
    /// Number of pre-correction errors per ECC word.
    pub error_count: usize,
    /// Per-bit pre-correction error probability.
    pub probability: f64,
    /// Distribution of rounds-to-first-direct-error (1-based; words that
    /// never bootstrap count as the maximum simulated rounds).
    pub rounds_to_first_error: Summary,
    /// Fraction of words in which the profiler never identified a direct
    /// error within the simulated rounds.
    pub never_bootstrapped: f64,
}

/// The Fig. 7 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Maximum number of simulated rounds (the censoring value).
    pub max_rounds: usize,
    /// One cell per (profiler, error count, probability).
    pub cells: Vec<Fig7Cell>,
}

/// Runs the experiment (including the underlying coverage sweep).
pub fn run(config: &EvaluationConfig) -> Fig7Result {
    from_sweep(&run_coverage_sweep(config, &PROFILERS))
}

/// Aggregates an existing coverage sweep into the Fig. 7 cells.
pub fn from_sweep(sweep: &CoverageSweep) -> Fig7Result {
    let mut cells = Vec::new();
    for &profiler in &sweep.profilers {
        for &error_count in &sweep.error_counts {
            for &probability in &sweep.probabilities {
                let mut rounds = Vec::new();
                let mut never = 0usize;
                let mut total = 0usize;
                for e in sweep.cell(profiler, error_count, probability) {
                    total += 1;
                    match e.series.bootstrap_round {
                        Some(r) => rounds.push((r + 1) as f64),
                        None => {
                            never += 1;
                            rounds.push(sweep.rounds as f64);
                        }
                    }
                }
                cells.push(Fig7Cell {
                    profiler,
                    error_count,
                    probability,
                    rounds_to_first_error: Summary::of(&rounds),
                    never_bootstrapped: if total == 0 {
                        0.0
                    } else {
                        never as f64 / total as f64
                    },
                });
            }
        }
    }
    Fig7Result {
        max_rounds: sweep.rounds,
        cells,
    }
}

impl Fig7Result {
    /// Looks up one cell.
    pub fn cell(
        &self,
        profiler: ProfilerKind,
        error_count: usize,
        probability: f64,
    ) -> Option<&Fig7Cell> {
        self.cells.iter().find(|c| {
            c.profiler == profiler
                && c.error_count == error_count
                && (c.probability - probability).abs() < 1e-9
        })
    }

    /// Renders the distribution table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "profiler",
            "pre-corr errors",
            "per-bit p",
            "median rounds",
            "p99 rounds",
            "max rounds",
            "never (%)",
        ]);
        for c in &self.cells {
            table.push_row([
                c.profiler.to_string(),
                c.error_count.to_string(),
                percent(c.probability),
                fixed(c.rounds_to_first_error.median, 1),
                fixed(c.rounds_to_first_error.p99, 1),
                fixed(c.rounds_to_first_error.max, 1),
                percent(c.never_bootstrapped),
            ]);
        }
        format!(
            "Fig. 7: profiling rounds required to identify the first direct error (max {} rounds)\n{}",
            self.max_rounds,
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 3,
            rounds: 64,
            error_counts: vec![2, 4],
            probabilities: vec![0.5],
            ..EvaluationConfig::quick()
        }
    }

    #[test]
    fn harp_bootstraps_at_least_as_fast_as_baselines() {
        let result = run(&tiny_config());
        for &count in &[2usize, 4] {
            let harp = result.cell(ProfilerKind::HarpU, count, 0.5).unwrap();
            let naive = result.cell(ProfilerKind::Naive, count, 0.5).unwrap();
            let beep = result.cell(ProfilerKind::Beep, count, 0.5).unwrap();
            assert!(harp.rounds_to_first_error.median <= naive.rounds_to_first_error.median);
            assert!(harp.rounds_to_first_error.median <= beep.rounds_to_first_error.median);
            // HARP never fails to bootstrap (every word has >= 2 at-risk bits,
            // at least one of which is a data bit with overwhelming
            // probability; equality handles the rare all-parity word).
            assert!(harp.never_bootstrapped <= naive.never_bootstrapped + 1e-9);
        }
    }

    #[test]
    fn bootstrap_rounds_are_within_bounds() {
        let result = run(&tiny_config());
        for c in &result.cells {
            assert!(c.rounds_to_first_error.min >= 1.0);
            assert!(c.rounds_to_first_error.max <= result.max_rounds as f64);
            assert!((0.0..=1.0).contains(&c.never_bootstrapped));
        }
    }

    #[test]
    fn render_has_one_row_per_cell() {
        let result = run(&tiny_config());
        let rendered = result.render();
        // 3 profilers x 2 counts x 1 probability = 6 data rows (+2 header).
        assert_eq!(rendered.lines().count(), 2 + 1 + 6);
        assert!(rendered.contains("Fig. 7"));
    }
}
