//! Fig. 2: expected wasted storage capacity vs. raw bit error rate for
//! different repair granularities.
//!
//! This is the paper's motivation for bit-granularity repair: coarse repair
//! granularities waste almost the entire chip capacity at the error rates
//! HARP targets. The model is analytic (no Monte-Carlo required); see
//! [`harp_controller::granularity`].

use serde::{Deserialize, Serialize};

use harp_controller::granularity::{default_rber_sweep, wasted_storage_series};

use crate::report::{scientific, TextTable};

/// The repair granularities plotted in the paper's Fig. 2 (in bits).
pub const GRANULARITIES: [usize; 5] = [1024, 512, 64, 32, 1];

/// The Fig. 2 data: one wasted-storage curve per repair granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Result {
    /// `(granularity, [(rber, expected wasted fraction)])` series.
    pub series: Vec<(usize, Vec<(f64, f64)>)>,
}

/// Computes the Fig. 2 curves over the default RBER sweep.
pub fn run() -> Fig2Result {
    run_with_rbers(&default_rber_sweep())
}

/// Computes the Fig. 2 curves over a custom RBER sweep.
pub fn run_with_rbers(rbers: &[f64]) -> Fig2Result {
    Fig2Result {
        series: wasted_storage_series(rbers, &GRANULARITIES),
    }
}

impl Fig2Result {
    /// Renders the curves as a table with one row per RBER and one column per
    /// granularity.
    pub fn render(&self) -> String {
        let mut header = vec!["RBER".to_owned()];
        header.extend(self.series.iter().map(|(g, _)| format!("{g}-bit")));
        let mut table = TextTable::new(header);
        if let Some((_, first)) = self.series.first() {
            for (i, (rber, _)) in first.iter().enumerate() {
                let mut row = vec![scientific(*rber)];
                for (_, points) in &self.series {
                    row.push(format!("{:.4}", points[i].1));
                }
                table.push_row(row);
            }
        }
        format!(
            "Fig. 2: expected wasted storage (fraction of capacity) vs. RBER\n{}",
            table.render()
        )
    }

    /// The wasted-storage value for a given granularity at the RBER closest
    /// to `rber`.
    pub fn wasted_at(&self, granularity: usize, rber: f64) -> Option<f64> {
        let (_, points) = self.series.iter().find(|(g, _)| *g == granularity)?;
        points
            .iter()
            .min_by(|a, b| {
                (a.0 - rber)
                    .abs()
                    .partial_cmp(&(b.0 - rber).abs())
                    .expect("finite rbers")
            })
            .map(|p| p.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_has_one_series_per_granularity() {
        let result = run();
        assert_eq!(result.series.len(), GRANULARITIES.len());
        for (g, points) in &result.series {
            assert!(GRANULARITIES.contains(g));
            assert!(!points.is_empty());
        }
    }

    #[test]
    fn coarse_granularities_waste_more_at_moderate_rber() {
        let result = run();
        let fine = result.wasted_at(1, 1e-3).unwrap();
        let medium = result.wasted_at(64, 1e-3).unwrap();
        let coarse = result.wasted_at(1024, 1e-3).unwrap();
        assert_eq!(fine, 0.0);
        assert!(coarse > medium);
        assert!(medium > fine);
    }

    #[test]
    fn render_contains_all_granularities() {
        let rendered = run().render();
        for g in GRANULARITIES {
            assert!(rendered.contains(&format!("{g}-bit")));
        }
        assert!(rendered.contains("Fig. 2"));
    }

    #[test]
    fn custom_rber_sweep_is_respected() {
        let result = run_with_rbers(&[1e-4, 1e-2]);
        for (_, points) in &result.series {
            assert_eq!(points.len(), 2);
        }
        assert!(result.wasted_at(9999, 1e-4).is_none());
    }
}
