//! Fig. 10: end-to-end case study — the data-retention bit error rate of a
//! system with an ideal bit-repair mechanism, before and after reactive
//! profiling, as a function of active profiling rounds.
//!
//! For every (RBER, per-bit probability) configuration the experiment samples
//! a population of ECC words whose cells are at risk with probability RBER,
//! runs each profiler's active phase, and reports:
//!
//! * **BER before reactive profiling** — the fraction of data bits still at
//!   risk of post-correction error given everything the profiler knows;
//! * **BER after reactive profiling** — the fraction still at risk after the
//!   single-error-correcting secondary ECC is allowed to identify (and the
//!   repair mechanism to repair) bits that fail one at a time. A word only
//!   contributes here if more than one simultaneous post-correction error
//!   remains possible, i.e. the secondary ECC can be overwhelmed.
//!
//! The shapes to reproduce: HARP reaches zero post-reactive BER within a few
//! rounds, Naive eventually reaches zero but needs several times more rounds
//! (3.7× at p = 0.75 in the paper), and BEEP never reaches zero.

use serde::{Deserialize, Serialize};

use harp_profiler::{CoverageSeries, ProfilerKind};

use crate::config::EvaluationConfig;
use crate::experiments::sweep;
use crate::report::{percent, scientific, TextTable};
use crate::runner::parallel_map;
use crate::sample::{group_by_code, sample_retention_words, shard_groups};
use crate::stats::round_checkpoints;

/// Profilers compared in the case study.
pub const PROFILERS: [ProfilerKind; 4] = [
    ProfilerKind::Beep,
    ProfilerKind::HarpA,
    ProfilerKind::HarpU,
    ProfilerKind::Naive,
];

/// Default RBER sweep for the quick configuration.
///
/// The paper sweeps 1e-4 … 1e-8 over more than a million simulated words; a
/// laptop-scale population needs proportionally higher RBERs for any word to
/// contain at-risk bits at all. The values below keep the expected number of
/// at-risk bits per word in the same regime as the paper's evaluation while
/// remaining runnable in seconds (see EXPERIMENTS.md).
pub const DEFAULT_RBERS: [f64; 3] = [0.05, 0.02, 0.01];

/// BER series for one (profiler, RBER, probability) configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Series {
    /// Profiler evaluated.
    pub profiler: ProfilerKind,
    /// Raw bit error rate (probability that a cell is at risk).
    pub rber: f64,
    /// Per-bit pre-correction error probability of at-risk cells.
    pub probability: f64,
    /// `(round, BER before reactive profiling)`.
    pub ber_before: Vec<(usize, f64)>,
    /// `(round, BER after reactive profiling)`.
    pub ber_after: Vec<(usize, f64)>,
}

impl Fig10Series {
    /// First checkpoint round at which the post-reactive BER reaches zero.
    pub fn rounds_to_zero_after(&self) -> Option<usize> {
        self.ber_after
            .iter()
            .find(|(_, ber)| *ber == 0.0)
            .map(|(round, _)| *round)
    }
}

/// The Fig. 10 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10Result {
    /// All series.
    pub series: Vec<Fig10Series>,
    /// Number of data bits simulated per configuration (the BER denominator).
    pub total_data_bits: usize,
}

/// Runs the case study with the default RBER sweep.
pub fn run(config: &EvaluationConfig) -> Fig10Result {
    run_with_rbers(config, &DEFAULT_RBERS)
}

/// Runs the case study for specific RBERs.
pub fn run_with_rbers(config: &EvaluationConfig, rbers: &[f64]) -> Fig10Result {
    config.validate();
    let checkpoints = round_checkpoints(config.rounds);
    let mut series = Vec::new();
    let total_data_bits = config.words_total() * config.data_bits;
    for &rber in rbers {
        for &probability in &config.probabilities {
            let samples = sample_retention_words(config, rber, probability);
            // Per word and profiler: the per-round coverage series. Each
            // code group runs as one cell-batched campaign per profiler
            // (one burst scrubs the whole group every round), sharded
            // across worker threads by group.
            let groups = shard_groups(
                group_by_code(&samples),
                crate::runner::effective_threads(config.threads),
            );
            let per_group: Vec<Vec<Vec<CoverageSeries>>> =
                parallel_map(&groups, config.threads, |group| {
                    sweep::code_group_series(group, &PROFILERS, config.pattern, config.rounds)
                });
            let per_word: Vec<Vec<CoverageSeries>> = per_group.into_iter().flatten().collect();

            for (profiler_index, &profiler) in PROFILERS.iter().enumerate() {
                let mut ber_before = Vec::new();
                let mut ber_after = Vec::new();
                for &round in &checkpoints {
                    let mut missed_before = 0usize;
                    let mut missed_after = 0usize;
                    for word_series in &per_word {
                        let s = &word_series[profiler_index];
                        // Bits still unknown to the profiler at this round.
                        let direct_missing = ((1.0 - s.direct_coverage[round - 1])
                            * s.direct_truth_len as f64)
                            .round() as usize;
                        let indirect_missing = s.missed_indirect[round - 1];
                        let missing = direct_missing + indirect_missing;
                        missed_before += missing;
                        // The secondary ECC handles words where at most one
                        // simultaneous error remains possible; otherwise the
                        // remaining at-risk bits stay at risk.
                        if s.max_simultaneous[round - 1] > 1 {
                            missed_after += missing;
                        }
                    }
                    ber_before.push((round, missed_before as f64 / total_data_bits as f64));
                    ber_after.push((round, missed_after as f64 / total_data_bits as f64));
                }
                series.push(Fig10Series {
                    profiler,
                    rber,
                    probability,
                    ber_before,
                    ber_after,
                });
            }
        }
    }
    Fig10Result {
        series,
        total_data_bits,
    }
}

impl Fig10Result {
    /// Looks up one series.
    pub fn series_for(
        &self,
        profiler: ProfilerKind,
        rber: f64,
        probability: f64,
    ) -> Option<&Fig10Series> {
        self.series.iter().find(|s| {
            s.profiler == profiler
                && (s.rber - rber).abs() < 1e-12
                && (s.probability - probability).abs() < 1e-9
        })
    }

    /// Renders both panels (before / after reactive profiling).
    pub fn render(&self) -> String {
        let checkpoints: Vec<usize> = self
            .series
            .first()
            .map(|s| s.ber_before.iter().map(|(r, _)| *r).collect())
            .unwrap_or_default();
        let render_panel = |title: &str, select_after: bool| {
            let mut header = vec![
                "profiler".to_owned(),
                "RBER".to_owned(),
                "per-bit p".to_owned(),
            ];
            header.extend(checkpoints.iter().map(|r| format!("r{r}")));
            let mut table = TextTable::new(header);
            for s in &self.series {
                let points = if select_after {
                    &s.ber_after
                } else {
                    &s.ber_before
                };
                let mut row = vec![
                    s.profiler.to_string(),
                    scientific(s.rber),
                    percent(s.probability),
                ];
                row.extend(points.iter().map(|(_, ber)| scientific(*ber)));
                table.push_row(row);
            }
            format!("{title}\n{}", table.render())
        };
        format!(
            "{}\n{}",
            render_panel(
                "Fig. 10 (left): data-retention BER before reactive profiling",
                false
            ),
            render_panel(
                "Fig. 10 (right): data-retention BER after reactive profiling",
                true
            )
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 8,
            rounds: 64,
            probabilities: vec![0.75],
            ..EvaluationConfig::quick()
        }
    }

    #[test]
    fn harp_reaches_zero_ber_after_reactive_profiling() {
        let result = run_with_rbers(&tiny_config(), &[0.05]);
        let harp = result.series_for(ProfilerKind::HarpU, 0.05, 0.75).unwrap();
        assert_eq!(
            harp.ber_after.last().unwrap().1,
            0.0,
            "HARP must end with zero post-reactive BER"
        );
        assert!(harp.rounds_to_zero_after().is_some());
    }

    #[test]
    fn harp_is_at_least_as_fast_as_naive_to_zero_ber() {
        let result = run_with_rbers(&tiny_config(), &[0.05]);
        let harp = result
            .series_for(ProfilerKind::HarpU, 0.05, 0.75)
            .unwrap()
            .rounds_to_zero_after()
            .expect("HARP reaches zero");
        let naive = result
            .series_for(ProfilerKind::Naive, 0.05, 0.75)
            .unwrap()
            .rounds_to_zero_after();
        // When Naive never reached zero within the budget, HARP is
        // trivially faster.
        if let Some(naive_rounds) = naive {
            assert!(harp <= naive_rounds);
        }
    }

    #[test]
    fn ber_values_are_valid_rates_and_non_increasing() {
        let result = run_with_rbers(&tiny_config(), &[0.05]);
        assert!(result.total_data_bits > 0);
        for s in &result.series {
            for window in s.ber_before.windows(2) {
                assert!(window[1].1 <= window[0].1 + 1e-12);
            }
            for (_, ber) in s.ber_before.iter().chain(&s.ber_after) {
                assert!((0.0..=1.0).contains(ber));
            }
        }
    }

    #[test]
    fn harp_a_before_reactive_ber_is_no_worse_than_harp_u() {
        let result = run_with_rbers(&tiny_config(), &[0.05]);
        let harp_a = result.series_for(ProfilerKind::HarpA, 0.05, 0.75).unwrap();
        let harp_u = result.series_for(ProfilerKind::HarpU, 0.05, 0.75).unwrap();
        let last = harp_a.ber_before.len() - 1;
        assert!(harp_a.ber_before[last].1 <= harp_u.ber_before[last].1 + 1e-12);
    }

    #[test]
    fn render_contains_both_panels() {
        let rendered = run_with_rbers(&tiny_config(), &[0.05]).render();
        assert!(rendered.contains("before reactive profiling"));
        assert!(rendered.contains("after reactive profiling"));
    }
}
