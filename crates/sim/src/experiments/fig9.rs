//! Fig. 9: the correction capability the secondary ECC needs in order to
//! safely perform reactive profiling after a given amount of active
//! profiling.
//!
//! * **Fig. 9a** — normalized histogram of the *maximum number of
//!   simultaneous post-correction errors* still possible per ECC word after
//!   the full active-profiling budget (given that every bit the profiler
//!   knows about is repaired).
//! * **Fig. 9b** — how many active-profiling rounds are needed until, for the
//!   99th-percentile ECC word, no more than `x` simultaneous post-correction
//!   errors remain possible.
//!
//! The paper's headline comparison (HARP reaches the ≤1-error state in
//! 20.6–62.1% of the rounds Naive needs, for 2–5 pre-correction errors at
//! p = 0.5) is derived from the Fig. 9b data; see
//! [`crate::experiments::headline`].

use serde::{Deserialize, Serialize};

use harp_profiler::ProfilerKind;

use crate::config::EvaluationConfig;
use crate::experiments::sweep::{run_coverage_sweep, CoverageSweep};
use crate::report::{fixed, percent, TextTable};
use crate::stats::{percentile, Histogram};

/// Profilers compared in Fig. 9.
pub const PROFILERS: [ProfilerKind; 4] = [
    ProfilerKind::Naive,
    ProfilerKind::Beep,
    ProfilerKind::HarpU,
    ProfilerKind::HarpA,
];

/// Largest simultaneous-error count tracked in the histogram (the paper's
/// x-axes run to 6).
pub const MAX_SIMULTANEOUS_TRACKED: usize = 6;

/// One cell of the Fig. 9 evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Cell {
    /// Profiler evaluated.
    pub profiler: ProfilerKind,
    /// Number of pre-correction errors per ECC word.
    pub error_count: usize,
    /// Per-bit pre-correction error probability.
    pub probability: f64,
    /// Fig. 9a: histogram (over ECC words) of the maximum number of
    /// simultaneous post-correction errors possible after all profiling
    /// rounds.
    pub final_histogram: Histogram,
    /// Fig. 9b: for each target `x` (index 1..=MAX_SIMULTANEOUS_TRACKED), the
    /// number of rounds after which the 99th-percentile word has at most `x`
    /// simultaneous errors possible. `None` means the target was not reached
    /// within the simulated rounds.
    pub rounds_to_limit_p99: Vec<Option<usize>>,
}

/// The Fig. 9 reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Maximum number of simulated rounds.
    pub max_rounds: usize,
    /// One cell per (profiler, error count, probability).
    pub cells: Vec<Fig9Cell>,
}

/// Runs the experiment (including the underlying coverage sweep).
pub fn run(config: &EvaluationConfig) -> Fig9Result {
    from_sweep(&run_coverage_sweep(config, &PROFILERS))
}

/// Aggregates an existing coverage sweep into the Fig. 9 cells.
pub fn from_sweep(sweep: &CoverageSweep) -> Fig9Result {
    let mut cells = Vec::new();
    for &profiler in &sweep.profilers {
        for &error_count in &sweep.error_counts {
            for &probability in &sweep.probabilities {
                let evaluations: Vec<_> = sweep.cell(profiler, error_count, probability).collect();
                let finals: Vec<usize> = evaluations
                    .iter()
                    .map(|e| *e.series.max_simultaneous.last().unwrap_or(&0))
                    .collect();
                let final_histogram = Histogram::of(&finals, MAX_SIMULTANEOUS_TRACKED);

                let mut rounds_to_limit = Vec::new();
                for limit in 1..=MAX_SIMULTANEOUS_TRACKED {
                    // Per word: first round (1-based) at which at most `limit`
                    // simultaneous errors remain possible; censored at
                    // rounds + 1 when never reached.
                    let per_word: Vec<f64> = evaluations
                        .iter()
                        .map(|e| {
                            e.series
                                .rounds_until_max_simultaneous_at_most(limit)
                                .map(|r| (r + 1) as f64)
                                .unwrap_or((sweep.rounds + 1) as f64)
                        })
                        .collect();
                    // An empty evaluation set has no 99th-percentile word
                    // (and never reaches the limit), matching the None arm.
                    rounds_to_limit.push(match percentile(&per_word, 99.0) {
                        Some(p99) if p99 <= sweep.rounds as f64 => Some(p99.ceil() as usize),
                        _ => None,
                    });
                }
                cells.push(Fig9Cell {
                    profiler,
                    error_count,
                    probability,
                    final_histogram,
                    rounds_to_limit_p99: rounds_to_limit,
                });
            }
        }
    }
    Fig9Result {
        max_rounds: sweep.rounds,
        cells,
    }
}

impl Fig9Result {
    /// Looks up one cell.
    pub fn cell(
        &self,
        profiler: ProfilerKind,
        error_count: usize,
        probability: f64,
    ) -> Option<&Fig9Cell> {
        self.cells.iter().find(|c| {
            c.profiler == profiler
                && c.error_count == error_count
                && (c.probability - probability).abs() < 1e-9
        })
    }

    /// Convenience accessor for the paper's headline metric: the number of
    /// rounds until at most one simultaneous error remains possible for the
    /// 99th-percentile word.
    pub fn rounds_to_single_error_p99(
        &self,
        profiler: ProfilerKind,
        error_count: usize,
        probability: f64,
    ) -> Option<usize> {
        self.cell(profiler, error_count, probability)
            .and_then(|c| c.rounds_to_limit_p99.first().copied().flatten())
    }

    /// Renders the Fig. 9a histogram table.
    pub fn render_histogram(&self) -> String {
        let mut header = vec![
            "profiler".to_owned(),
            "pre-corr errors".to_owned(),
            "per-bit p".to_owned(),
        ];
        header.extend((0..=MAX_SIMULTANEOUS_TRACKED).map(|x| format!("={x}")));
        let mut table = TextTable::new(header);
        for c in &self.cells {
            let mut row = vec![
                c.profiler.to_string(),
                c.error_count.to_string(),
                percent(c.probability),
            ];
            row.extend(c.final_histogram.fractions.iter().map(|f| fixed(*f, 3)));
            table.push_row(row);
        }
        format!(
            "Fig. 9a: fraction of ECC words whose worst case is exactly x simultaneous post-correction errors after {} rounds\n{}",
            self.max_rounds,
            table.render()
        )
    }

    /// Renders the Fig. 9b rounds-to-limit table.
    pub fn render_rounds(&self) -> String {
        let mut header = vec![
            "profiler".to_owned(),
            "pre-corr errors".to_owned(),
            "per-bit p".to_owned(),
        ];
        header.extend((1..=MAX_SIMULTANEOUS_TRACKED).map(|x| format!("<={x}")));
        let mut table = TextTable::new(header);
        for c in &self.cells {
            let mut row = vec![
                c.profiler.to_string(),
                c.error_count.to_string(),
                percent(c.probability),
            ];
            row.extend(c.rounds_to_limit_p99.iter().map(|r| match r {
                Some(rounds) => rounds.to_string(),
                None => format!(">{}", self.max_rounds),
            }));
            table.push_row(row);
        }
        format!(
            "Fig. 9b: profiling rounds until the 99th-percentile ECC word can exhibit at most x simultaneous post-correction errors\n{}",
            table.render()
        )
    }

    /// Renders both panels.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.render_histogram(), self.render_rounds())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 4,
            rounds: 64,
            error_counts: vec![3],
            probabilities: vec![0.5],
            ..EvaluationConfig::quick()
        }
    }

    #[test]
    fn harp_needs_only_single_error_correction_after_profiling() {
        let result = run(&tiny_config());
        for kind in [ProfilerKind::HarpU, ProfilerKind::HarpA] {
            let cell = result.cell(kind, 3, 0.5).unwrap();
            // After the full active phase HARP has found all direct bits, so
            // no word can exhibit more than one simultaneous error.
            let beyond_one: f64 = cell.final_histogram.fractions[2..].iter().sum();
            assert!(
                beyond_one < 1e-9,
                "{kind}: {beyond_one} of words still allow multi-bit errors"
            );
        }
    }

    #[test]
    fn harp_reaches_the_single_error_state_at_least_as_fast_as_naive() {
        let result = run(&tiny_config());
        let harp = result
            .rounds_to_single_error_p99(ProfilerKind::HarpU, 3, 0.5)
            .expect("HARP reaches the single-error state");
        // When Naive never got there, HARP is trivially faster.
        if let Some(naive) = result.rounds_to_single_error_p99(ProfilerKind::Naive, 3, 0.5) {
            assert!(harp <= naive, "HARP {harp} vs Naive {naive}");
        }
    }

    #[test]
    fn histograms_are_normalized() {
        let result = run(&tiny_config());
        for c in &result.cells {
            let total: f64 = c.final_histogram.fractions.iter().sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert_eq!(c.rounds_to_limit_p99.len(), MAX_SIMULTANEOUS_TRACKED);
        }
    }

    #[test]
    fn rounds_to_limit_is_monotone_in_the_limit() {
        // Allowing more simultaneous errors can only be reached earlier.
        let result = run(&tiny_config());
        for c in &result.cells {
            // rounds_to_limit_p99[0] targets <=1 error (hardest); later
            // entries allow more simultaneous errors and can only be reached
            // earlier or at the same round.
            let mut last = usize::MAX;
            for r in &c.rounds_to_limit_p99 {
                let value = r.unwrap_or(result.max_rounds + 1);
                assert!(value <= last);
                last = value;
            }
        }
    }

    #[test]
    fn render_produces_both_panels() {
        let rendered = run(&tiny_config()).render();
        assert!(rendered.contains("Fig. 9a"));
        assert!(rendered.contains("Fig. 9b"));
    }
}
