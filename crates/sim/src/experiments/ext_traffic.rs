//! Extension 7: live-traffic co-scheduling — SLO curves for demand reads
//! sharing a channel with background scrub and online repair updates.
//!
//! The paper evaluates profiling in closed rounds; this extension asks what
//! its reactive phase costs — and buys — under live load. The sweep crosses
//! three axes through [`crate::traffic::run_traffic`]'s deterministic
//! event clock:
//!
//! * **scrub aggressiveness** — how often a scrub burst occupies the
//!   channel (aggressive / balanced / lazy intervals);
//! * **on-die ECC family** — SEC Hamming, SEC-DED, DEC BCH, the same
//!   lineup as the other extensions;
//! * **repair mechanism** — identifications applied inline, deferred by an
//!   out-of-band update latency, or dropped entirely (profiling observes
//!   but never repairs).
//!
//! Each cell reports the demand-read latency percentiles (the SLO curve),
//! the escape count, and the time to full scrub coverage. The expected
//! trends: aggressive scrub finds at-risk bits sooner but fattens the
//! demand latency tail; applying repair updates strictly reduces escapes
//! relative to dropping them; stronger codes escape less.

use serde::{Deserialize, Serialize};

use harp_bch::BchCode;
use harp_ecc::{ExtendedHammingCode, HammingCode};

use crate::config::EvaluationConfig;
use crate::report::{fixed, percent, TextTable};
use crate::runner::parallel_map;
use crate::traffic::{run_traffic, TrafficConfig, TrafficReport};

/// Scrub aggressiveness levels swept, as (label, ticks between bursts).
pub const SCRUB_POLICIES: [(&str, u64); 3] =
    [("aggressive", 128), ("balanced", 512), ("lazy", 2048)];

/// Repair-update policies swept, as (label, update latency).
pub const REPAIR_POLICIES: [(&str, Option<u64>); 3] = [
    ("inline", Some(0)),
    ("deferred", Some(256)),
    ("dropped", None),
];

/// One (family, scrub policy, repair policy) cell of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtTrafficCell {
    /// On-die ECC family label.
    pub family: String,
    /// Scrub-aggressiveness label.
    pub scrub_policy: String,
    /// Ticks between scrub bursts for this cell.
    pub scrub_interval: u64,
    /// Repair-mechanism label.
    pub repair_policy: String,
    /// The full traffic report for this cell.
    pub report: TrafficReport,
}

/// The full extension-7 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtTrafficResult {
    /// Virtual-time horizon every cell ran to.
    pub horizon: u64,
    /// Words per simulated chip.
    pub words: usize,
    /// One cell per (family, scrub policy, repair policy) triple.
    pub cells: Vec<ExtTrafficCell>,
}

/// Runs the extension experiment with the default traffic shape.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run(config: &EvaluationConfig) -> ExtTrafficResult {
    run_with_base(config, &base_traffic(config))
}

/// The default per-cell traffic shape derived from an evaluation config.
pub fn base_traffic(config: &EvaluationConfig) -> TrafficConfig {
    TrafficConfig {
        words: (config.words_total() * 4).clamp(64, 1024),
        data_bits: config.data_bits,
        rber: 0.02,
        seed: config.seed_for(0, 0, 0x7AF1C),
        ..TrafficConfig::quick()
    }
}

/// Runs the sweep around an explicit base traffic shape (scrub interval,
/// repair latency, and seed are overridden per cell).
///
/// # Panics
///
/// Panics if either configuration is invalid.
pub fn run_with_base(config: &EvaluationConfig, base: &TrafficConfig) -> ExtTrafficResult {
    config.validate();
    base.validate();
    let families = ["SEC Hamming", "SEC-DED", "DEC BCH"];
    let tasks: Vec<(usize, usize, usize)> = (0..families.len())
        .flat_map(|family| {
            (0..SCRUB_POLICIES.len()).flat_map(move |scrub| {
                (0..REPAIR_POLICIES.len()).map(move |repair| (family, scrub, repair))
            })
        })
        .collect();
    let cells = parallel_map(&tasks, config.threads, |&(family, scrub, repair)| {
        let (scrub_label, scrub_interval) = SCRUB_POLICIES[scrub];
        let (repair_label, repair_latency) = REPAIR_POLICIES[repair];
        let cell_config = TrafficConfig {
            scrub_interval,
            repair_update_latency: repair_latency,
            // Each family rolls its own fault population; scrub and repair
            // policies see the *same* population so their curves compare.
            seed: base.seed ^ ((family as u64 + 1) << 24),
            ..base.clone()
        };
        let code_seed = config.seed_for(family, 0, 0x7F1C);
        let report = match family {
            0 => run_traffic(
                &cell_config,
                HammingCode::random(base.data_bits, code_seed).expect("valid SEC Hamming code"),
            ),
            1 => run_traffic(
                &cell_config,
                ExtendedHammingCode::random(base.data_bits, code_seed).expect("valid SEC-DED code"),
            ),
            _ => run_traffic(
                &cell_config,
                BchCode::dec(base.data_bits).expect("valid DEC BCH code"),
            ),
        };
        ExtTrafficCell {
            family: families[family].to_owned(),
            scrub_policy: scrub_label.to_owned(),
            scrub_interval,
            repair_policy: repair_label.to_owned(),
            report,
        }
    });
    ExtTrafficResult {
        horizon: base.horizon,
        words: base.words,
        cells,
    }
}

impl ExtTrafficResult {
    /// Cells matching a (family prefix, scrub label, repair label) filter;
    /// empty strings match everything.
    pub fn cells_for(&self, family: &str, scrub: &str, repair: &str) -> Vec<&ExtTrafficCell> {
        self.cells
            .iter()
            .filter(|c| {
                c.family.starts_with(family)
                    && c.scrub_policy.starts_with(scrub)
                    && c.repair_policy.starts_with(repair)
            })
            .collect()
    }

    /// Renders the SLO table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "on-die ECC",
            "scrub",
            "repair",
            "reads",
            "p50",
            "p95",
            "p99",
            "p99.9",
            "escapes",
            "escape rate",
            "full scrub at",
        ]);
        let latency = |p: Option<f64>| p.map_or_else(|| "n/a".to_owned(), |v| fixed(v, 1));
        for cell in &self.cells {
            let r = &cell.report;
            table.push_row([
                cell.family.clone(),
                format!("{} ({})", cell.scrub_policy, cell.scrub_interval),
                cell.repair_policy.clone(),
                r.demand_reads.to_string(),
                latency(r.latency.p50),
                latency(r.latency.p95),
                latency(r.latency.p99),
                latency(r.latency.p999),
                r.escapes.to_string(),
                percent(r.escape_rate),
                r.time_to_full_coverage
                    .map_or_else(|| format!(">{}", self.horizon), |t| t.to_string()),
            ]);
        }
        format!(
            "Extension 7: demand-read SLOs vs. scrub aggressiveness, code family, and repair \
             mechanism ({} words, horizon {} ticks)\n{}",
            self.words,
            self.horizon,
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_result() -> ExtTrafficResult {
        let config = EvaluationConfig::smoke();
        run_with_base(
            &config,
            &TrafficConfig {
                rber: 0.02,
                ..TrafficConfig::smoke()
            },
        )
    }

    #[test]
    fn the_full_grid_is_swept() {
        let result = smoke_result();
        assert_eq!(result.cells.len(), 3 * 3 * 3);
        for family in ["SEC Hamming", "SEC-DED", "DEC BCH"] {
            for (scrub, _) in SCRUB_POLICIES {
                for (repair, _) in REPAIR_POLICIES {
                    assert_eq!(result.cells_for(family, scrub, repair).len(), 1);
                }
            }
        }
        assert!(result.render().contains("Extension 7"));
    }

    #[test]
    fn percentiles_are_ordered_within_each_cell() {
        for cell in &smoke_result().cells {
            let l = &cell.report.latency;
            if l.count == 0 {
                continue;
            }
            assert!(l.p50 <= l.p95, "{}: {:?}", cell.family, l);
            assert!(l.p95 <= l.p99, "{}: {:?}", cell.family, l);
            assert!(l.p99 <= l.p999, "{}: {:?}", cell.family, l);
        }
    }

    #[test]
    fn applying_repairs_never_escapes_more_than_dropping_them() {
        let result = smoke_result();
        for family in ["SEC Hamming", "SEC-DED", "DEC BCH"] {
            for (scrub, _) in SCRUB_POLICIES {
                let inline = result.cells_for(family, scrub, "inline")[0];
                let dropped = result.cells_for(family, scrub, "dropped")[0];
                assert!(
                    inline.report.escapes <= dropped.report.escapes,
                    "{family}/{scrub}: inline {} vs dropped {}",
                    inline.report.escapes,
                    dropped.report.escapes
                );
            }
        }
    }

    #[test]
    fn aggressive_scrub_reaches_full_coverage_no_later_than_lazy() {
        let result = smoke_result();
        for family in ["SEC Hamming", "SEC-DED", "DEC BCH"] {
            for (repair, _) in REPAIR_POLICIES {
                let fast = result.cells_for(family, "aggressive", repair)[0]
                    .report
                    .time_to_full_coverage;
                let slow = result.cells_for(family, "lazy", repair)[0]
                    .report
                    .time_to_full_coverage;
                match (fast, slow) {
                    (Some(fast), Some(slow)) => assert!(fast <= slow, "{family}/{repair}"),
                    // Lazy may never finish within the horizon; aggressive
                    // finishing while lazy did not is the expected order.
                    (Some(_), None) => {}
                    (None, slow) => assert!(slow.is_none(), "{family}/{repair}"),
                }
            }
        }
    }
}
