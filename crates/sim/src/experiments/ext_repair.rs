//! Extension 4: repair-capacity planning for the mechanisms of Table 1.
//!
//! The paper's case study assumes an *ideal* repair mechanism with unlimited
//! spare capacity so that profiler coverage is the only variable. Real
//! mechanisms (Table 1) have finite capacity at a fixed granularity. Given
//! the profile a full-coverage profiler such as HARP would hand over — every
//! data bit at risk of post-correction error, i.e. the word's
//! [`ErrorSpace::post_correction_at_risk`] set: direct at-risk bits plus
//! every achievable miscorrection target — this experiment asks how much
//! repair capacity each mechanism actually needs at a given raw bit error
//! rate, and how many at-risk bits are left exposed when the capacity is
//! fixed at realistic values:
//!
//! * ECP-style per-word pointer entries (2 and 6 entries per 64-bit word);
//! * an ArchShield-style spare region sized at 1% of all words;
//! * ideal bit-granularity repair as the reference point.
//!
//! The sweep runs for **all three on-die ECC families** (SEC Hamming,
//! SEC-DED, DEC BCH) through the same generic [`ErrorSpace`] analysis:
//! stronger codes absorb more raw-error combinations and miscorrect less, so
//! the profile a mechanism must absorb — and therefore the capacity it needs
//! — shrinks from Hamming to SEC-DED to BCH.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_bch::BchCode;
use harp_controller::{ArchShieldRepair, BitRepairMechanism, EcpRepair, ErrorProfile};
use harp_ecc::analysis::FailureDependence;
use harp_ecc::{ErrorSpace, ExtendedHammingCode, HammingCode, LinearBlockCode};

use crate::config::EvaluationConfig;
use crate::report::{fixed, scientific, TextTable};
use crate::runner::parallel_map;

/// The raw bit error rates swept by default.
pub const DEFAULT_RBERS: [f64; 3] = [1e-4, 1e-3, 1e-2];

/// Number of independently drawn codes each family's word population cycles
/// through (chips ship one proprietary code each; a population mixes a few).
const CODES_PER_FAMILY: usize = 4;

/// Capacity outcome of one mechanism at one RBER.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext4MechanismRow {
    /// On-die ECC family whose post-correction error space was profiled.
    pub family: String,
    /// Mechanism label.
    pub mechanism: String,
    /// Raw bit error rate of the profiled population.
    pub rber: f64,
    /// Number of profiled at-risk bits across the population.
    pub profiled_bits: usize,
    /// Spare/metadata overhead the mechanism allocates, in bits.
    pub overhead_bits: usize,
    /// At-risk bits (ECP / bit repair) or words (ArchShield) left uncovered.
    pub uncovered: usize,
    /// Uncovered entities as a fraction of profiled bits (or faulty words).
    pub uncovered_fraction: f64,
}

/// The full extension-4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext4RepairResult {
    /// Number of on-die ECC words in the simulated population (per family).
    pub words: usize,
    /// One row per (family, mechanism, RBER) triple.
    pub rows: Vec<Ext4MechanismRow>,
}

/// Runs the extension experiment over the default RBER sweep.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run(config: &EvaluationConfig) -> Ext4RepairResult {
    run_with_rbers(config, &DEFAULT_RBERS)
}

/// Runs the extension experiment for explicit raw bit error rates.
///
/// # Panics
///
/// Panics if the configuration is invalid, any RBER is outside `[0, 1]`, or
/// a code family cannot be constructed for the configured dataword length.
pub fn run_with_rbers(config: &EvaluationConfig, rbers: &[f64]) -> Ext4RepairResult {
    config.validate();
    for &rber in rbers {
        assert!((0.0..=1.0).contains(&rber), "RBER {rber} outside [0, 1]");
    }
    // A population large enough for the smallest default RBER to produce
    // at-risk bits at quick scale.
    let words = (config.words_total() * 256).max(4096);
    let word_bits = config.data_bits;

    let families = build_families(config);
    // One task per (family, RBER) pair: profile construction dominates the
    // runtime, and every pair is independent.
    let tasks: Vec<(usize, f64)> = (0..families.len())
        .flat_map(|family| rbers.iter().map(move |&rber| (family, rber)))
        .collect();
    let rows_per_task = parallel_map(&tasks, config.threads, |&(family_index, rber)| {
        let (family, codes) = &families[family_index];
        let profile = family_profile(config, codes, words, rber);
        mechanism_rows(family, &profile, words, word_bits, rber)
    });

    Ext4RepairResult {
        words,
        rows: rows_per_task.into_iter().flatten().collect(),
    }
}

/// Builds the three code families' code sets (a few independently drawn
/// codes each; the deterministic BCH construction yields one shared code).
#[allow(clippy::type_complexity)]
fn build_families(
    config: &EvaluationConfig,
) -> Vec<(String, Vec<Box<dyn LinearBlockCode + Send + Sync>>)> {
    let word_bits = config.data_bits;
    let hamming: Vec<Box<dyn LinearBlockCode + Send + Sync>> = (0..CODES_PER_FAMILY)
        .map(|index| {
            Box::new(
                HammingCode::random(word_bits, config.seed_for(index, 0, 0xE47))
                    .expect("valid SEC Hamming code"),
            ) as Box<dyn LinearBlockCode + Send + Sync>
        })
        .collect();
    let secded: Vec<Box<dyn LinearBlockCode + Send + Sync>> = (0..CODES_PER_FAMILY)
        .map(|index| {
            Box::new(
                ExtendedHammingCode::random(word_bits, config.seed_for(index, 1, 0xE47))
                    .expect("valid SEC-DED code"),
            ) as Box<dyn LinearBlockCode + Send + Sync>
        })
        .collect();
    let bch: Vec<Box<dyn LinearBlockCode + Send + Sync>> = vec![Box::new(
        BchCode::dec(word_bits).expect("valid DEC BCH code"),
    )];
    [hamming, secded, bch]
        .into_iter()
        .map(|codes| (codes[0].description(), codes))
        .collect()
}

/// The profile a full-coverage profiler would hand to the repair mechanism
/// for one family: each word samples at-risk cells over its code's *whole
/// codeword* with probability `rber`, and the word's exact post-correction
/// error space (direct bits plus achievable miscorrection targets) is
/// profiled.
/// Salt keying the profile RNG stream by the RBER sweep point (the raw
/// bit pattern keeps arbitrarily close RBERs on distinct streams).
fn rber_salt(rber: f64) -> u64 {
    rber.to_bits()
}

fn family_profile(
    config: &EvaluationConfig,
    codes: &[Box<dyn LinearBlockCode + Send + Sync>],
    words: usize,
    rber: f64,
) -> ErrorProfile {
    let mut rng = ChaCha8Rng::seed_from_u64(config.base_seed ^ rber_salt(rber));
    let mut profile = ErrorProfile::new();
    for word in 0..words {
        let code = codes[word % codes.len()].as_ref();
        let mut at_risk = Vec::new();
        for position in 0..code.codeword_len() {
            if rng.gen_bool(rber) {
                at_risk.push(position);
            }
        }
        if at_risk.is_empty() {
            continue;
        }
        // Exhaustive ground truth is exponential in the at-risk count; clamp
        // pathological samples (essentially impossible at the swept RBERs).
        at_risk.truncate(ErrorSpace::MAX_AT_RISK_BITS);
        let space = ErrorSpace::enumerate(code, &at_risk, FailureDependence::TrueCell);
        profile.mark_all(word, space.post_correction_at_risk().iter().copied());
    }
    profile
}

/// Loads one family's profile into every mechanism and collects the rows.
fn mechanism_rows(
    family: &str,
    profile: &ErrorProfile,
    words: usize,
    word_bits: usize,
    rber: f64,
) -> Vec<Ext4MechanismRow> {
    let profiled_bits = profile.total_bits();
    let faulty_words = (0..words).filter(|&w| profile.count_for(w) > 0).count();
    let mut rows = Vec::new();

    // Ideal bit-granularity repair: one spare bit per profiled bit.
    let bit_repair = BitRepairMechanism::new(profile.clone());
    rows.push(Ext4MechanismRow {
        family: family.to_owned(),
        mechanism: "ideal bit repair".to_owned(),
        rber,
        profiled_bits,
        overhead_bits: bit_repair.spare_bits_required(),
        uncovered: 0,
        uncovered_fraction: 0.0,
    });

    // ECP-style pointer entries per word.
    for entries in [2usize, 6] {
        let mut ecp = EcpRepair::new(word_bits, entries);
        let uncovered = ecp.load_profile(profile);
        rows.push(Ext4MechanismRow {
            family: family.to_owned(),
            mechanism: format!("ECP-{entries} (per {word_bits}-bit word)"),
            rber,
            profiled_bits,
            overhead_bits: ecp.overhead_bits(),
            uncovered,
            uncovered_fraction: if profiled_bits == 0 {
                0.0
            } else {
                uncovered as f64 / profiled_bits as f64
            },
        });
    }

    // ArchShield-style spare region: 1% of all words.
    let spare_words = (words / 100).max(1);
    let mut arch = ArchShieldRepair::new(spare_words);
    let unprotected = arch.load_profile(profile);
    rows.push(Ext4MechanismRow {
        family: family.to_owned(),
        mechanism: format!("ArchShield ({spare_words} spare words)"),
        rber,
        profiled_bits,
        overhead_bits: spare_words * word_bits,
        uncovered: unprotected,
        uncovered_fraction: if faulty_words == 0 {
            0.0
        } else {
            unprotected as f64 / faulty_words as f64
        },
    });
    rows
}

impl Ext4RepairResult {
    /// Renders the result as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "on-die ECC",
            "mechanism",
            "RBER",
            "profiled at-risk bits",
            "overhead (bits)",
            "uncovered",
            "uncovered fraction",
        ]);
        for row in &self.rows {
            table.push_row([
                row.family.clone(),
                row.mechanism.clone(),
                scientific(row.rber),
                row.profiled_bits.to_string(),
                row.overhead_bits.to_string(),
                row.uncovered.to_string(),
                fixed(row.uncovered_fraction, 4),
            ]);
        }
        format!(
            "Extension 4: repair-capacity planning over {} words per on-die ECC family \
             (Table 1 made executable)\n{}",
            self.words,
            table.render()
        )
    }

    /// Rows for one mechanism label prefix (across all families).
    pub fn rows_for(&self, prefix: &str) -> Vec<&Ext4MechanismRow> {
        self.rows
            .iter()
            .filter(|r| r.mechanism.starts_with(prefix))
            .collect()
    }

    /// Rows for one (family prefix, mechanism prefix) pair.
    pub fn rows_for_family(&self, family: &str, mechanism: &str) -> Vec<&Ext4MechanismRow> {
        self.rows
            .iter()
            .filter(|r| r.family.starts_with(family) && r.mechanism.starts_with(mechanism))
            .collect()
    }

    /// The distinct family labels, in row order.
    pub fn families(&self) -> Vec<&str> {
        let mut families: Vec<&str> = Vec::new();
        for row in &self.rows {
            if !families.contains(&row.family.as_str()) {
                families.push(&row.family);
            }
        }
        families
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> EvaluationConfig {
        EvaluationConfig::smoke()
    }

    #[test]
    fn all_three_families_are_swept() {
        let result = run_with_rbers(&smoke_config(), &[1e-2]);
        let families = result.families();
        assert_eq!(families.len(), 3);
        assert!(families[0].contains("SEC Hamming"));
        assert!(families[1].contains("SEC-DED"));
        assert!(families[2].contains("DEC BCH"));
        // Four mechanisms per (family, RBER) pair.
        assert_eq!(result.rows.len(), 3 * 4);
    }

    #[test]
    fn ideal_bit_repair_covers_everything() {
        let result = run_with_rbers(&smoke_config(), &[1e-3, 1e-2]);
        for row in result.rows_for("ideal bit repair") {
            assert_eq!(row.uncovered, 0);
            assert_eq!(row.overhead_bits, row.profiled_bits);
        }
    }

    #[test]
    fn ecp6_covers_at_least_as_much_as_ecp2() {
        let result = run_with_rbers(&smoke_config(), &[1e-2]);
        for family in result.families() {
            let ecp2 = result.rows_for_family(family, "ECP-2")[0];
            let ecp6 = result.rows_for_family(family, "ECP-6")[0];
            assert!(ecp6.uncovered <= ecp2.uncovered, "{family}");
            assert_eq!(ecp2.rber, 1e-2);
        }
    }

    #[test]
    fn stronger_codes_need_no_more_repair_capacity() {
        // SEC-DED detects the pairs Hamming miscorrects and BCH corrects
        // them outright, so the profiled at-risk population shrinks (or at
        // worst stays equal) as the code strengthens.
        let result = run_with_rbers(&smoke_config(), &[1e-2]);
        let families = result.families();
        let profiled = |family: &str| -> usize {
            result.rows_for_family(family, "ideal bit repair")[0].profiled_bits
        };
        assert!(profiled(families[1]) <= profiled(families[0]));
        assert!(profiled(families[2]) <= profiled(families[0]));
    }

    #[test]
    fn higher_rber_profiles_more_bits() {
        let result = run_with_rbers(&smoke_config(), &[1e-4, 1e-2]);
        for family in result.families() {
            let rows = result.rows_for_family(family, "ideal bit repair");
            assert!(rows[1].profiled_bits > rows[0].profiled_bits, "{family}");
        }
        assert!(result.render().contains("Extension 4"));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_rber_is_rejected() {
        run_with_rbers(&smoke_config(), &[2.0]);
    }
}
