//! Extension 4: repair-capacity planning for the mechanisms of Table 1.
//!
//! The paper's case study assumes an *ideal* repair mechanism with unlimited
//! spare capacity so that profiler coverage is the only variable. Real
//! mechanisms (Table 1) have finite capacity at a fixed granularity. Given a
//! profile produced by a full-coverage profiler such as HARP, this
//! experiment asks how much repair capacity each mechanism actually needs at
//! a given raw bit error rate, and how many at-risk bits are left exposed
//! when the capacity is fixed at realistic values:
//!
//! * ECP-style per-word pointer entries (2 and 6 entries per 64-bit word);
//! * an ArchShield-style spare region sized at 1% of all words;
//! * ideal bit-granularity repair as the reference point.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_controller::{ArchShieldRepair, BitRepairMechanism, EcpRepair, ErrorProfile};

use crate::config::EvaluationConfig;
use crate::report::{fixed, scientific, TextTable};

/// The raw bit error rates swept by default.
pub const DEFAULT_RBERS: [f64; 3] = [1e-4, 1e-3, 1e-2];

/// Capacity outcome of one mechanism at one RBER.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext4MechanismRow {
    /// Mechanism label.
    pub mechanism: String,
    /// Raw bit error rate of the profiled population.
    pub rber: f64,
    /// Number of profiled at-risk bits across the population.
    pub profiled_bits: usize,
    /// Spare/metadata overhead the mechanism allocates, in bits.
    pub overhead_bits: usize,
    /// At-risk bits (ECP / bit repair) or words (ArchShield) left uncovered.
    pub uncovered: usize,
    /// Uncovered entities as a fraction of profiled bits (or faulty words).
    pub uncovered_fraction: f64,
}

/// The full extension-4 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ext4RepairResult {
    /// Number of 64-bit words in the simulated population.
    pub words: usize,
    /// One row per (mechanism, RBER) pair.
    pub rows: Vec<Ext4MechanismRow>,
}

/// Runs the extension experiment over the default RBER sweep.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run(config: &EvaluationConfig) -> Ext4RepairResult {
    run_with_rbers(config, &DEFAULT_RBERS)
}

/// Runs the extension experiment for explicit raw bit error rates.
///
/// # Panics
///
/// Panics if the configuration is invalid or any RBER is outside `[0, 1]`.
pub fn run_with_rbers(config: &EvaluationConfig, rbers: &[f64]) -> Ext4RepairResult {
    config.validate();
    for &rber in rbers {
        assert!((0.0..=1.0).contains(&rber), "RBER {rber} outside [0, 1]");
    }
    // A population large enough for the smallest default RBER to produce
    // at-risk bits at quick scale.
    let words = (config.words_total() * 256).max(4096);
    let word_bits = config.data_bits;

    let mut rows = Vec::new();
    for &rber in rbers {
        let mut rng = ChaCha8Rng::seed_from_u64(config.base_seed ^ (rber.to_bits()));
        // The profile a full-coverage profiler (HARP) would hand to the
        // repair mechanism: every at-risk data bit of every word.
        let mut profile = ErrorProfile::new();
        for word in 0..words {
            for bit in 0..word_bits {
                if rng.gen_bool(rber) {
                    profile.mark(word, bit);
                }
            }
        }
        let profiled_bits = profile.total_bits();
        let faulty_words = (0..words).filter(|&w| profile.count_for(w) > 0).count();

        // Ideal bit-granularity repair: one spare bit per profiled bit.
        let bit_repair = BitRepairMechanism::new(profile.clone());
        rows.push(Ext4MechanismRow {
            mechanism: "ideal bit repair".to_owned(),
            rber,
            profiled_bits,
            overhead_bits: bit_repair.spare_bits_required(),
            uncovered: 0,
            uncovered_fraction: 0.0,
        });

        // ECP-style pointer entries per word.
        for entries in [2usize, 6] {
            let mut ecp = EcpRepair::new(word_bits, entries);
            let uncovered = ecp.load_profile(&profile);
            rows.push(Ext4MechanismRow {
                mechanism: format!("ECP-{entries} (per {word_bits}-bit word)"),
                rber,
                profiled_bits,
                overhead_bits: ecp.overhead_bits(),
                uncovered,
                uncovered_fraction: if profiled_bits == 0 {
                    0.0
                } else {
                    uncovered as f64 / profiled_bits as f64
                },
            });
        }

        // ArchShield-style spare region: 1% of all words.
        let spare_words = (words / 100).max(1);
        let mut arch = ArchShieldRepair::new(spare_words);
        let unprotected = arch.load_profile(&profile);
        rows.push(Ext4MechanismRow {
            mechanism: format!("ArchShield ({spare_words} spare words)"),
            rber,
            profiled_bits,
            overhead_bits: spare_words * word_bits,
            uncovered: unprotected,
            uncovered_fraction: if faulty_words == 0 {
                0.0
            } else {
                unprotected as f64 / faulty_words as f64
            },
        });
    }

    Ext4RepairResult { words, rows }
}

impl Ext4RepairResult {
    /// Renders the result as a plain-text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "mechanism",
            "RBER",
            "profiled at-risk bits",
            "overhead (bits)",
            "uncovered",
            "uncovered fraction",
        ]);
        for row in &self.rows {
            table.push_row([
                row.mechanism.clone(),
                scientific(row.rber),
                row.profiled_bits.to_string(),
                row.overhead_bits.to_string(),
                row.uncovered.to_string(),
                fixed(row.uncovered_fraction, 4),
            ]);
        }
        format!(
            "Extension 4: repair-capacity planning over {} words (Table 1 made executable)\n{}",
            self.words,
            table.render()
        )
    }

    /// Rows for one mechanism label prefix.
    pub fn rows_for(&self, prefix: &str) -> Vec<&Ext4MechanismRow> {
        self.rows
            .iter()
            .filter(|r| r.mechanism.starts_with(prefix))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config() -> EvaluationConfig {
        EvaluationConfig::smoke()
    }

    #[test]
    fn ideal_bit_repair_covers_everything() {
        let result = run_with_rbers(&smoke_config(), &[1e-3, 1e-2]);
        for row in result.rows_for("ideal bit repair") {
            assert_eq!(row.uncovered, 0);
            assert_eq!(row.overhead_bits, row.profiled_bits);
        }
    }

    #[test]
    fn ecp6_covers_at_least_as_much_as_ecp2() {
        let result = run_with_rbers(&smoke_config(), &[1e-2]);
        let ecp2 = result.rows_for("ECP-2")[0];
        let ecp6 = result.rows_for("ECP-6")[0];
        assert!(ecp6.uncovered <= ecp2.uncovered);
        assert_eq!(ecp2.rber, 1e-2);
    }

    #[test]
    fn higher_rber_profiles_more_bits() {
        let result = run_with_rbers(&smoke_config(), &[1e-4, 1e-2]);
        let low = result.rows_for("ideal bit repair")[0].profiled_bits;
        let high = result.rows_for("ideal bit repair")[1].profiled_bits;
        assert!(high > low);
        assert!(result.render().contains("Extension 4"));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_rber_is_rejected() {
        run_with_rbers(&smoke_config(), &[2.0]);
    }
}
