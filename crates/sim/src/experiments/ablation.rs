//! Ablation studies for the design choices DESIGN.md §5 calls out:
//!
//! 1. **Data pattern** — random vs. charged vs. checkered patterns during
//!    active profiling (§7.1.2 notes random performs on par or better);
//! 2. **Transparency option** — HARP-U (decode bypass) vs. HARP-S (syndrome
//!    on correction), which must achieve identical direct-error coverage
//!    (§5.2);
//! 3. **Secondary-ECC strength** — correction capability 1 vs. 2 vs. 3
//!    (§6.3.2): how many words remain unsafe after a given number of active
//!    profiling rounds for each strength;
//! 4. **Code length** — (71, 64) vs. (136, 128) on-die ECC (§7.1.2).

use serde::{Deserialize, Serialize};

use harp_memsim::pattern::DataPattern;
use harp_profiler::ProfilerKind;

use crate::config::EvaluationConfig;
use crate::experiments::sweep::run_coverage_sweep;
use crate::report::{fixed, percent, TextTable};
use crate::stats::mean;

/// Aggregate final direct-error coverage for one ablation arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationArm {
    /// Human-readable arm label (e.g. `"pattern=random"`).
    pub label: String,
    /// Mean final direct-error coverage across all words and configurations.
    pub final_direct_coverage: f64,
    /// Mean rounds to full direct coverage (censored at the round budget).
    pub mean_rounds_to_full_coverage: f64,
    /// Fraction of words whose worst case still exceeds one simultaneous
    /// post-correction error at the end of profiling.
    pub unsafe_word_fraction: f64,
}

/// Results of all four ablation studies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationResult {
    /// Data-pattern ablation (HARP-U and Naive under each pattern).
    pub patterns: Vec<AblationArm>,
    /// Transparency ablation (HARP-U vs. HARP-S).
    pub transparency: Vec<AblationArm>,
    /// Secondary-ECC strength ablation (required capability vs. rounds).
    pub secondary_strength: Vec<AblationArm>,
    /// Code-length ablation ((71, 64) vs. (136, 128)).
    pub code_length: Vec<AblationArm>,
}

fn arm_from_sweep(
    label: String,
    config: &EvaluationConfig,
    profilers: &[ProfilerKind],
    unsafe_limit: usize,
) -> Vec<AblationArm> {
    let sweep = run_coverage_sweep(config, profilers);
    profilers
        .iter()
        .map(|&profiler| {
            let mut final_cov = Vec::new();
            let mut rounds_full = Vec::new();
            let mut unsafe_words = 0usize;
            let mut total_words = 0usize;
            for e in sweep.evaluations.iter().filter(|e| e.profiler == profiler) {
                total_words += 1;
                final_cov.push(e.series.final_direct_coverage());
                rounds_full.push(
                    e.series
                        .rounds_to_full_direct_coverage()
                        .map(|r| (r + 1) as f64)
                        .unwrap_or((sweep.rounds + 1) as f64),
                );
                if *e.series.max_simultaneous.last().unwrap_or(&0) > unsafe_limit {
                    unsafe_words += 1;
                }
            }
            AblationArm {
                label: format!("{label} / {profiler}"),
                final_direct_coverage: mean(&final_cov),
                mean_rounds_to_full_coverage: mean(&rounds_full),
                unsafe_word_fraction: if total_words == 0 {
                    0.0
                } else {
                    unsafe_words as f64 / total_words as f64
                },
            }
        })
        .collect()
}

/// Runs all four ablation studies at the given configuration scale.
pub fn run(config: &EvaluationConfig) -> AblationResult {
    config.validate();

    // 1. Data-pattern ablation.
    let mut patterns = Vec::new();
    for pattern in DataPattern::evaluated() {
        let arm_config = EvaluationConfig {
            pattern,
            ..config.clone()
        };
        patterns.extend(arm_from_sweep(
            format!("pattern={pattern}"),
            &arm_config,
            &[ProfilerKind::HarpU, ProfilerKind::Naive],
            1,
        ));
    }

    // 2. Transparency ablation: bypass read vs. syndrome on correction.
    let transparency = arm_from_sweep(
        "transparency".to_owned(),
        config,
        &[ProfilerKind::HarpU, ProfilerKind::HarpS],
        1,
    );

    // 3. Secondary-ECC strength ablation: how many words still exceed the
    //    secondary ECC's capability at the end of active profiling, for
    //    capabilities 1..=3, using the Naive profiler (the interesting case —
    //    HARP always reaches the <=1 state).
    let mut secondary_strength = Vec::new();
    for capability in 1..=3usize {
        let arms = arm_from_sweep(
            format!("secondary capability={capability}"),
            config,
            &[ProfilerKind::Naive],
            capability,
        );
        secondary_strength.extend(arms);
    }

    // 4. Code-length ablation.
    let mut code_length = Vec::new();
    for (label, arm_config) in [
        ("(71,64)".to_owned(), config.clone()),
        ("(136,128)".to_owned(), config.clone().with_long_code()),
    ] {
        code_length.extend(arm_from_sweep(
            format!("code={label}"),
            &arm_config,
            &[ProfilerKind::HarpU, ProfilerKind::Naive],
            1,
        ));
    }

    AblationResult {
        patterns,
        transparency,
        secondary_strength,
        code_length,
    }
}

impl AblationResult {
    fn render_arms(title: &str, arms: &[AblationArm]) -> String {
        let mut table = TextTable::new([
            "arm",
            "final direct coverage",
            "mean rounds to full",
            "unsafe words",
        ]);
        for arm in arms {
            table.push_row([
                arm.label.clone(),
                fixed(arm.final_direct_coverage, 3),
                fixed(arm.mean_rounds_to_full_coverage, 1),
                percent(arm.unsafe_word_fraction),
            ]);
        }
        format!("{title}\n{}", table.render())
    }

    /// Renders all four ablation tables.
    pub fn render(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}",
            Self::render_arms("Ablation 1: active-profiling data pattern", &self.patterns),
            Self::render_arms(
                "Ablation 2: transparency option (bypass read vs. syndrome on correction)",
                &self.transparency
            ),
            Self::render_arms(
                "Ablation 3: secondary-ECC correction capability (Naive active phase)",
                &self.secondary_strength
            ),
            Self::render_arms("Ablation 4: on-die ECC code length", &self.code_length),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 3,
            rounds: 48,
            error_counts: vec![3],
            probabilities: vec![0.5],
            ..EvaluationConfig::quick()
        }
    }

    #[test]
    fn transparency_options_achieve_identical_coverage() {
        let result = run(&tiny_config());
        assert_eq!(result.transparency.len(), 2);
        let harp_u = &result.transparency[0];
        let harp_s = &result.transparency[1];
        assert!((harp_u.final_direct_coverage - harp_s.final_direct_coverage).abs() < 1e-12);
        assert!(
            (harp_u.mean_rounds_to_full_coverage - harp_s.mean_rounds_to_full_coverage).abs()
                < 1e-12
        );
    }

    #[test]
    fn harp_reaches_full_coverage_under_every_pattern() {
        let result = run(&tiny_config());
        for arm in result
            .patterns
            .iter()
            .filter(|a| a.label.contains("HARP-U"))
        {
            assert!(
                (arm.final_direct_coverage - 1.0).abs() < 1e-9,
                "{}: coverage {}",
                arm.label,
                arm.final_direct_coverage
            );
            assert_eq!(arm.unsafe_word_fraction, 0.0);
        }
    }

    #[test]
    fn stronger_secondary_ecc_reduces_unsafe_words() {
        let result = run(&tiny_config());
        let fractions: Vec<f64> = result
            .secondary_strength
            .iter()
            .map(|a| a.unsafe_word_fraction)
            .collect();
        assert_eq!(fractions.len(), 3);
        assert!(fractions[1] <= fractions[0] + 1e-12);
        assert!(fractions[2] <= fractions[1] + 1e-12);
    }

    #[test]
    fn long_code_arm_preserves_harp_full_coverage() {
        let result = run(&tiny_config());
        for arm in result
            .code_length
            .iter()
            .filter(|a| a.label.contains("HARP-U"))
        {
            assert!(
                (arm.final_direct_coverage - 1.0).abs() < 1e-9,
                "{}",
                arm.label
            );
        }
        let rendered = result.render();
        assert!(rendered.contains("Ablation 1"));
        assert!(rendered.contains("Ablation 4"));
        assert!(rendered.contains("(136,128)"));
    }
}
