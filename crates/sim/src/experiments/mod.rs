//! One module per reproduced table / figure, plus the shared coverage sweep
//! they are derived from.
//!
//! Every experiment exposes a `run(...) -> …Result` entry point and a
//! `render()` method on its result that returns the plain-text table the CLI
//! and benches print. See DESIGN.md §4 for the experiment ↔ module index.

pub mod ablation;
pub mod ext_bch;
pub mod ext_beer;
pub mod ext_codes;
pub mod ext_module;
pub mod ext_repair;
pub mod ext_traffic;
pub mod ext_vrt;
pub mod fig10;
pub mod fig2;
pub mod fig4;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod headline;
pub mod sweep;
pub mod table2;
