//! Sweep checkpointing, resumption, and cross-process sharding.
//!
//! The paper parallelizes its evaluation across compute-cluster jobs and
//! burned ~14 CPU-years on the full sweep (§A.7); a faithful reproduction at
//! scale must survive interruption and distribute across machines. This
//! module makes the coverage sweep behind Figs. 6–9 snapshottable end to end:
//!
//! * [`ResumableSweep`] is the stateful twin of
//!   [`run_coverage_sweep_with`](crate::experiments::sweep::run_coverage_sweep_with):
//!   one resumable [`BatchRun`] per (sweep cell, code group, profiler),
//!   advanced in round increments and frozen between them. An uninterrupted
//!   run and a stop-at-round-`k`-then-resume run produce byte-identical
//!   [`CoverageSweep`]s (`tests/checkpoint_resume.rs` locks this down for
//!   every profiler kind and code family).
//! * A **versioned checkpoint archive**: a directory holding one JSON file
//!   per code group plus a manifest, written durably (temp file, fsync,
//!   rename, directory fsync — see [`write_json_atomically`]) so a crash
//!   mid-checkpoint, including power loss, never corrupts a resumable
//!   archive. Schema versioned like the `BENCH_<group>.json` contract.
//! * [`ShardSpec`] worker mode: `--shard i/N` assigns each worker the code
//!   groups whose **global group index** satisfies `g % N == i`. The group
//!   index `g = cell_index * num_codes + code_index` depends only on the
//!   configuration — never on thread counts — so any two machines agree on
//!   the partition. Shard outputs are folded back into one sweep by
//!   [`merge_shards`], which validates completeness via
//!   [`CoverageSeries::checked_final_direct_coverage`] instead of trusting
//!   the silent 0.0 of an empty series.
//!
//! All persistence goes through [`crate::minijson`]: `u64` seeds and RNG
//! block counters are stored as raw literals (never through `f64`), so a
//! resumed RNG stream is positioned bit-exactly.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use harp_ecc::{HammingCode, LinearBlockCode};
use harp_memsim::pattern::DataPattern;
use harp_profiler::{
    BatchRun, BatchWord, CampaignBatch, CampaignCheckpoint, CoverageSeries, ProfilerKind,
    ProfilerState, WordCheckpoint,
};
use rand_chacha::ChaCha8RngState;

use crate::config::EvaluationConfig;
use crate::experiments::sweep::{CoverageSweep, WordEvaluation};
use crate::minijson::{Json, NonFiniteFloat};
use crate::report::{fixed, TextTable};
use crate::runner::parallel_map_mut;
use crate::sample::{group_by_code, sample_words_with};
use crate::stats::mean;

/// Version of the on-disk checkpoint and shard-output schema. Bump on any
/// incompatible layout change; readers reject mismatched versions instead of
/// misinterpreting them.
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 1;

/// Name of the archive manifest file.
pub const MANIFEST_FILE: &str = "MANIFEST.json";

/// Which slice of a sweep's code groups one worker owns: shard `i` of `N`
/// takes every group whose global index is `≡ i (mod N)`.
///
/// The partition is a pure function of the configuration (groups are indexed
/// `cell_index * num_codes + code_index`), so workers on different machines
/// — with different thread counts — agree on it without coordination. Word
/// results do not depend on how groups are batched (the membership-
/// independence invariant of `tests/campaign_equivalence.rs`), so any
/// partition reproduces the single-process sweep exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This worker's index, `0 <= index < count`.
    pub index: usize,
    /// Total number of workers.
    pub count: usize,
}

impl ShardSpec {
    /// The trivial single-worker shard owning every group.
    pub fn full() -> Self {
        Self { index: 0, count: 1 }
    }

    /// Parses the CLI form `"i/N"` (e.g. `"0/2"`).
    ///
    /// # Errors
    ///
    /// Returns a description of the problem when the text is not of the form
    /// `i/N` with `i < N` and `N >= 1`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (index, count) = text
            .split_once('/')
            .ok_or_else(|| format!("shard '{text}' is not of the form i/N"))?;
        let index: usize = index
            .trim()
            .parse()
            .map_err(|_| format!("shard index '{index}' is not a number"))?;
        let count: usize = count
            .trim()
            .parse()
            .map_err(|_| format!("shard count '{count}' is not a number"))?;
        if count == 0 {
            return Err("shard count must be at least 1".to_owned());
        }
        if index >= count {
            return Err(format!(
                "shard index {index} out of range for {count} workers"
            ));
        }
        Ok(Self { index, count })
    }

    /// Whether this shard owns the group with the given global index.
    pub fn owns(&self, group_index: usize) -> bool {
        group_index % self.count == self.index
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One resumable work unit: all profilers over one code group of one sweep
/// cell.
#[derive(Debug)]
struct SweepUnit<C: LinearBlockCode> {
    group_index: usize,
    cell_index: usize,
    code_index: usize,
    error_count: usize,
    probability: f64,
    batch: CampaignBatch<C>,
    runs: Vec<BatchRun<C>>,
}

/// The resumable coverage sweep: the checkpointable twin of
/// [`run_coverage_sweep_with`](crate::experiments::sweep::run_coverage_sweep_with).
///
/// Construction regenerates the word population deterministically from the
/// configuration (samples are never persisted — only mutable campaign state
/// is), builds one [`BatchRun`] per (cell, code group, profiler), and
/// advances all of them in lock-step round increments. After
/// `config.rounds` rounds, [`ResumableSweep::into_sweep`] assembles the
/// exact [`CoverageSweep`] the one-shot path produces.
#[derive(Debug)]
pub struct ResumableSweep<C: LinearBlockCode = HammingCode> {
    config: EvaluationConfig,
    profilers: Vec<ProfilerKind>,
    shard: ShardSpec,
    units: Vec<SweepUnit<C>>,
    round: usize,
}

impl<C: LinearBlockCode + Clone + Send + 'static> ResumableSweep<C> {
    /// Starts a full (unsharded) resumable sweep at round 0.
    pub fn new<F: Fn(u64) -> C>(
        config: &EvaluationConfig,
        profilers: &[ProfilerKind],
        make_code: F,
    ) -> Self {
        Self::sharded(config, profilers, ShardSpec::full(), make_code)
    }

    /// Starts a resumable sweep owning only the given shard's groups.
    pub fn sharded<F: Fn(u64) -> C>(
        config: &EvaluationConfig,
        profilers: &[ProfilerKind],
        shard: ShardSpec,
        make_code: F,
    ) -> Self {
        config.validate();
        let mut units = Vec::new();
        let mut cell_index = 0;
        for &error_count in &config.error_counts {
            for &probability in &config.probabilities {
                let samples = sample_words_with(config, error_count, probability, &make_code);
                for group in group_by_code(&samples) {
                    let code_index = group[0].code_index;
                    let group_index = cell_index * config.num_codes + code_index;
                    if !shard.owns(group_index) {
                        continue;
                    }
                    let batch = CampaignBatch::new(
                        group[0].code.clone(),
                        group
                            .iter()
                            .map(|sample| {
                                BatchWord::new(
                                    sample.faults.clone(),
                                    config.pattern,
                                    sample.campaign_seed,
                                )
                            })
                            .collect(),
                    );
                    let runs = profilers
                        .iter()
                        .map(|&kind| BatchRun::new(&batch, kind))
                        .collect();
                    units.push(SweepUnit {
                        group_index,
                        cell_index,
                        code_index,
                        error_count,
                        probability,
                        batch,
                        runs,
                    });
                }
                cell_index += 1;
            }
        }
        Self {
            config: config.clone(),
            profilers: profilers.to_vec(),
            shard,
            units,
            round: 0,
        }
    }

    /// Number of completed rounds.
    pub fn round(&self) -> usize {
        self.round
    }

    /// This worker's shard assignment.
    pub fn shard(&self) -> ShardSpec {
        self.shard
    }

    /// The sweep configuration.
    pub fn config(&self) -> &EvaluationConfig {
        &self.config
    }

    /// Number of code groups this worker owns.
    pub fn num_groups(&self) -> usize {
        self.units.len()
    }

    /// Total number of code groups across all shards.
    pub fn total_groups(&self) -> usize {
        total_groups(&self.config)
    }

    /// Whether all configured rounds have completed.
    pub fn is_complete(&self) -> bool {
        self.round >= self.config.rounds
    }

    /// Advances every owned group to `round() + rounds` (clamped to the
    /// configured total), threading across groups.
    ///
    /// Groups already past the target — possible after resuming a torn
    /// archive whose interrupted generation had overwritten some group
    /// files — simply hold position until the rest catch up; each campaign
    /// is deterministic, so the order of interleaving never matters.
    pub fn advance(&mut self, rounds: usize) {
        let target = self
            .round
            .saturating_add(rounds)
            .min(self.config.rounds)
            .max(self.round);
        if target == self.round {
            return;
        }
        let threads = self.config.threads;
        parallel_map_mut(&mut self.units, threads, |unit| {
            for run in &mut unit.runs {
                let behind = target.saturating_sub(run.round());
                if behind > 0 {
                    run.advance(behind);
                }
            }
        });
        self.round = target;
    }

    /// Writes a checkpoint archive of the current state into `dir`
    /// (created if needed): one `GROUP_<cell>_<code>.json` per owned code
    /// group, then the manifest. Every file goes through the durable
    /// temp-file/fsync/rename sequence of [`write_json_atomically`], and the
    /// manifest is written last — and only after its groups are on disk, not
    /// merely renamed — so an archive with a readable manifest always has
    /// every group present at the manifest's round *or later*, even across
    /// power loss: a crash mid-archive can leave some
    /// group files from the interrupted (newer) generation, and
    /// [`resume`](Self::resume) accepts those, since each group file is
    /// individually atomic and each group's campaign is independent.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the archive.
    pub fn write_archive(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for unit in &self.units {
            let round = unit.runs.first().map_or(self.round, |run| run.round());
            let json = encode_group(unit, round);
            write_atomically(
                &dir.join(group_file_name(unit.cell_index, unit.code_index)),
                &json,
            )?;
        }
        write_atomically(&dir.join(MANIFEST_FILE), &self.manifest_json())
    }

    fn manifest_json(&self) -> Json {
        Json::Object(vec![
            ("schema".into(), Json::from_u64(CHECKPOINT_SCHEMA_VERSION)),
            ("round".into(), Json::from_usize(self.round)),
            ("shard".into(), encode_shard(self.shard)),
            ("profilers".into(), encode_profilers(&self.profilers)),
            ("config".into(), encode_config(&self.config)),
            ("num_groups".into(), Json::from_usize(self.units.len())),
        ])
    }

    /// Reconstructs a sweep at exactly the position of the archive in `dir`.
    /// Configuration, profiler lineup, and shard assignment all come from
    /// the manifest; `make_code` rebuilds the per-code-index codes (consult
    /// [`read_manifest`] first for the archived `data_bits`).
    ///
    /// A group file frozen *ahead* of the manifest is accepted: it means a
    /// newer archive generation was interrupted after overwriting that
    /// group but before its manifest, and the group's own state is still a
    /// valid atomic snapshot. [`advance`](Self::advance) lets the other
    /// groups catch up. A group *behind* the manifest (or past the
    /// configured rounds) is corruption and is rejected.
    ///
    /// # Errors
    ///
    /// Returns an error when the archive is missing, has a mismatched schema
    /// version, or any group file is absent or corrupt.
    pub fn resume<F: Fn(u64) -> C>(dir: &Path, make_code: F) -> io::Result<Self> {
        let manifest = read_manifest(dir)?;
        let mut sweep = Self::sharded(
            &manifest.config,
            &manifest.profilers,
            manifest.shard,
            make_code,
        );
        for unit in &mut sweep.units {
            let path = dir.join(group_file_name(unit.cell_index, unit.code_index));
            let text = std::fs::read_to_string(&path)?;
            let json =
                Json::parse(&text).map_err(|e| invalid(format!("{}: {e}", path.display())))?;
            let (round, checkpoints) = decode_group(&json, &manifest)
                .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
            if round < manifest.round || round > manifest.config.rounds {
                return Err(invalid(format!(
                    "{}: group frozen at round {round}, manifest says {} of {}",
                    path.display(),
                    manifest.round,
                    manifest.config.rounds
                )));
            }
            if checkpoints.len() != sweep.profilers.len() {
                return Err(invalid(format!(
                    "{}: {} campaign checkpoints for {} profilers",
                    path.display(),
                    checkpoints.len(),
                    sweep.profilers.len()
                )));
            }
            // Reject corrupt per-word state here, where the batch geometry
            // is known, so resumption never trips a downstream panic
            // (`BatchRun::resume` asserts the word count; the predicting
            // profiler kinds feed their restored sets into exhaustive
            // error-space enumeration).
            let codeword_len = unit.batch.code().codeword_len();
            for checkpoint in &checkpoints {
                validate_campaign_checkpoint(checkpoint, round, unit.batch.len(), codeword_len)
                    .map_err(|e| invalid(format!("{}: {e}", path.display())))?;
            }
            unit.runs = checkpoints
                .iter()
                .map(|checkpoint| BatchRun::resume(&unit.batch, checkpoint))
                .collect();
        }
        sweep.round = manifest.round;
        Ok(sweep)
    }

    /// A progress snapshot at the current round: for each profiler in
    /// lineup order, the mean direct coverage across every word of every
    /// owned group (0.0 before any rounds have run). This is what the
    /// daemon streams to `harp watch` clients between checkpoints — cheap
    /// enough to compute every round at quick scale, and derived from the
    /// same per-round snapshots the final series are.
    pub fn progress(&self) -> Vec<(ProfilerKind, f64)> {
        let mut sums = vec![0.0_f64; self.profilers.len()];
        let mut words = 0usize;
        for unit in &self.units {
            let per_profiler: Vec<_> = unit.runs.iter().map(|run| run.results()).collect();
            for word in 0..unit.batch.len() {
                let space = unit.batch.error_space(word);
                words += 1;
                for (sum, results) in sums.iter_mut().zip(&per_profiler) {
                    let series = CoverageSeries::from_campaign(&results[word], &space);
                    *sum += series.final_direct_coverage();
                }
            }
        }
        self.profilers
            .iter()
            .zip(&sums)
            .map(|(&kind, &sum)| (kind, if words == 0 { 0.0 } else { sum / words as f64 }))
            .collect()
    }

    /// Assembles the owned groups' evaluations, in global group order, once
    /// all rounds have completed.
    ///
    /// # Panics
    ///
    /// Panics if the sweep has not completed all configured rounds.
    fn owned_evaluations(&self) -> Vec<(usize, Vec<WordEvaluation>)> {
        assert!(
            self.is_complete(),
            "sweep stopped at round {} of {}",
            self.round,
            self.config.rounds
        );
        self.units
            .iter()
            .map(|unit| {
                let per_profiler: Vec<_> = unit.runs.iter().map(|run| run.results()).collect();
                let mut evaluations = Vec::with_capacity(unit.batch.len() * self.profilers.len());
                for word in 0..unit.batch.len() {
                    let space = unit.batch.error_space(word);
                    for (&profiler, results) in self.profilers.iter().zip(&per_profiler) {
                        evaluations.push(WordEvaluation {
                            error_count: unit.error_count,
                            probability: unit.probability,
                            profiler,
                            series: CoverageSeries::from_campaign(&results[word], &space),
                        });
                    }
                }
                (unit.group_index, evaluations)
            })
            .collect()
    }

    /// Finishes a **full** (unsharded) sweep into the exact
    /// [`CoverageSweep`] the one-shot
    /// [`run_coverage_sweep`](crate::experiments::sweep::run_coverage_sweep)
    /// path produces.
    ///
    /// # Panics
    ///
    /// Panics if rounds remain or the sweep owns only a shard (shard workers
    /// persist a [`ShardOutput`](Self::write_shard_output) for `merge`
    /// instead).
    pub fn into_sweep(&self) -> CoverageSweep {
        assert_eq!(
            self.shard,
            ShardSpec::full(),
            "a {} shard cannot assemble the full sweep; merge shard outputs",
            self.shard
        );
        let evaluations = self
            .owned_evaluations()
            .into_iter()
            .flat_map(|(_, evals)| evals)
            .collect();
        CoverageSweep {
            rounds: self.config.rounds,
            error_counts: self.config.error_counts.clone(),
            probabilities: self.config.probabilities.clone(),
            profilers: self.profilers.clone(),
            evaluations,
        }
    }

    /// Writes this worker's completed groups as a shard-output file for the
    /// `merge` coordinator.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file, or an
    /// `InvalidData` error if an evaluation contains a non-finite float
    /// (the shard writer runs on worker paths that must not panic).
    ///
    /// # Panics
    ///
    /// Panics if the sweep has not completed all configured rounds.
    pub fn write_shard_output(&self, path: &Path) -> io::Result<()> {
        let groups = self
            .owned_evaluations()
            .into_iter()
            .map(|(group_index, evaluations)| {
                let evaluations = evaluations
                    .iter()
                    .map(try_encode_evaluation)
                    .collect::<Result<Vec<Json>, _>>()
                    .map_err(|e| invalid(e.to_string()))?;
                Ok(Json::Object(vec![
                    ("group_index".into(), Json::from_usize(group_index)),
                    ("evaluations".into(), Json::Array(evaluations)),
                ]))
            })
            .collect::<io::Result<Vec<Json>>>()?;
        let json = Json::Object(vec![
            ("schema".into(), Json::from_u64(CHECKPOINT_SCHEMA_VERSION)),
            ("shard".into(), encode_shard(self.shard)),
            ("profilers".into(), encode_profilers(&self.profilers)),
            ("config".into(), encode_config(&self.config)),
            ("groups".into(), Json::Array(groups)),
        ]);
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        write_atomically(path, &json)
    }
}

/// Conventional shard-output file name for worker `i` of `N`.
pub fn shard_file_name(shard: ShardSpec) -> String {
    format!("SHARD_{}_of_{}.json", shard.index, shard.count)
}

fn group_file_name(cell_index: usize, code_index: usize) -> String {
    format!("GROUP_{cell_index}_{code_index}.json")
}

/// Total number of code groups a configuration produces (across all shards):
/// one per (error count, probability, code index).
pub fn total_groups(config: &EvaluationConfig) -> usize {
    config.error_counts.len() * config.probabilities.len() * config.num_codes
}

/// A parsed checkpoint-archive manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Completed rounds at the time of the checkpoint.
    pub round: usize,
    /// The worker's shard assignment.
    pub shard: ShardSpec,
    /// Profiler lineup, in evaluation order.
    pub profilers: Vec<ProfilerKind>,
    /// The sweep configuration the archive was generated from.
    pub config: EvaluationConfig,
}

/// Reads and validates the manifest of a checkpoint archive.
///
/// # Errors
///
/// Returns an error when the manifest is missing, malformed, or of an
/// unsupported schema version.
pub fn read_manifest(dir: &Path) -> io::Result<Manifest> {
    let path = dir.join(MANIFEST_FILE);
    let text = std::fs::read_to_string(&path)?;
    let json = Json::parse(&text).map_err(|e| invalid(format!("{}: {e}", path.display())))?;
    decode_manifest(&json).map_err(|e| invalid(format!("{}: {e}", path.display())))
}

fn decode_manifest(json: &Json) -> Result<Manifest, String> {
    check_schema(json)?;
    Ok(Manifest {
        round: require_usize(json, "round")?,
        shard: decode_shard(require(json, "shard")?)?,
        profilers: decode_profilers(require(json, "profilers")?)?,
        config: decode_config(require(json, "config")?)?,
    })
}

/// Folds the shard-output files of a distributed sweep back into the single
/// [`CoverageSweep`] an unsharded run produces.
///
/// Validates that every file shares one schema version, configuration, and
/// profiler lineup; that the shards jointly cover every code group exactly
/// once; and that every coverage series actually holds the configured number
/// of rounds — an empty series is a hole in the data, not a zero-coverage
/// word, and is rejected via
/// [`CoverageSeries::checked_final_direct_coverage`].
///
/// # Errors
///
/// Returns an error describing the first inconsistency found.
pub fn merge_shards(paths: &[PathBuf]) -> io::Result<CoverageSweep> {
    if paths.is_empty() {
        return Err(invalid("no shard files to merge".to_owned()));
    }
    let mut reference: Option<(EvaluationConfig, Vec<ProfilerKind>)> = None;
    let mut groups: BTreeMap<usize, Vec<WordEvaluation>> = BTreeMap::new();
    for path in paths {
        let text = std::fs::read_to_string(path)?;
        let json = Json::parse(&text).map_err(|e| invalid(format!("{}: {e}", path.display())))?;
        let fail = |e: String| invalid(format!("{}: {e}", path.display()));
        check_schema(&json).map_err(fail)?;
        let config = decode_config(require(&json, "config").map_err(fail)?).map_err(fail)?;
        let profilers =
            decode_profilers(require(&json, "profilers").map_err(fail)?).map_err(fail)?;
        match &reference {
            None => reference = Some((config, profilers)),
            Some((ref_config, ref_profilers)) => {
                if *ref_config != config || *ref_profilers != profilers {
                    return Err(invalid(format!(
                        "{}: shard was produced by a different sweep configuration",
                        path.display()
                    )));
                }
            }
        }
        let shard_groups = require(&json, "groups")
            .map_err(fail)?
            .as_array()
            .ok_or_else(|| invalid(format!("{}: 'groups' is not an array", path.display())))?;
        for group in shard_groups {
            let group_index = require_usize(group, "group_index").map_err(fail)?;
            let evaluations = require(group, "evaluations")
                .map_err(fail)?
                .as_array()
                .ok_or_else(|| {
                    invalid(format!(
                        "{}: group evaluations are not an array",
                        path.display()
                    ))
                })?
                .iter()
                .map(decode_evaluation)
                .collect::<Result<Vec<_>, _>>()
                .map_err(fail)?;
            if groups.insert(group_index, evaluations).is_some() {
                return Err(invalid(format!(
                    "group {group_index} appears in more than one shard"
                )));
            }
        }
    }
    let Some((config, profilers)) = reference else {
        return Err(invalid("no shard files were provided to merge"));
    };
    let expected = total_groups(&config);
    if groups.len() != expected {
        let missing: Vec<String> = (0..expected)
            .filter(|g| !groups.contains_key(g))
            .map(|g| g.to_string())
            .collect();
        return Err(invalid(format!(
            "shards cover {} of {expected} code groups; missing: {}",
            groups.len(),
            missing.join(", ")
        )));
    }
    for (group_index, evaluations) in &groups {
        for evaluation in evaluations {
            if evaluation.series.checked_final_direct_coverage().is_none()
                || evaluation.series.rounds() != config.rounds
            {
                return Err(invalid(format!(
                    "group {group_index}: a {} series holds {} of {} rounds",
                    evaluation.profiler,
                    evaluation.series.rounds(),
                    config.rounds
                )));
            }
        }
    }
    Ok(CoverageSweep {
        rounds: config.rounds,
        error_counts: config.error_counts.clone(),
        probabilities: config.probabilities.clone(),
        profilers,
        evaluations: groups.into_values().flatten().collect(),
    })
}

/// Renders a per-cell summary of a sweep for the CLI: mean final direct
/// coverage and mean missed indirect bits per (error count, probability,
/// profiler).
pub fn render_sweep_summary(sweep: &CoverageSweep) -> String {
    let mut table = TextTable::new([
        "errors",
        "probability",
        "profiler",
        "mean final direct coverage",
        "mean missed indirect",
    ]);
    for &error_count in &sweep.error_counts {
        for &probability in &sweep.probabilities {
            for &profiler in &sweep.profilers {
                let cell: Vec<&WordEvaluation> =
                    sweep.cell(profiler, error_count, probability).collect();
                let coverage: Vec<f64> = cell
                    .iter()
                    .map(|e| e.series.final_direct_coverage())
                    .collect();
                let missed: Vec<f64> = cell
                    .iter()
                    .map(|e| *e.series.missed_indirect.last().unwrap_or(&0) as f64)
                    .collect();
                table.push_row([
                    error_count.to_string(),
                    fixed(probability, 2),
                    profiler.to_string(),
                    fixed(mean(&coverage), 3),
                    fixed(mean(&missed), 2),
                ]);
            }
        }
    }
    format!(
        "Coverage sweep: {} rounds, {} words per cell\n{}",
        sweep.rounds,
        sweep.words_per_cell(),
        table.render()
    )
}

fn invalid<S: Into<String>>(message: S) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// The filesystem operations behind [`write_json_atomically`], injectable so
/// tests can assert the exact durability ordering without power-cutting the
/// host.
trait ArchiveFs {
    fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    fn sync_file(&mut self, path: &Path) -> io::Result<()>;
    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;
    fn sync_dir(&mut self, dir: &Path) -> io::Result<()>;
}

/// The real filesystem: fsync via a re-opened handle (Linux permits fsync on
/// a read-only descriptor, including directories).
struct RealFs;

impl ArchiveFs for RealFs {
    fn write(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn sync_file(&mut self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
        std::fs::File::open(dir)?.sync_all()
    }
}

/// Writes `json` to `path` so that after a crash — including power loss —
/// the path holds either the previous contents or the complete new ones:
///
/// 1. write the bytes to `path.tmp`,
/// 2. fsync the temp file (the rename must never be more durable than the
///    data it points at),
/// 3. atomically rename it over `path`,
/// 4. fsync the parent directory so the rename itself is durable.
///
/// Without steps 2 and 4 the rename is only atomic against process crashes:
/// after power loss the journal may persist the rename but not the data
/// blocks, leaving a zero-length or torn file at the final path. Exported
/// for other persistence layers (the daemon's job records) that need the
/// same crash-durability contract as the checkpoint archives.
///
/// # Errors
///
/// Returns any I/O error from writing, syncing, or renaming.
pub fn write_json_atomically(path: &Path, json: &Json) -> io::Result<()> {
    write_durably_with(&mut RealFs, path, json)
}

fn write_atomically(path: &Path, json: &Json) -> io::Result<()> {
    write_json_atomically(path, json)
}

fn write_durably_with<F: ArchiveFs>(fs: &mut F, path: &Path, json: &Json) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    fs.write(&tmp, json.render().as_bytes())?;
    fs.sync_file(&tmp)?;
    fs.rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs.sync_dir(parent)?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Codecs: hand-rolled because the vendored serde stack has no parser. Every
// encode/decode pair below is covered by a round-trip test.
// ---------------------------------------------------------------------------

fn check_schema(json: &Json) -> Result<(), String> {
    let schema = require_u64(json, "schema")?;
    if schema != CHECKPOINT_SCHEMA_VERSION {
        return Err(format!(
            "schema version {schema} is not the supported {CHECKPOINT_SCHEMA_VERSION}"
        ));
    }
    Ok(())
}

fn require<'a>(json: &'a Json, key: &str) -> Result<&'a Json, String> {
    json.get(key).ok_or_else(|| format!("missing key '{key}'"))
}

fn require_u64(json: &Json, key: &str) -> Result<u64, String> {
    require(json, key)?
        .as_u64()
        .ok_or_else(|| format!("'{key}' is not a u64"))
}

fn require_usize(json: &Json, key: &str) -> Result<usize, String> {
    require(json, key)?
        .as_usize()
        .ok_or_else(|| format!("'{key}' is not a usize"))
}

fn require_f64(json: &Json, key: &str) -> Result<f64, String> {
    require(json, key)?
        .as_f64()
        .ok_or_else(|| format!("'{key}' is not a number"))
}

fn require_str<'a>(json: &'a Json, key: &str) -> Result<&'a str, String> {
    require(json, key)?
        .as_str()
        .ok_or_else(|| format!("'{key}' is not a string"))
}

fn require_array<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], String> {
    require(json, key)?
        .as_array()
        .ok_or_else(|| format!("'{key}' is not an array"))
}

fn usize_array(json: &Json, key: &str) -> Result<Vec<usize>, String> {
    require_array(json, key)?
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| format!("'{key}' holds a non-usize"))
        })
        .collect()
}

fn f64_array(json: &Json, key: &str) -> Result<Vec<f64>, String> {
    require_array(json, key)?
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| format!("'{key}' holds a non-number"))
        })
        .collect()
}

fn encode_shard(shard: ShardSpec) -> Json {
    Json::Str(shard.to_string())
}

fn decode_shard(json: &Json) -> Result<ShardSpec, String> {
    ShardSpec::parse(json.as_str().ok_or("shard is not a string")?)
}

fn encode_profilers(profilers: &[ProfilerKind]) -> Json {
    Json::Array(
        profilers
            .iter()
            .map(|kind| Json::Str(kind.name().to_owned()))
            .collect(),
    )
}

fn decode_profilers(json: &Json) -> Result<Vec<ProfilerKind>, String> {
    json.as_array()
        .ok_or("profilers is not an array")?
        .iter()
        .map(|v| {
            let name = v.as_str().ok_or("profiler name is not a string")?;
            ProfilerKind::from_name(name).ok_or_else(|| format!("unknown profiler '{name}'"))
        })
        .collect()
}

fn decode_pattern(name: &str) -> Result<DataPattern, String> {
    [
        DataPattern::Charged,
        DataPattern::Discharged,
        DataPattern::Checkered,
        DataPattern::Random,
    ]
    .into_iter()
    .find(|pattern| pattern.name() == name)
    .ok_or_else(|| format!("unknown data pattern '{name}'"))
}

/// Encodes a sweep configuration (all fields, so an archive is
/// self-describing and resume needs no flags).
pub fn encode_config(config: &EvaluationConfig) -> Json {
    Json::Object(vec![
        ("data_bits".into(), Json::from_usize(config.data_bits)),
        ("num_codes".into(), Json::from_usize(config.num_codes)),
        (
            "words_per_code".into(),
            Json::from_usize(config.words_per_code),
        ),
        ("rounds".into(), Json::from_usize(config.rounds)),
        (
            "error_counts".into(),
            Json::Array(
                config
                    .error_counts
                    .iter()
                    .map(|&c| Json::from_usize(c))
                    .collect(),
            ),
        ),
        (
            "probabilities".into(),
            Json::Array(
                config
                    .probabilities
                    .iter()
                    .map(|&p| Json::from_f64(p))
                    .collect(),
            ),
        ),
        (
            "pattern".into(),
            Json::Str(config.pattern.name().to_owned()),
        ),
        ("base_seed".into(), Json::from_u64(config.base_seed)),
        ("threads".into(), Json::from_usize(config.threads)),
    ])
}

/// Decodes a sweep configuration written by [`encode_config`].
///
/// # Errors
///
/// Returns a description of the first missing or mistyped field, or of the
/// first [`EvaluationConfig::check`] violation — a decoded configuration is
/// untrusted input, and every consumer downstream of this point (word
/// sampling, code generation, the sharded group partition) assumes a usable
/// one.
pub fn decode_config(json: &Json) -> Result<EvaluationConfig, String> {
    let config = EvaluationConfig {
        data_bits: require_usize(json, "data_bits")?,
        num_codes: require_usize(json, "num_codes")?,
        words_per_code: require_usize(json, "words_per_code")?,
        rounds: require_usize(json, "rounds")?,
        error_counts: usize_array(json, "error_counts")?,
        probabilities: f64_array(json, "probabilities")?,
        pattern: decode_pattern(require_str(json, "pattern")?)?,
        base_seed: require_u64(json, "base_seed")?,
        threads: require_usize(json, "threads")?,
    };
    config
        .check()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    Ok(config)
}

fn encode_rng_state(state: &ChaCha8RngState) -> Json {
    Json::Object(vec![
        (
            "key".into(),
            Json::Array(
                state
                    .key
                    .iter()
                    .map(|&w| Json::from_u64(w as u64))
                    .collect(),
            ),
        ),
        ("counter".into(), Json::from_u64(state.counter)),
        ("cursor".into(), Json::from_usize(state.cursor)),
    ])
}

fn decode_rng_state(json: &Json) -> Result<ChaCha8RngState, String> {
    let key_words = require_array(json, "key")?;
    if key_words.len() != 8 {
        return Err(format!(
            "RNG key holds {} words, expected 8",
            key_words.len()
        ));
    }
    let mut key = [0u32; 8];
    for (slot, word) in key.iter_mut().zip(key_words) {
        let value = word.as_u64().ok_or("RNG key word is not a number")?;
        *slot = u32::try_from(value).map_err(|_| "RNG key word exceeds u32")?;
    }
    let cursor = require_usize(json, "cursor")?;
    // Legitimate positions are even word offsets within the 16-word block,
    // or 16 (exhausted). `ChaCha8Rng::from_state` would silently treat
    // anything >= 16 as exhausted, mispositioning the stream instead of
    // surfacing the corruption.
    if cursor > 16 || cursor % 2 != 0 {
        return Err(format!("RNG cursor {cursor} is not a valid block position"));
    }
    Ok(ChaCha8RngState {
        key,
        counter: require_u64(json, "counter")?,
        cursor,
    })
}

fn encode_bit_set(bits: &std::collections::BTreeSet<usize>) -> Json {
    Json::Array(bits.iter().map(|&b| Json::from_usize(b)).collect())
}

fn decode_bit_set(json: &Json, what: &str) -> Result<std::collections::BTreeSet<usize>, String> {
    json.as_array()
        .ok_or_else(|| format!("{what} is not an array"))?
        .iter()
        .map(|v| {
            v.as_usize()
                .ok_or_else(|| format!("{what} holds a non-usize"))
        })
        .collect()
}

fn encode_profiler_state(state: &ProfilerState) -> Json {
    Json::Object(vec![
        ("identified".into(), encode_bit_set(&state.identified)),
        (
            "observed_indirect".into(),
            encode_bit_set(&state.observed_indirect),
        ),
        (
            "crafted_rounds".into(),
            Json::from_usize(state.crafted_rounds),
        ),
    ])
}

fn decode_profiler_state(json: &Json) -> Result<ProfilerState, String> {
    Ok(ProfilerState {
        identified: decode_bit_set(require(json, "identified")?, "identified")?,
        observed_indirect: decode_bit_set(
            require(json, "observed_indirect")?,
            "observed_indirect",
        )?,
        crafted_rounds: require_usize(json, "crafted_rounds")?,
    })
}

fn encode_snapshot(snapshot: &harp_profiler::RoundSnapshot) -> Json {
    Json::Object(vec![
        ("round".into(), Json::from_usize(snapshot.round)),
        ("identified".into(), encode_bit_set(&snapshot.identified)),
        ("predicted".into(), encode_bit_set(&snapshot.predicted)),
    ])
}

fn decode_snapshot(json: &Json) -> Result<harp_profiler::RoundSnapshot, String> {
    Ok(harp_profiler::RoundSnapshot {
        round: require_usize(json, "round")?,
        identified: decode_bit_set(require(json, "identified")?, "identified")?,
        predicted: decode_bit_set(require(json, "predicted")?, "predicted")?,
    })
}

fn encode_word_checkpoint(word: &WordCheckpoint) -> Json {
    Json::Object(vec![
        ("rng".into(), encode_rng_state(&word.rng)),
        ("profiler".into(), encode_profiler_state(&word.profiler)),
        (
            "snapshots".into(),
            Json::Array(word.snapshots.iter().map(encode_snapshot).collect()),
        ),
    ])
}

fn decode_word_checkpoint(json: &Json) -> Result<WordCheckpoint, String> {
    Ok(WordCheckpoint {
        rng: decode_rng_state(require(json, "rng")?)?,
        profiler: decode_profiler_state(require(json, "profiler")?)?,
        snapshots: require_array(json, "snapshots")?
            .iter()
            .map(decode_snapshot)
            .collect::<Result<_, _>>()?,
    })
}

/// Encodes one frozen campaign (all words of one code group under one
/// profiler kind).
pub fn encode_campaign_checkpoint(checkpoint: &CampaignCheckpoint) -> Json {
    Json::Object(vec![
        ("kind".into(), Json::Str(checkpoint.kind.name().to_owned())),
        ("round".into(), Json::from_usize(checkpoint.round)),
        (
            "words".into(),
            Json::Array(
                checkpoint
                    .words
                    .iter()
                    .map(encode_word_checkpoint)
                    .collect(),
            ),
        ),
    ])
}

/// Decodes a campaign checkpoint written by [`encode_campaign_checkpoint`].
///
/// # Errors
///
/// Returns a description of the first missing or mistyped field.
pub fn decode_campaign_checkpoint(json: &Json) -> Result<CampaignCheckpoint, String> {
    let name = require_str(json, "kind")?;
    Ok(CampaignCheckpoint {
        kind: ProfilerKind::from_name(name).ok_or_else(|| format!("unknown profiler '{name}'"))?,
        round: require_usize(json, "round")?,
        words: require_array(json, "words")?
            .iter()
            .map(decode_word_checkpoint)
            .collect::<Result<_, _>>()?,
    })
}

fn encode_group<C: LinearBlockCode + Clone + Send + 'static>(
    unit: &SweepUnit<C>,
    round: usize,
) -> Json {
    Json::Object(vec![
        ("schema".into(), Json::from_u64(CHECKPOINT_SCHEMA_VERSION)),
        ("group_index".into(), Json::from_usize(unit.group_index)),
        ("cell_index".into(), Json::from_usize(unit.cell_index)),
        ("code_index".into(), Json::from_usize(unit.code_index)),
        ("round".into(), Json::from_usize(round)),
        (
            "campaigns".into(),
            Json::Array(
                unit.runs
                    .iter()
                    .map(|run| encode_campaign_checkpoint(&run.checkpoint()))
                    .collect(),
            ),
        ),
    ])
}

/// Rejects campaign checkpoints whose state cannot have come from a run over
/// this batch: wrong word count (a downstream `assert!`), a frozen round
/// disagreeing with the group file's, snapshot histories that do not span
/// the completed rounds, bit positions outside the codeword, or identified
/// sets too large for the exhaustive error-space enumeration the predicting
/// profiler kinds perform on restore.
fn validate_campaign_checkpoint(
    checkpoint: &CampaignCheckpoint,
    round: usize,
    batch_len: usize,
    codeword_len: usize,
) -> Result<(), String> {
    if checkpoint.round != round {
        return Err(format!(
            "{} campaign frozen at round {}, group file says {round}",
            checkpoint.kind, checkpoint.round
        ));
    }
    if checkpoint.words.len() != batch_len {
        return Err(format!(
            "{} campaign holds {} words, batch has {batch_len}",
            checkpoint.kind,
            checkpoint.words.len()
        ));
    }
    for (index, word) in checkpoint.words.iter().enumerate() {
        if word.snapshots.len() != round {
            return Err(format!(
                "word {index}: {} snapshots for {round} completed rounds",
                word.snapshots.len()
            ));
        }
        let out_of_range = word
            .profiler
            .identified
            .iter()
            .chain(&word.profiler.observed_indirect)
            .find(|&&bit| bit >= codeword_len);
        if let Some(bit) = out_of_range {
            return Err(format!(
                "word {index}: profiler bit {bit} outside the {codeword_len}-bit codeword"
            ));
        }
        let predicts = matches!(
            checkpoint.kind,
            ProfilerKind::HarpA | ProfilerKind::HarpABeep
        );
        if predicts && word.profiler.identified.len() > harp_ecc::ErrorSpace::MAX_AT_RISK_BITS {
            return Err(format!(
                "word {index}: {} direct bits exceed the exhaustive-analysis limit",
                word.profiler.identified.len()
            ));
        }
    }
    Ok(())
}

fn decode_group(
    json: &Json,
    manifest: &Manifest,
) -> Result<(usize, Vec<CampaignCheckpoint>), String> {
    check_schema(json)?;
    let round = require_usize(json, "round")?;
    let campaigns = require_array(json, "campaigns")?
        .iter()
        .map(decode_campaign_checkpoint)
        .collect::<Result<Vec<_>, _>>()?;
    for (checkpoint, &kind) in campaigns.iter().zip(&manifest.profilers) {
        if checkpoint.kind != kind {
            return Err(format!(
                "campaign order mismatch: found {}, manifest says {}",
                checkpoint.kind, kind
            ));
        }
    }
    Ok((round, campaigns))
}

/// The fallible series encoder: coverage fractions are *computed* means, so
/// a NaN escaping a stats pipeline must be reportable, not fatal.
fn try_encode_series(series: &CoverageSeries) -> Result<Json, NonFiniteFloat> {
    let direct_coverage = series
        .direct_coverage
        .iter()
        .map(|&c| Json::try_from_f64(c))
        .collect::<Result<Vec<Json>, NonFiniteFloat>>()?;
    Ok(Json::Object(vec![
        ("profiler".into(), Json::Str(series.profiler.clone())),
        ("direct_coverage".into(), Json::Array(direct_coverage)),
        (
            "missed_indirect".into(),
            Json::Array(
                series
                    .missed_indirect
                    .iter()
                    .map(|&m| Json::from_usize(m))
                    .collect(),
            ),
        ),
        (
            "max_simultaneous".into(),
            Json::Array(
                series
                    .max_simultaneous
                    .iter()
                    .map(|&m| Json::from_usize(m))
                    .collect(),
            ),
        ),
        (
            "bootstrap_round".into(),
            match series.bootstrap_round {
                Some(round) => Json::from_usize(round),
                None => Json::Null,
            },
        ),
        (
            "direct_truth_len".into(),
            Json::from_usize(series.direct_truth_len),
        ),
        (
            "indirect_truth_len".into(),
            Json::from_usize(series.indirect_truth_len),
        ),
    ]))
}

fn decode_series(json: &Json) -> Result<CoverageSeries, String> {
    let bootstrap = require(json, "bootstrap_round")?;
    Ok(CoverageSeries {
        profiler: require_str(json, "profiler")?.to_owned(),
        direct_coverage: f64_array(json, "direct_coverage")?,
        missed_indirect: usize_array(json, "missed_indirect")?,
        max_simultaneous: usize_array(json, "max_simultaneous")?,
        bootstrap_round: match bootstrap {
            Json::Null => None,
            value => Some(value.as_usize().ok_or("'bootstrap_round' is not a usize")?),
        },
        direct_truth_len: require_usize(json, "direct_truth_len")?,
        indirect_truth_len: require_usize(json, "indirect_truth_len")?,
    })
}

fn try_encode_evaluation(evaluation: &WordEvaluation) -> Result<Json, NonFiniteFloat> {
    Ok(Json::Object(vec![
        (
            "error_count".into(),
            Json::from_usize(evaluation.error_count),
        ),
        (
            "probability".into(),
            Json::try_from_f64(evaluation.probability)?,
        ),
        (
            "profiler".into(),
            Json::Str(evaluation.profiler.name().to_owned()),
        ),
        ("series".into(), try_encode_series(&evaluation.series)?),
    ]))
}

fn decode_evaluation(json: &Json) -> Result<WordEvaluation, String> {
    let name = require_str(json, "profiler")?;
    Ok(WordEvaluation {
        error_count: require_usize(json, "error_count")?,
        probability: require_f64(json, "probability")?,
        profiler: ProfilerKind::from_name(name)
            .ok_or_else(|| format!("unknown profiler '{name}'"))?,
        series: decode_series(require(json, "series")?)?,
    })
}

/// Encodes a completed [`CoverageSweep`] — the daemon's result payload and
/// the unit of the differential byte-identity test: the encoding is fully
/// deterministic (ordered keys, shortest-round-trip floats), so two sweeps
/// are equal iff their rendered encodings are byte-identical.
///
/// # Panics
///
/// Panics if the sweep contains a non-finite float; render paths that must
/// not panic (the daemon worker) use [`try_encode_sweep`].
pub fn encode_sweep(sweep: &CoverageSweep) -> Json {
    match try_encode_sweep(sweep) {
        Ok(json) => json,
        // lint:allow(panic) documented-panicking convenience twin; panic-free callers use try_encode_sweep
        Err(err) => panic!("{err}"),
    }
}

/// The fallible twin of [`encode_sweep`]: a NaN/∞ anywhere in the sweep —
/// e.g. a coverage mean produced by a buggy stats pipeline — surfaces as a
/// typed [`NonFiniteFloat`] so the daemon can fail the *job* instead of
/// losing the worker thread to a render panic.
///
/// # Errors
///
/// Returns the first non-finite float encountered while encoding.
pub fn try_encode_sweep(sweep: &CoverageSweep) -> Result<Json, NonFiniteFloat> {
    let probabilities = sweep
        .probabilities
        .iter()
        .map(|&p| Json::try_from_f64(p))
        .collect::<Result<Vec<Json>, NonFiniteFloat>>()?;
    let evaluations = sweep
        .evaluations
        .iter()
        .map(try_encode_evaluation)
        .collect::<Result<Vec<Json>, NonFiniteFloat>>()?;
    Ok(Json::Object(vec![
        ("schema".into(), Json::from_u64(CHECKPOINT_SCHEMA_VERSION)),
        ("rounds".into(), Json::from_usize(sweep.rounds)),
        (
            "error_counts".into(),
            Json::Array(
                sweep
                    .error_counts
                    .iter()
                    .map(|&c| Json::from_usize(c))
                    .collect(),
            ),
        ),
        ("probabilities".into(), Json::Array(probabilities)),
        ("profilers".into(), encode_profilers(&sweep.profilers)),
        ("evaluations".into(), Json::Array(evaluations)),
    ]))
}

/// Decodes a sweep written by [`encode_sweep`].
///
/// # Errors
///
/// Returns a description of the first missing or mistyped field.
pub fn decode_sweep(json: &Json) -> Result<CoverageSweep, String> {
    check_schema(json)?;
    Ok(CoverageSweep {
        rounds: require_usize(json, "rounds")?,
        error_counts: usize_array(json, "error_counts")?,
        probabilities: f64_array(json, "probabilities")?,
        profilers: decode_profilers(require(json, "profilers")?)?,
        evaluations: require_array(json, "evaluations")?
            .iter()
            .map(decode_evaluation)
            .collect::<Result<_, _>>()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::sweep::run_coverage_sweep;

    fn tiny_config() -> EvaluationConfig {
        EvaluationConfig {
            num_codes: 2,
            words_per_code: 2,
            rounds: 16,
            error_counts: vec![2, 3],
            probabilities: vec![0.5],
            threads: 2,
            ..EvaluationConfig::quick()
        }
    }

    const KINDS: [ProfilerKind; 2] = [ProfilerKind::HarpU, ProfilerKind::Naive];

    fn make_code(config: &EvaluationConfig) -> impl Fn(u64) -> HammingCode + '_ {
        |seed| HammingCode::random(config.data_bits, seed).expect("valid code")
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("harp_checkpoint_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn shard_spec_parses_and_partitions() {
        let shard = ShardSpec::parse("1/3").unwrap();
        assert_eq!(shard, ShardSpec { index: 1, count: 3 });
        assert_eq!(shard.to_string(), "1/3");
        assert!(!shard.owns(0) && shard.owns(1) && !shard.owns(2) && shard.owns(4));
        assert!(ShardSpec::full().owns(17));
        for bad in ["2", "a/3", "1/x", "3/3", "0/0"] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn resumable_sweep_matches_the_one_shot_path() {
        let config = tiny_config();
        let reference = run_coverage_sweep(&config, &KINDS);
        let mut sweep = ResumableSweep::new(&config, &KINDS, make_code(&config));
        assert_eq!(sweep.num_groups(), total_groups(&config));
        sweep.advance(config.rounds);
        assert!(sweep.is_complete());
        assert_eq!(sweep.into_sweep(), reference);
    }

    #[test]
    fn advancing_in_uneven_chunks_changes_nothing() {
        let config = tiny_config();
        let reference = run_coverage_sweep(&config, &KINDS);
        let mut sweep = ResumableSweep::new(&config, &KINDS, make_code(&config));
        for chunk in [1, 5, 3, 100] {
            sweep.advance(chunk);
        }
        assert_eq!(sweep.round(), config.rounds);
        assert_eq!(sweep.into_sweep(), reference);
    }

    #[test]
    fn archive_round_trips_through_disk() {
        let config = tiny_config();
        let dir = temp_dir("archive");
        let reference = run_coverage_sweep(&config, &KINDS);

        let mut sweep = ResumableSweep::new(&config, &KINDS, make_code(&config));
        sweep.advance(7);
        sweep.write_archive(&dir).unwrap();

        let manifest = read_manifest(&dir).unwrap();
        assert_eq!(manifest.round, 7);
        assert_eq!(manifest.config, config);
        assert_eq!(manifest.profilers, KINDS.to_vec());

        let mut resumed = ResumableSweep::resume(&dir, make_code(&config)).unwrap();
        assert_eq!(resumed.round(), 7);
        resumed.advance(config.rounds);
        assert_eq!(resumed.into_sweep(), reference);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression: a crash *during* `write_archive` can leave group files
    /// the interrupted generation already renamed into place alongside the
    /// previous generation's manifest. Such a torn archive must resume (the
    /// ahead groups hold position while the rest catch up) and finish
    /// identically to the uninterrupted run — it must not be rejected as
    /// corrupt, which would strand the campaign.
    #[test]
    fn torn_archives_with_ahead_groups_resume_cleanly() {
        let config = tiny_config();
        let dir = temp_dir("torn");
        let newer = temp_dir("torn_newer");
        let reference = run_coverage_sweep(&config, &KINDS);

        let mut sweep = ResumableSweep::new(&config, &KINDS, make_code(&config));
        sweep.advance(5);
        sweep.write_archive(&dir).unwrap();
        sweep.advance(4);
        sweep.write_archive(&newer).unwrap();

        // Simulate the interrupted generation: one group file from round 9
        // lands in the round-5 archive, manifest still says 5.
        let torn_group = group_file_name(0, 0);
        std::fs::copy(newer.join(&torn_group), dir.join(&torn_group)).unwrap();

        let mut resumed = ResumableSweep::resume(&dir, make_code(&config)).unwrap();
        assert_eq!(resumed.round(), 5);
        resumed.advance(config.rounds);
        assert!(resumed.is_complete());
        assert_eq!(resumed.into_sweep(), reference);

        // A group *behind* the manifest is still corruption: write_archive
        // never renames the manifest before its groups, so an older group
        // under a newer manifest cannot come from a crash.
        let stale_group = group_file_name(0, 1);
        std::fs::copy(dir.join(&stale_group), newer.join(&stale_group)).unwrap();
        let err = ResumableSweep::<HammingCode>::resume(&newer, make_code(&config)).unwrap_err();
        assert!(err.to_string().contains("frozen at round"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&newer).unwrap();
    }

    #[test]
    fn two_shards_merge_into_the_single_process_sweep() {
        let config = tiny_config();
        let dir = temp_dir("merge");
        std::fs::create_dir_all(&dir).unwrap();
        let reference = run_coverage_sweep(&config, &KINDS);

        let mut paths = Vec::new();
        for index in 0..2 {
            let shard = ShardSpec { index, count: 2 };
            let mut worker = ResumableSweep::sharded(&config, &KINDS, shard, make_code(&config));
            assert!(worker.num_groups() < total_groups(&config));
            worker.advance(config.rounds);
            let path = dir.join(shard_file_name(shard));
            worker.write_shard_output(&path).unwrap();
            paths.push(path);
        }
        assert_eq!(merge_shards(&paths).unwrap(), reference);

        // A missing shard is a hard error naming the holes.
        let err = merge_shards(&paths[..1]).unwrap_err();
        assert!(err.to_string().contains("missing"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn config_and_checkpoint_codecs_round_trip() {
        let config = tiny_config();
        assert_eq!(decode_config(&encode_config(&config)).unwrap(), config);

        let code = HammingCode::random(32, 9).unwrap();
        let batch = CampaignBatch::new(
            code,
            vec![BatchWord::new(
                harp_memsim::FaultModel::uniform(&[3, 17], 0.5),
                DataPattern::Random,
                0xFEED_F00D_D00D_5EED,
            )],
        );
        for kind in ProfilerKind::ALL {
            let mut run = BatchRun::new(&batch, kind);
            run.advance(9);
            let checkpoint = run.checkpoint();
            let json = encode_campaign_checkpoint(&checkpoint);
            let reparsed = Json::parse(&json.render()).unwrap();
            assert_eq!(
                decode_campaign_checkpoint(&reparsed).unwrap(),
                checkpoint,
                "{kind}"
            );
        }
    }

    #[test]
    fn sweep_summary_renders_every_cell() {
        let config = tiny_config();
        let sweep = run_coverage_sweep(&config, &KINDS);
        let rendered = render_sweep_summary(&sweep);
        assert!(rendered.contains("Coverage sweep: 16 rounds"));
        assert!(rendered.contains("HARP-U"));
        assert!(rendered.contains("Naive"));
    }

    #[test]
    fn corrupt_archives_are_rejected_not_misread() {
        let config = tiny_config();
        let dir = temp_dir("corrupt");
        let mut sweep = ResumableSweep::new(&config, &KINDS, make_code(&config));
        sweep.advance(3);
        sweep.write_archive(&dir).unwrap();

        // Wrong schema version in the manifest.
        let manifest_path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path).unwrap();
        std::fs::write(
            &manifest_path,
            text.replacen("\"schema\":1", "\"schema\":999", 1),
        )
        .unwrap();
        let err = ResumableSweep::<HammingCode>::resume(&dir, make_code(&config)).unwrap_err();
        assert!(err.to_string().contains("schema"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// An [`ArchiveFs`] that records the operation sequence instead of
    /// touching disk, so the durability ordering is asserted directly.
    #[derive(Default)]
    struct RecordingFs {
        ops: Vec<String>,
    }

    impl ArchiveFs for RecordingFs {
        fn write(&mut self, path: &Path, _bytes: &[u8]) -> io::Result<()> {
            self.ops.push(format!("write {}", path.display()));
            Ok(())
        }

        fn sync_file(&mut self, path: &Path) -> io::Result<()> {
            self.ops.push(format!("sync_file {}", path.display()));
            Ok(())
        }

        fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
            self.ops
                .push(format!("rename {} -> {}", from.display(), to.display()));
            Ok(())
        }

        fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
            self.ops.push(format!("sync_dir {}", dir.display()));
            Ok(())
        }
    }

    /// Regression: the writer used to skip both fsyncs, so after power loss
    /// a journalled rename could land while the renamed file's data blocks
    /// did not — a durable manifest pointing at zero-length group files.
    /// The durable sequence is exactly: write temp, sync temp *before* the
    /// rename, rename, sync the parent directory after.
    #[test]
    fn durable_write_syncs_file_before_rename_and_directory_after() {
        let mut fs = RecordingFs::default();
        write_durably_with(&mut fs, Path::new("/archive/MANIFEST.json"), &Json::Null).unwrap();
        assert_eq!(
            fs.ops,
            vec![
                "write /archive/MANIFEST.json.tmp",
                "sync_file /archive/MANIFEST.json.tmp",
                "rename /archive/MANIFEST.json.tmp -> /archive/MANIFEST.json",
                "sync_dir /archive",
            ]
        );
    }

    #[test]
    fn corrupt_rng_cursors_are_rejected() {
        let state = ChaCha8RngState {
            key: [7; 8],
            counter: 3,
            cursor: 6,
        };
        let encoded = encode_rng_state(&state);
        assert_eq!(decode_rng_state(&encoded).unwrap(), state);
        for bad_cursor in [17usize, 5, 100] {
            let text = encoded
                .render()
                .replace("\"cursor\":6", &format!("\"cursor\":{bad_cursor}"));
            let err = decode_rng_state(&Json::parse(&text).unwrap()).unwrap_err();
            assert!(err.contains("cursor"), "{bad_cursor}: {err}");
        }
    }

    /// Regression: these corruptions used to panic past the decode layer —
    /// a word-count mismatch tripped `BatchRun::resume`'s assert, and an
    /// oversized identified set tripped the exhaustive-enumeration assert
    /// inside the predicting profilers' `restore`. Both must surface as
    /// `Err` from `resume`.
    #[test]
    fn corrupt_group_state_is_an_error_not_a_panic() {
        let config = tiny_config();
        let kinds = [ProfilerKind::HarpA, ProfilerKind::Naive];
        let dir = temp_dir("corrupt_group");
        let mut sweep = ResumableSweep::new(&config, &kinds, make_code(&config));
        sweep.advance(2);
        sweep.write_archive(&dir).unwrap();
        let group_path = dir.join(group_file_name(0, 0));
        let pristine = std::fs::read_to_string(&group_path).unwrap();

        // Drop one word from the first campaign.
        let json = Json::parse(&pristine).unwrap();
        let mutate = |mutated: Json| {
            std::fs::write(&group_path, mutated.render()).unwrap();
            ResumableSweep::<HammingCode>::resume(&dir, make_code(&config)).unwrap_err()
        };
        let mut fewer_words = json.clone();
        if let Json::Object(entries) = &mut fewer_words {
            for (key, value) in entries {
                if key == "campaigns" {
                    if let Json::Array(campaigns) = value {
                        if let Json::Object(campaign) = &mut campaigns[0] {
                            for (ckey, cvalue) in campaign {
                                if ckey == "words" {
                                    if let Json::Array(words) = cvalue {
                                        words.pop();
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = mutate(fewer_words);
        assert!(err.to_string().contains("words"), "{err}");

        // Overwrite campaign 0 / word 0's *profiler* identified set (the
        // snapshots also carry sets named "identified", which resume does
        // not feed into restore).
        let poison_identified = |bits: Vec<usize>| {
            let mut poisoned = json.clone();
            let entry = |object: &mut Json, key: &str| -> Json {
                match object {
                    Json::Object(entries) => entries
                        .iter_mut()
                        .find(|(k, _)| k == key)
                        .map(|(_, v)| std::mem::replace(v, Json::Null))
                        .unwrap(),
                    _ => panic!("not an object"),
                }
            };
            let put = |object: &mut Json, key: &str, value: Json| match object {
                Json::Object(entries) => {
                    entries.iter_mut().find(|(k, _)| k == key).unwrap().1 = value;
                }
                _ => panic!("not an object"),
            };
            let mut campaigns = entry(&mut poisoned, "campaigns");
            if let Json::Array(list) = &mut campaigns {
                let mut words = entry(&mut list[0], "words");
                if let Json::Array(word_list) = &mut words {
                    let mut profiler = entry(&mut word_list[0], "profiler");
                    put(
                        &mut profiler,
                        "identified",
                        Json::Array(bits.iter().map(|&b| Json::from_usize(b)).collect()),
                    );
                    put(&mut word_list[0], "profiler", profiler);
                }
                put(&mut list[0], "words", words);
            }
            put(&mut poisoned, "campaigns", campaigns);
            poisoned
        };

        // Past the exhaustive-analysis limit for the predicting HARP-A
        // campaign: used to abort inside `restore`'s enumeration assert.
        let err = mutate(poison_identified((0..30).collect()));
        assert!(err.to_string().contains("exhaustive-analysis"), "{err}");

        // A profiler bit outside the codeword.
        let err = mutate(poison_identified(vec![9999]));
        assert!(err.to_string().contains("outside"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A manifest carrying an unusable configuration (here `data_bits: 0`,
    /// which used to panic deep inside code generation) is rejected at
    /// decode time with a user-facing message.
    #[test]
    fn corrupt_manifest_configs_fail_decode() {
        let config = tiny_config();
        let dir = temp_dir("corrupt_config");
        let mut sweep = ResumableSweep::new(&config, &KINDS, make_code(&config));
        sweep.advance(1);
        sweep.write_archive(&dir).unwrap();
        let manifest_path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&manifest_path).unwrap();
        std::fs::write(
            &manifest_path,
            text.replacen("\"data_bits\":64", "\"data_bits\":0", 1),
        )
        .unwrap();
        let err = read_manifest(&dir).unwrap_err();
        assert!(err.to_string().contains("data_bits"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sweep_codec_round_trips_byte_identically() {
        let config = tiny_config();
        let sweep = run_coverage_sweep(&config, &KINDS);
        let encoded = encode_sweep(&sweep);
        let rendered = encoded.render();
        let reparsed = Json::parse(&rendered).unwrap();
        assert_eq!(decode_sweep(&reparsed).unwrap(), sweep);
        // Deterministic: re-encoding the decoded sweep reproduces the bytes.
        assert_eq!(
            encode_sweep(&decode_sweep(&reparsed).unwrap()).render(),
            rendered
        );
    }

    /// Regression: a NaN coverage mean used to panic the encoder (and with
    /// it the daemon worker rendering `RESULT.json`). The fallible encoder
    /// must surface it as a typed error instead.
    #[test]
    fn try_encode_sweep_reports_non_finite_floats_instead_of_panicking() {
        let config = tiny_config();
        let mut sweep = run_coverage_sweep(&config, &KINDS);
        assert!(try_encode_sweep(&sweep).is_ok());
        sweep.evaluations[0].series.direct_coverage[0] = f64::NAN;
        let err = try_encode_sweep(&sweep).unwrap_err();
        assert!(err.value.is_nan());
        assert!(err.to_string().contains("cannot represent"));
    }

    #[test]
    fn progress_tracks_mean_direct_coverage() {
        let config = tiny_config();
        let mut sweep = ResumableSweep::new(&config, &KINDS, make_code(&config));
        let start = sweep.progress();
        assert_eq!(start.len(), KINDS.len());
        assert!(start.iter().all(|&(_, coverage)| coverage == 0.0));
        sweep.advance(config.rounds);
        let done = sweep.progress();
        assert_eq!(
            done.iter().map(|&(kind, _)| kind).collect::<Vec<_>>(),
            KINDS.to_vec()
        );
        // HARP-U reaches full direct coverage on these tiny words; Naive
        // generally does not beat it.
        let final_of = |kind: ProfilerKind| {
            done.iter()
                .find(|&&(k, _)| k == kind)
                .map(|&(_, coverage)| coverage)
                .unwrap()
        };
        assert!(final_of(ProfilerKind::HarpU) > 0.9);
        assert!(final_of(ProfilerKind::HarpU) >= final_of(ProfilerKind::Naive));
    }
}
