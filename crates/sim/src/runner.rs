//! Parallel Monte-Carlo execution.
//!
//! The paper parallelizes its simulations across compute-cluster jobs
//! (§A.7); here the same sharding happens across worker threads using
//! `std::thread::scope`. Work items are processed in deterministic order per
//! shard and results are returned in input order, so parallel and sequential
//! runs produce identical output.

/// Maps `f` over `items` using `threads` worker threads (0 = one per
/// available CPU), preserving input order in the output.
///
/// # Example
///
/// ```
/// let squares = harp_sim::runner::parallel_map(&[1, 2, 3, 4], 2, |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let worker_count = effective_threads(threads).min(items.len());
    if worker_count <= 1 {
        return items.iter().map(&f).collect();
    }

    let mut results: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    let chunk_size = items.len().div_ceil(worker_count);

    std::thread::scope(|scope| {
        let mut remaining: &mut [Option<U>] = &mut results;
        for chunk in items.chunks(chunk_size) {
            let (chunk_results, rest) = remaining.split_at_mut(chunk.len());
            remaining = rest;
            let f = &f;
            scope.spawn(move || {
                for (i, item) in chunk.iter().enumerate() {
                    chunk_results[i] = Some(f(item));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every work item produces a result"))
        .collect()
}

/// Maps `f` over mutable `items` using `threads` worker threads (0 = one per
/// available CPU), preserving input order in the output. The mutable twin of
/// [`parallel_map`], for stateful work units that are advanced in place —
/// e.g. resumable campaign engines stepped between checkpoints.
pub fn parallel_map_mut<T, U, F>(items: &mut [T], threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(&mut T) -> U + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let worker_count = effective_threads(threads).min(items.len());
    if worker_count <= 1 {
        return items.iter_mut().map(&f).collect();
    }

    let mut results: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    let chunk_size = items.len().div_ceil(worker_count);

    std::thread::scope(|scope| {
        let mut remaining: &mut [Option<U>] = &mut results;
        for chunk in items.chunks_mut(chunk_size) {
            let (chunk_results, rest) = remaining.split_at_mut(chunk.len());
            remaining = rest;
            let f = &f;
            scope.spawn(move || {
                for (i, item) in chunk.iter_mut().enumerate() {
                    chunk_results[i] = Some(f(item));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|r| r.expect("every work item produces a result"))
        .collect()
}

/// Resolves a thread-count setting (0 = one per available CPU).
pub fn effective_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled = parallel_map(&items, 4, |&x| x * 2);
        assert_eq!(doubled.len(), 1000);
        for (i, &v) in doubled.iter().enumerate() {
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let items: Vec<u64> = (0..257).collect();
        let sequential = parallel_map(&items, 1, |&x| x.wrapping_mul(0x9E3779B9));
        let parallel = parallel_map(&items, 8, |&x| x.wrapping_mul(0x9E3779B9));
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map(&empty, 4, |&x| x).is_empty());
    }

    #[test]
    fn single_item_runs_inline() {
        assert_eq!(parallel_map(&[7], 16, |&x| x + 1), vec![8]);
    }

    #[test]
    fn effective_threads_resolves_zero_to_cpu_count() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1, 2, 3];
        assert_eq!(parallel_map(&items, 64, |&x| x), vec![1, 2, 3]);
    }

    #[test]
    fn parallel_map_mut_mutates_in_place_and_preserves_order() {
        let mut items: Vec<usize> = (0..100).collect();
        let previous = parallel_map_mut(&mut items, 4, |x| {
            let old = *x;
            *x += 1;
            old
        });
        assert_eq!(previous, (0..100).collect::<Vec<_>>());
        assert_eq!(items, (1..101).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_mut_matches_sequential() {
        let mut sequential: Vec<u64> = (0..257).collect();
        let mut parallel = sequential.clone();
        let step = |x: &mut u64| {
            *x = x.wrapping_mul(0x9E3779B9);
            *x
        };
        assert_eq!(
            parallel_map_mut(&mut sequential, 1, step),
            parallel_map_mut(&mut parallel, 8, step)
        );
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn parallel_map_mut_handles_empty_input() {
        let mut empty: Vec<u32> = Vec::new();
        assert!(parallel_map_mut(&mut empty, 4, |x| *x).is_empty());
    }
}
