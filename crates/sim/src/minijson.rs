//! A minimal self-contained JSON tree: writer **and** parser.
//!
//! The workspace's vendored `serde_json` renders results for archiving but
//! deliberately has no parser, which is fine for write-only experiment
//! archives. Checkpoint/resume needs the round trip: a sweep frozen by one
//! process must be reloaded — byte-exactly — by another. This module keeps
//! that round trip honest with two properties the checkpoint layer depends
//! on:
//!
//! * **Numbers are raw literals.** [`Json::Number`] stores the literal text,
//!   so `u64` seeds and RNG block counters never pass through `f64` (which
//!   silently truncates above 2^53). Writing a parsed number re-emits the
//!   original literal unchanged.
//! * **Floats round-trip exactly.** `f64` values are rendered with Rust's
//!   shortest round-trip `Display`, so `literal.parse::<f64>()` recovers the
//!   identical bit pattern.
//!
//! The parser is also the daemon's wire codec, so it must stay panic-free on
//! untrusted bytes: nesting is bounded by [`MAX_DEPTH`] (a deeply nested
//! `[[[[…]]]]` payload returns a [`ParseError`] instead of overflowing the
//! stack), and duplicate object keys are rejected at parse time — two
//! `"rounds"` keys in a corrupt archive are corruption, not a choice for
//! [`Json::get`] to resolve silently.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or constructed JSON value.
///
/// Objects preserve insertion order (they are association lists, not maps),
/// so a value rendered, parsed, and re-rendered is byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw literal text (e.g. `"18446744073709551615"`).
    Number(String),
    /// A string (unescaped content).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as an ordered association list.
    Object(Vec<(String, Json)>),
}

/// Maximum container nesting depth [`Json::parse`] accepts.
///
/// Checkpoint archives nest a handful of levels and wire frames even fewer;
/// 128 is far above any legitimate payload while keeping the recursive
/// parser's stack usage bounded on adversarial input.
pub const MAX_DEPTH: usize = 128;

/// A parse failure: what went wrong and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

/// A render-side failure: a float with no JSON representation (NaN or ±∞).
///
/// This is a *typed* error so render paths that handle untrusted or
/// computed values — the daemon's snapshot and `RESULT.json` frames — can
/// surface it as a failed job instead of panicking a worker thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteFloat {
    /// The offending value.
    pub value: f64,
}

impl std::fmt::Display for NonFiniteFloat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON cannot represent {}", self.value)
    }
}

impl std::error::Error for NonFiniteFloat {}

impl Json {
    /// Builds a number from an unsigned integer without loss.
    pub fn from_u64(value: u64) -> Self {
        Json::Number(value.to_string())
    }

    /// Builds a number from a `usize` without loss.
    pub fn from_usize(value: usize) -> Self {
        Json::Number(value.to_string())
    }

    /// Builds a number from a finite `f64` using the shortest representation
    /// that parses back to the identical value.
    ///
    /// Use [`Json::try_from_f64`] wherever the value is computed rather than
    /// constructed — a NaN from a stats pipeline must become an error frame,
    /// not a dead worker thread.
    ///
    /// # Panics
    ///
    /// Panics on non-finite values (JSON has no representation for them).
    pub fn from_f64(value: f64) -> Self {
        match Json::try_from_f64(value) {
            Ok(json) => json,
            // lint:allow(panic) documented-panicking convenience twin; panic-free callers use try_from_f64
            Err(err) => panic!("{err}"),
        }
    }

    /// The fallible twin of [`Json::from_f64`]: returns a typed
    /// [`NonFiniteFloat`] error instead of panicking when `value` has no
    /// JSON representation.
    ///
    /// # Errors
    ///
    /// Returns [`NonFiniteFloat`] for NaN and ±∞.
    pub fn try_from_f64(value: f64) -> Result<Self, NonFiniteFloat> {
        if !value.is_finite() {
            return Err(NonFiniteFloat { value });
        }
        Ok(Json::Number(format!("{value}")))
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a number with an exact `u64` literal.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a number with an exact `usize`
    /// literal.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object. Parsed objects never hold duplicate keys
    /// ([`Json::parse`] rejects them); for hand-constructed objects the first
    /// match wins.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(raw) => out.push_str(raw),
            Json::Str(s) => render_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Object(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text into a tree.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on malformed input or trailing garbage —
    /// including containers nested deeper than [`MAX_DEPTH`] and objects
    /// with duplicate keys.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

/// Convenience: objects as sorted-key maps for comparisons that must ignore
/// key order (e.g. schema checks). Arrays keep their order.
pub fn object_keys(value: &Json) -> BTreeMap<&str, &Json> {
    match value {
        Json::Object(entries) => entries
            .iter()
            .map(|(key, val)| (key.as_str(), val))
            .collect(),
        _ => BTreeMap::new(),
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn expect_literal(&mut self, literal: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn parse_value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null", Json::Null),
            Some(b't') => self.expect_literal("true", Json::Bool(true)),
            Some(b'f') => self.expect_literal("false", Json::Bool(false)),
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    /// Charges one level of the nesting budget for the duration of a
    /// container body. The recursion this bounds is `parse_value` →
    /// `parse_array`/`parse_object` → `parse_value`; without the budget a
    /// deeply nested input aborts the process via stack overflow instead of
    /// returning an error.
    fn enter(&mut self) -> Result<(), ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.error(&format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        Ok(())
    }

    fn parse_array(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, ParseError> {
        self.expect_byte(b'{')?;
        self.enter()?;
        let mut entries: Vec<(String, Json)> = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            if entries.iter().any(|(existing, _)| *existing == key) {
                return Err(self.error(&format!("duplicate key \"{key}\" in object")));
            }
            self.skip_whitespace();
            self.expect_byte(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain (non-escape, non-quote) bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and the run breaks only at ASCII
                // bytes, so the slice lies on char boundaries.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.error("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected digits after '.'"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected digits in exponent"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            // lint:allow(panic) the scanned range contains only ASCII digits, sign, dot, and exponent bytes
            .expect("number literals are ASCII");
        Ok(Json::Number(raw.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_the_scalar_values() {
        for (value, text) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Bool(false), "false"),
            (Json::from_u64(42), "42"),
            (Json::Str("hi".into()), "\"hi\""),
        ] {
            assert_eq!(value.render(), text);
            assert_eq!(Json::parse(text).unwrap(), value);
        }
    }

    #[test]
    fn u64_round_trips_above_the_f64_integer_limit() {
        // 2^53 + 1 and u64::MAX are exactly the values an f64 detour loses.
        for value in [(1u64 << 53) + 1, u64::MAX, 0x5EED_CAFE_F00D] {
            let json = Json::from_u64(value);
            let reparsed = Json::parse(&json.render()).unwrap();
            assert_eq!(reparsed.as_u64(), Some(value));
            // The raw literal is preserved verbatim.
            assert_eq!(reparsed.render(), value.to_string());
        }
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for value in [0.1, 0.25, 1.0 / 3.0, 1e-12, 123456.789, f64::MIN_POSITIVE] {
            let reparsed = Json::parse(&Json::from_f64(value).render()).unwrap();
            assert_eq!(reparsed.as_f64().unwrap().to_bits(), value.to_bits());
        }
    }

    #[test]
    fn nested_structures_round_trip_byte_identically() {
        let value = Json::Object(vec![
            ("schema".into(), Json::from_u64(1)),
            (
                "words".into(),
                Json::Array(vec![
                    Json::Object(vec![
                        ("seed".into(), Json::from_u64(u64::MAX)),
                        ("bits".into(), Json::Array(vec![Json::from_usize(3)])),
                    ]),
                    Json::Null,
                ]),
            ),
            ("name".into(), Json::Str("HARP-A+BEEP \"quoted\"\n".into())),
        ]);
        let text = value.render();
        let reparsed = Json::parse(&text).unwrap();
        assert_eq!(reparsed, value);
        assert_eq!(reparsed.render(), text);
    }

    #[test]
    fn accessors_navigate_objects_and_arrays() {
        let value = Json::parse(r#"{"a": [1, 2.5, "x"], "b": {"c": true}}"#).unwrap();
        let items = value.get("a").unwrap().as_array().unwrap();
        assert_eq!(items[0].as_usize(), Some(1));
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(items[2].as_str(), Some("x"));
        assert_eq!(
            value.get("b").unwrap().get("c").unwrap().as_bool(),
            Some(true)
        );
        assert!(value.get("missing").is_none());
        assert_eq!(object_keys(&value).len(), 2);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::Str("tab\t nl\n quote\" backslash\\ nul\u{1} é".into());
        let reparsed = Json::parse(&original.render()).unwrap();
        assert_eq!(reparsed, original);
        // Standard escapes from foreign writers parse too.
        assert_eq!(
            Json::parse(r#""a\/bA\b\f""#).unwrap(),
            Json::Str("a/bA\u{8}\u{c}".into())
        );
    }

    #[test]
    fn malformed_input_is_rejected_with_an_offset() {
        for bad in ["{", "[1,", "\"open", "12..5", "nul", "{\"a\" 1}", "1 2", ""] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.offset <= bad.len(), "{bad}: {err}");
        }
    }

    #[test]
    fn scientific_notation_parses_and_preserves_its_literal() {
        let parsed = Json::parse("1.5e-3").unwrap();
        assert_eq!(parsed.as_f64(), Some(0.0015));
        assert_eq!(parsed.render(), "1.5e-3");
    }

    #[test]
    #[should_panic(expected = "cannot represent")]
    fn non_finite_floats_are_rejected() {
        let _ = Json::from_f64(f64::NAN);
    }

    /// Regression: render paths that cannot afford a panic (the daemon's
    /// snapshot/result frames) need a typed error for non-finite floats.
    #[test]
    fn try_from_f64_reports_non_finite_values_as_typed_errors() {
        for value in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Json::try_from_f64(value).unwrap_err();
            assert_eq!(err.value.to_bits(), value.to_bits());
            assert!(err.to_string().contains("cannot represent"));
        }
        assert_eq!(Json::try_from_f64(0.5), Ok(Json::Number("0.5".to_owned())));
    }

    /// Regression: before the depth budget, this input recursed once per
    /// bracket and aborted the process via stack overflow — an abort, not an
    /// `Err`, so a corrupt archive or a hostile wire payload could kill the
    /// daemon.
    #[test]
    fn deep_nesting_is_an_error_not_a_stack_overflow() {
        for (open, close) in [("[", "]"), ("{\"k\":", "}")] {
            let depth = 100_000;
            let text = format!("{}null{}", open.repeat(depth), close.repeat(depth));
            let err = Json::parse(&text).unwrap_err();
            assert!(err.message.contains("nesting deeper"), "{err}");
        }
    }

    #[test]
    fn nesting_up_to_the_limit_parses() {
        let ok = format!("{}null{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!(
            "{}null{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&too_deep).is_err());
        // The budget is per-nesting-level, not cumulative: many sibling
        // containers at modest depth parse fine.
        let siblings = format!("[{}]", vec!["[[null]]"; 64].join(","));
        assert!(Json::parse(&siblings).is_ok());
    }

    /// Regression: duplicate keys used to parse silently, with [`Json::get`]
    /// returning whichever came first — so a corrupt archive carrying two
    /// `"rounds"` keys was misread instead of rejected.
    #[test]
    fn duplicate_object_keys_are_rejected() {
        for bad in [
            r#"{"rounds":1,"rounds":2}"#,
            r#"{"a":{"x":1,"x":2}}"#,
            r#"{"a":1,"b":2,"a":3}"#,
            r#"[{"k":0,"k":0}]"#,
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(err.message.contains("duplicate key"), "{bad}: {err}");
        }
        // The same key in *different* objects is fine.
        assert!(Json::parse(r#"{"a":{"k":1},"b":{"k":2}}"#).is_ok());
        assert!(Json::parse(r#"[{"k":1},{"k":2}]"#).is_ok());
    }
}
