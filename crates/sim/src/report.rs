//! Plain-text table rendering.
//!
//! The paper presents its results as matplotlib figures; this reproduction
//! prints the same series as aligned plain-text tables (and the results are
//! serde-serializable for archival), which carries the same information
//! without a plotting dependency.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than the header.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells, expected {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_owned()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a probability as a percentage (e.g. `0.5` → `"50%"`).
pub fn percent(p: f64) -> String {
    format!("{:.0}%", p * 100.0)
}

/// Formats a float with a fixed number of significant decimals for tables.
pub fn fixed(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a rate in scientific notation (e.g. BERs).
pub fn scientific(value: f64) -> String {
    if value == 0.0 {
        "0".to_owned()
    } else {
        format!("{value:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut table = TextTable::new(["name", "value"]);
        table.push_row(["alpha", "1"]);
        table.push_row(["b", "12345"]);
        let rendered = table.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("----"));
        assert!(lines[2].contains("alpha"));
        assert!(lines[3].contains("12345"));
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn mismatched_row_length_panics() {
        let mut table = TextTable::new(["a", "b"]);
        table.push_row(["only one"]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let table = TextTable::new(["x"]);
        assert!(table.is_empty());
        assert_eq!(table.render().lines().count(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(percent(0.25), "25%");
        assert_eq!(percent(1.0), "100%");
        assert_eq!(fixed(0.123456, 3), "0.123");
        assert_eq!(scientific(0.0), "0");
        assert_eq!(scientific(1.0e-4), "1.00e-4");
    }
}
