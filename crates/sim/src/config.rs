//! Evaluation configuration: how many codes, words, rounds, and which error
//! parameters to sweep.
//!
//! The paper's full configuration (§A.8) simulates ~2,769 random parity-check
//! matrices and over a million ECC words, consuming ~14 CPU-years. Its
//! appendix explicitly notes that the conclusions are already apparent with
//! far fewer samples; the [`EvaluationConfig::quick`] preset is tuned to run
//! the whole suite in seconds while preserving every qualitative trend, and
//! [`EvaluationConfig::paper_scale`] scales the sample counts up for longer
//! runs.

use serde::{Deserialize, Serialize};

use harp_memsim::pattern::DataPattern;

/// Parameters shared by the Monte-Carlo experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationConfig {
    /// Dataword length of the on-die ECC code (64 → a (71, 64) code).
    pub data_bits: usize,
    /// Number of randomly generated ECC codes (parity-check matrices).
    pub num_codes: usize,
    /// Number of ECC words simulated per code.
    pub words_per_code: usize,
    /// Number of active-profiling rounds per word (the paper uses 128).
    pub rounds: usize,
    /// Numbers of pre-correction errors injected per ECC word (Fig. 6-9 sweep
    /// 2–5; Fig. 4 sweeps 2–8).
    pub error_counts: Vec<usize>,
    /// Per-bit pre-correction error probabilities (the paper sweeps 25%, 50%,
    /// 75%, 100%).
    pub probabilities: Vec<f64>,
    /// Data-pattern family used for standard profiling rounds.
    pub pattern: DataPattern,
    /// Base random seed; every code/word/probability combination derives its
    /// own deterministic stream from it.
    pub base_seed: u64,
    /// Number of worker threads for the parallel runner (0 = one per CPU).
    pub threads: usize,
}

impl EvaluationConfig {
    /// A laptop-friendly configuration that runs every experiment in seconds
    /// while preserving the paper's qualitative trends.
    pub fn quick() -> Self {
        Self {
            data_bits: 64,
            num_codes: 4,
            words_per_code: 12,
            rounds: 128,
            error_counts: vec![2, 3, 4, 5],
            probabilities: vec![0.25, 0.5, 0.75, 1.0],
            pattern: DataPattern::Random,
            base_seed: 0x11A2_2021,
            threads: 0,
        }
    }

    /// A smaller configuration used by unit/integration tests and benches.
    pub fn smoke() -> Self {
        Self {
            num_codes: 2,
            words_per_code: 4,
            rounds: 64,
            error_counts: vec![2, 4],
            probabilities: vec![0.5, 1.0],
            ..Self::quick()
        }
    }

    /// A configuration approaching the paper's sample counts. Expect hours of
    /// runtime.
    pub fn paper_scale() -> Self {
        Self {
            num_codes: 64,
            words_per_code: 128,
            ..Self::quick()
        }
    }

    /// Returns a copy configured for a (136, 128) on-die ECC code — the
    /// longer code the paper uses to verify that its observations hold
    /// (§7.1.2).
    pub fn with_long_code(mut self) -> Self {
        self.data_bits = 128;
        self
    }

    /// Total number of ECC words simulated per (error count, probability)
    /// configuration.
    pub fn words_total(&self) -> usize {
        self.num_codes * self.words_per_code
    }

    /// Checks internal consistency, returning a description of the first
    /// problem found. Use this on configurations from untrusted sources
    /// (checkpoint archives, wire payloads) where a bad value must surface
    /// as an error, not a panic.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration is unusable (zero samples,
    /// probabilities outside `[0, 1]`, or error counts that exceed the
    /// exhaustive-analysis limit).
    pub fn check(&self) -> Result<(), String> {
        if self.data_bits == 0 {
            return Err("data_bits must be nonzero".to_owned());
        }
        if self.num_codes == 0 {
            return Err("num_codes must be nonzero".to_owned());
        }
        if self.words_per_code == 0 {
            return Err("words_per_code must be nonzero".to_owned());
        }
        if self.rounds == 0 {
            return Err("rounds must be nonzero".to_owned());
        }
        if self.error_counts.is_empty() {
            return Err("error_counts must not be empty".to_owned());
        }
        if self.probabilities.is_empty() {
            return Err("probabilities must not be empty".to_owned());
        }
        for &p in &self.probabilities {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} outside [0, 1]"));
            }
        }
        for &n in &self.error_counts {
            if n > harp_ecc::ErrorSpace::MAX_AT_RISK_BITS {
                return Err(format!(
                    "error count {n} exceeds the exhaustive-analysis limit"
                ));
            }
        }
        Ok(())
    }

    /// Validates internal consistency for locally constructed configurations.
    ///
    /// # Panics
    ///
    /// Panics with the message [`check`](Self::check) would return.
    pub fn validate(&self) {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
    }

    /// Derives a deterministic seed for a (code, word, configuration) tuple.
    pub fn seed_for(&self, code_index: usize, word_index: usize, salt: u64) -> u64 {
        self.base_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((code_index as u64) << 32)
            .wrapping_add((word_index as u64) << 8)
            .wrapping_add(salt)
    }
}

impl Default for EvaluationConfig {
    fn default() -> Self {
        Self::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        EvaluationConfig::quick().validate();
        EvaluationConfig::smoke().validate();
        EvaluationConfig::paper_scale().validate();
        EvaluationConfig::default().validate();
        EvaluationConfig::quick().with_long_code().validate();
    }

    #[test]
    fn quick_matches_paper_sweeps() {
        let config = EvaluationConfig::quick();
        assert_eq!(config.data_bits, 64);
        assert_eq!(config.rounds, 128);
        assert_eq!(config.error_counts, vec![2, 3, 4, 5]);
        assert_eq!(config.probabilities, vec![0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn paper_scale_is_larger_than_quick() {
        let quick = EvaluationConfig::quick();
        let full = EvaluationConfig::paper_scale();
        assert!(full.words_total() > quick.words_total());
    }

    #[test]
    fn with_long_code_switches_to_136_128() {
        let config = EvaluationConfig::quick().with_long_code();
        assert_eq!(config.data_bits, 128);
    }

    #[test]
    fn seeds_differ_across_samples() {
        let config = EvaluationConfig::quick();
        let a = config.seed_for(0, 0, 0);
        let b = config.seed_for(0, 1, 0);
        let c = config.seed_for(1, 0, 0);
        let d = config.seed_for(0, 0, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Deterministic.
        assert_eq!(a, config.seed_for(0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn validate_rejects_bad_probability() {
        let mut config = EvaluationConfig::quick();
        config.probabilities = vec![1.5];
        config.validate();
    }

    /// The non-panicking twin of `validate`, for configurations decoded from
    /// archives or wire payloads.
    #[test]
    fn check_reports_instead_of_panicking() {
        assert_eq!(EvaluationConfig::quick().check(), Ok(()));
        let mut config = EvaluationConfig::quick();
        config.data_bits = 0;
        assert_eq!(config.check(), Err("data_bits must be nonzero".to_owned()));
        let mut config = EvaluationConfig::quick();
        config.rounds = 0;
        assert!(config.check().is_err());
        let mut config = EvaluationConfig::quick();
        config.probabilities = vec![-0.5];
        assert!(config.check().unwrap_err().contains("outside [0, 1]"));
    }

    #[test]
    #[should_panic(expected = "exceeds the exhaustive-analysis limit")]
    fn validate_rejects_huge_error_counts() {
        let mut config = EvaluationConfig::quick();
        config.error_counts = vec![30];
        config.validate();
    }
}
