//! Monte-Carlo evaluation harness for the HARP reproduction.
//!
//! This crate reproduces every table and figure in the paper's evaluation:
//!
//! | experiment | module | what it shows |
//! |---|---|---|
//! | Fig. 2 | [`experiments::fig2`] | wasted storage vs. RBER per repair granularity |
//! | Table 2 | [`experiments::table2`] | combinatorial explosion of at-risk bits |
//! | Fig. 4 | [`experiments::fig4`] | per-bit post-correction error probability distributions |
//! | Fig. 6 | [`experiments::fig6`] | direct-error coverage vs. profiling rounds |
//! | Fig. 7 | [`experiments::fig7`] | bootstrapping rounds distribution |
//! | Fig. 8 | [`experiments::fig8`] | missed indirect errors vs. profiling rounds |
//! | Fig. 9 | [`experiments::fig9`] | required secondary-ECC correction capability |
//! | Fig. 10 | [`experiments::fig10`] | end-to-end BER case study (data retention) |
//! | headline | [`experiments::headline`] | the paper's headline speedup claims |
//!
//! Every experiment follows the same pattern: a `run(&EvaluationConfig) ->
//! XyzResult` function that performs the Monte-Carlo simulation (in parallel
//! across worker threads), and a `render()` method on the result that
//! produces the plain-text table printed by the CLI / benches. Results are
//! `serde`-serializable so they can be archived as JSON.
//!
//! The default [`config::EvaluationConfig::quick`] configuration runs in
//! seconds on a laptop; [`config::EvaluationConfig::paper_scale`] approaches
//! the paper's sample counts (the paper burned ~14 CPU-years on its full
//! sweep; see DESIGN.md §2 for the scaling argument).

pub mod checkpoint;
pub mod config;
pub mod experiments;
pub mod minijson;
pub mod report;
pub mod runner;
pub mod sample;
pub mod stats;
pub mod traffic;

pub use config::EvaluationConfig;
pub use sample::{group_by_code, WordSample};
