//! Live-traffic co-scheduling: demand reads vs. background scrub under a
//! deterministic event clock.
//!
//! The paper evaluates profiling coverage in closed rounds; a real system
//! interleaves three activity streams on one memory channel:
//!
//! 1. **Demand reads** arriving at a configurable rate over Zipf-distributed
//!    addresses (hot words are read often, cold words rarely);
//! 2. **Background scrub bursts** walking the address space through the
//!    controller's batched [`MemoryController::read_range`] path;
//! 3. **Repair-table updates** fed by the reactive profiler, landing a
//!    configurable latency after the identifying read completes (the
//!    controller's inline reactive profiling is disabled; identification is
//!    decoupled from the repair-table write exactly as an out-of-band
//!    firmware path would behave).
//!
//! The scheduler is a discrete-event loop over a virtual clock: every event
//! carries a `(timestamp, sequence)` key and the queue pops ties in
//! submission order, so a run is a pure function of its
//! [`TrafficConfig`] — byte-identical across thread counts and repeat runs.
//! Demand reads are latency-accounted against a single-server channel model
//! (a read queues behind any in-flight scrub burst), and the run emits a
//! [`TrafficReport`]: the service-latency histogram and percentiles, the
//! scrub-coverage curve over time, and the count of *escapes* — demand
//! reads that returned uncorrectable or miscorrected data before the
//! profile had identified (and repaired) the responsible bits.

use std::collections::BinaryHeap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_controller::MemoryController;
use harp_ecc::{LinearBlockCode, SecondaryEcc};
use harp_gf2::BitVec;
use harp_memsim::{FaultModel, MemoryChip};
use harp_profiler::ReactiveProfiler;

use crate::report::{fixed, TextTable};
use crate::stats::percentile;

/// Number of power-of-two latency-histogram buckets (`bucket b` counts
/// latencies in `[2^(b-1), 2^b)`, bucket 0 counts zero-latency reads).
pub const LATENCY_BUCKETS: usize = 24;

/// One live-traffic run: arrival process, scrub cadence, channel costs, and
/// the repair-update policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Number of ECC words on the simulated chip.
    pub words: usize,
    /// Dataword length of the on-die ECC code.
    pub data_bits: usize,
    /// Per-cell probability of being at risk (sampled once per word over the
    /// whole codeword).
    pub rber: f64,
    /// Per-read probability that an at-risk cell actually flips.
    pub fail_probability: f64,
    /// Mean demand-read interarrival time in ticks (exponential arrivals).
    pub mean_interarrival: f64,
    /// Zipf exponent of the demand address distribution (0 = uniform).
    pub zipf_exponent: f64,
    /// Ticks between the starts of consecutive scrub bursts.
    pub scrub_interval: u64,
    /// Words scrubbed per burst.
    pub scrub_burst_words: usize,
    /// Correction capability of the controller's secondary ECC. The paper's
    /// Fig. 9 analysis applies: capability 1 only identifies safely once the
    /// profile already covers every direct bit, so live co-scheduling (which
    /// starts from an *empty* profile) wants ≥ 2 to identify the
    /// miscorrection patterns double errors produce.
    pub secondary_correction: usize,
    /// Channel occupancy of one demand read, in ticks.
    pub read_cost: u64,
    /// Channel occupancy per scrubbed word, in ticks.
    pub scrub_word_cost: u64,
    /// Repair-update policy: `None` drops identifications on the floor
    /// (profiling observes but never repairs), `Some(0)` applies them the
    /// moment the identifying access completes, `Some(n)` defers them by
    /// `n` ticks (an out-of-band firmware update path).
    pub repair_update_latency: Option<u64>,
    /// Virtual time at which the run stops (events after it are discarded).
    pub horizon: u64,
    /// Master seed; the arrival, address, and fault streams derive their own
    /// deterministic substreams from it.
    pub seed: u64,
}

impl TrafficConfig {
    /// A laptop-friendly configuration exercising every mechanism (queueing,
    /// scrub wrap-around, deferred updates) in well under a second.
    pub fn quick() -> Self {
        Self {
            words: 256,
            data_bits: 64,
            rber: 2e-3,
            fail_probability: 0.5,
            mean_interarrival: 8.0,
            zipf_exponent: 1.0,
            scrub_interval: 512,
            scrub_burst_words: 16,
            secondary_correction: 2,
            read_cost: 4,
            scrub_word_cost: 2,
            repair_update_latency: Some(64),
            horizon: 50_000,
            seed: 0x7AF1C,
        }
    }

    /// A smaller configuration for unit tests and benches.
    pub fn smoke() -> Self {
        Self {
            words: 64,
            horizon: 8_000,
            ..Self::quick()
        }
    }

    /// Checks internal consistency, returning the first problem found.
    ///
    /// # Errors
    ///
    /// Returns a message when the configuration cannot drive a run (zero
    /// words/costs/horizon, probabilities outside `[0, 1]`, or a
    /// non-positive arrival rate).
    pub fn check(&self) -> Result<(), String> {
        if self.words == 0 {
            return Err("words must be nonzero".to_owned());
        }
        if self.data_bits == 0 {
            return Err("data_bits must be nonzero".to_owned());
        }
        for (name, p) in [
            ("rber", self.rber),
            ("fail_probability", self.fail_probability),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} {p} outside [0, 1]"));
            }
        }
        if self.mean_interarrival <= 0.0 || self.mean_interarrival.is_nan() {
            return Err("mean_interarrival must be positive".to_owned());
        }
        if self.zipf_exponent < 0.0 || self.zipf_exponent.is_nan() {
            return Err("zipf_exponent must be non-negative".to_owned());
        }
        if self.scrub_interval == 0 {
            return Err("scrub_interval must be nonzero".to_owned());
        }
        if self.scrub_burst_words == 0 {
            return Err("scrub_burst_words must be nonzero".to_owned());
        }
        if self.secondary_correction == 0 {
            return Err("secondary_correction must be nonzero".to_owned());
        }
        if self.read_cost == 0 || self.scrub_word_cost == 0 {
            return Err("channel costs must be nonzero".to_owned());
        }
        if self.horizon == 0 {
            return Err("horizon must be nonzero".to_owned());
        }
        Ok(())
    }

    /// Panicking twin of [`TrafficConfig::check`] for locally constructed
    /// configurations.
    ///
    /// # Panics
    ///
    /// Panics with the message `check` would return.
    pub fn validate(&self) {
        if let Err(message) = self.check() {
            panic!("{message}");
        }
    }
}

/// One scheduled event, keyed by `(time, seq)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<K> {
    /// Virtual timestamp.
    pub time: u64,
    /// Monotonic submission sequence number, the deterministic tie-breaker.
    pub seq: u64,
    /// The payload.
    pub kind: K,
}

/// A deterministic discrete-event queue: events pop in ascending
/// `(time, seq)` order, so same-timestamp events leave in submission order
/// regardless of heap internals.
#[derive(Debug)]
pub struct EventQueue<K> {
    heap: BinaryHeap<QueueEntry<K>>,
    next_seq: u64,
}

#[derive(Debug)]
struct QueueEntry<K>(Event<K>);

// The ordering deliberately ignores `kind`: `(time, seq)` is unique per
// queue, and a min-heap order over it is all determinism requires.
impl<K> PartialEq for QueueEntry<K> {
    fn eq(&self, other: &Self) -> bool {
        (self.0.time, self.0.seq) == (other.0.time, other.0.seq)
    }
}

impl<K> Eq for QueueEntry<K> {}

impl<K> PartialOrd for QueueEntry<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K> Ord for QueueEntry<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.0.time, other.0.seq).cmp(&(self.0.time, self.0.seq))
    }
}

impl<K> EventQueue<K> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `kind` at `time`, returning the assigned sequence number.
    pub fn push(&mut self, time: u64, kind: K) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueueEntry(Event { time, seq, kind }));
        seq
    }

    /// Pops the earliest event (`(time, seq)`-minimal).
    pub fn pop(&mut self) -> Option<Event<K>> {
        self.heap.pop().map(|entry| entry.0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<K> Default for EventQueue<K> {
    fn default() -> Self {
        Self::new()
    }
}

/// Inverse-CDF sampler over a Zipf distribution on `0..n` (rank 0 is the
/// hottest address). Exponent 0 degenerates to uniform.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Precomputes the normalized cumulative weight table for `n` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `exponent` is negative.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(exponent >= 0.0, "Zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += (rank as f64).powf(-exponent);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Draws one rank via binary search over the cumulative table.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        let index = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cumulative weights"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        index.min(self.cumulative.len() - 1)
    }
}

/// Service-latency distribution of the demand-read stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Number of demand reads measured.
    pub count: usize,
    /// Median latency, in ticks (`None` when no reads arrived).
    pub p50: Option<f64>,
    /// 95th percentile.
    pub p95: Option<f64>,
    /// 99th percentile.
    pub p99: Option<f64>,
    /// 99.9th percentile.
    pub p999: Option<f64>,
    /// Arithmetic mean (0.0 when no reads arrived).
    pub mean: f64,
    /// Worst observed latency.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes a latency sample (in ticks).
    pub fn of(latencies: &[u64]) -> Self {
        let values: Vec<f64> = latencies.iter().map(|&l| l as f64).collect();
        Self {
            count: latencies.len(),
            p50: percentile(&values, 50.0),
            p95: percentile(&values, 95.0),
            p99: percentile(&values, 99.0),
            p999: percentile(&values, 99.9),
            mean: crate::stats::mean(&values),
            max: latencies.iter().copied().max().unwrap_or(0),
        }
    }
}

/// One point of the scrub-coverage curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoveragePoint {
    /// Virtual time at which the burst completed.
    pub time: u64,
    /// Fraction of the address space scrubbed at least once by then.
    pub covered: f64,
}

/// Everything one live-traffic run reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Virtual time the run covered.
    pub horizon: u64,
    /// Demand reads served.
    pub demand_reads: usize,
    /// Scrub bursts issued.
    pub scrub_bursts: usize,
    /// Words scrubbed (with repetition across passes).
    pub words_scrubbed: usize,
    /// Demand reads that returned uncorrectable or miscorrected data before
    /// the profile had identified the responsible bits.
    pub escapes: usize,
    /// `escapes / demand_reads` (0.0 when no reads arrived).
    pub escape_rate: f64,
    /// Scrub-path reads whose errors exceeded the secondary ECC.
    pub scrub_escapes: usize,
    /// Repair-table updates that landed (dropped-policy runs stay at 0).
    pub repair_updates_applied: usize,
    /// At-risk bits newly installed into the repair table by those updates.
    pub repair_bits_installed: usize,
    /// Distinct positions the reactive profilers identified (whether or not
    /// the update policy let them reach the repair table).
    pub positions_identified: usize,
    /// Demand-read service-latency distribution.
    pub latency: LatencySummary,
    /// Power-of-two latency histogram (`LATENCY_BUCKETS` buckets).
    pub latency_histogram: Vec<usize>,
    /// Scrub coverage over time, one point per completed burst.
    pub coverage_curve: Vec<CoveragePoint>,
    /// Virtual time at which every word had been scrubbed at least once.
    pub time_to_full_coverage: Option<u64>,
}

impl TrafficReport {
    /// Renders the report as a short plain-text summary.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["metric", "value"]);
        let latency = |p: Option<f64>| p.map_or_else(|| "n/a".to_owned(), |v| fixed(v, 1));
        table.push_row(["demand reads".to_owned(), self.demand_reads.to_string()]);
        table.push_row(["p50 latency".to_owned(), latency(self.latency.p50)]);
        table.push_row(["p95 latency".to_owned(), latency(self.latency.p95)]);
        table.push_row(["p99 latency".to_owned(), latency(self.latency.p99)]);
        table.push_row(["p99.9 latency".to_owned(), latency(self.latency.p999)]);
        table.push_row(["escapes".to_owned(), self.escapes.to_string()]);
        table.push_row(["scrub bursts".to_owned(), self.scrub_bursts.to_string()]);
        table.push_row([
            "repair updates".to_owned(),
            self.repair_updates_applied.to_string(),
        ]);
        table.push_row([
            "full scrub coverage at".to_owned(),
            self.time_to_full_coverage
                .map_or_else(|| format!(">{}", self.horizon), |t| t.to_string()),
        ]);
        format!(
            "Live traffic over {} ticks ({} words)\n{}",
            self.horizon,
            self.coverage_curve.len().max(1),
            table.render()
        )
    }
}

/// The three event streams of the co-scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TrafficEvent {
    /// A demand read of one Zipf-drawn word.
    DemandRead { word: usize },
    /// A scrub burst starting at `start_word`.
    ScrubBurst { start_word: usize },
    /// A deferred repair-table update for `word`.
    RepairUpdate { word: usize, bits: Vec<usize> },
}

/// Salt separating the fault-placement RNG stream from the other streams
/// derived from the same `config.seed`.
const TRAFFIC_FAULT_SALT: u64 = 0xFA17;

/// Salt for the request interarrival-time RNG stream.
const TRAFFIC_ARRIVAL_SALT: u64 = 0xA881;

/// Salt for the request address-selection RNG stream.
const TRAFFIC_ADDRESS_SALT: u64 = 0xADD8;

/// Runs one live-traffic co-schedule over a chip protected by `code`.
///
/// The controller's inline reactive profiling is disabled; identifications
/// flow through per-word [`ReactiveProfiler`]s and re-enter the repair
/// table as [`MemoryController::apply_repair_update`] calls according to
/// the configured update policy. The run is single-threaded and a pure
/// function of `config` and `code`.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`TrafficConfig::check`]).
pub fn run_traffic<C: LinearBlockCode>(config: &TrafficConfig, code: C) -> TrafficReport {
    config.validate();
    let codeword_len = code.codeword_len();
    let mut fault_rng = ChaCha8Rng::seed_from_u64(config.seed ^ TRAFFIC_FAULT_SALT);
    let mut chip = MemoryChip::new(code, config.words);
    for word in 0..config.words {
        let at_risk: Vec<usize> = (0..codeword_len)
            .filter(|_| fault_rng.gen_bool(config.rber))
            .collect();
        if !at_risk.is_empty() {
            chip.set_fault_model(word, FaultModel::uniform(&at_risk, config.fail_probability));
        }
    }
    let mut controller =
        MemoryController::new(chip, SecondaryEcc::ideal(config.secondary_correction));
    // Identification is decoupled from the repair-table write: the read path
    // only *observes*; updates land as RepairUpdate events (or never).
    controller.set_reactive_profiling(false);
    for word in 0..config.words {
        controller.write(word, &BitVec::ones(config.data_bits));
    }
    let mut profilers: Vec<ReactiveProfiler> = (0..config.words)
        .map(|_| ReactiveProfiler::new(SecondaryEcc::ideal(config.secondary_correction)))
        .collect();

    let mut arrival_rng = ChaCha8Rng::seed_from_u64(config.seed ^ TRAFFIC_ARRIVAL_SALT);
    let mut address_rng = ChaCha8Rng::seed_from_u64(config.seed ^ TRAFFIC_ADDRESS_SALT);
    let zipf = ZipfSampler::new(config.words, config.zipf_exponent);
    let mut queue: EventQueue<TrafficEvent> = EventQueue::new();

    let next_arrival = |rng: &mut ChaCha8Rng| -> u64 {
        let u: f64 = rng.gen_range(0.0..1.0);
        (-(1.0 - u).ln() * config.mean_interarrival)
            .round()
            .max(1.0) as u64
    };
    queue.push(
        next_arrival(&mut arrival_rng),
        TrafficEvent::DemandRead {
            word: zipf.sample(&mut address_rng),
        },
    );
    queue.push(
        config.scrub_interval,
        TrafficEvent::ScrubBurst { start_word: 0 },
    );

    // Single-server channel model: whoever arrives while the channel is
    // busy waits for it.
    let mut busy_until = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    let mut histogram = vec![0usize; LATENCY_BUCKETS];
    let mut escapes = 0usize;
    let mut scrub_escapes = 0usize;
    let mut scrub_bursts = 0usize;
    let mut words_scrubbed = 0usize;
    let mut repair_updates_applied = 0usize;
    let mut repair_bits_installed = 0usize;
    let mut scrubbed = vec![false; config.words];
    let mut scrubbed_count = 0usize;
    let mut coverage_curve = Vec::new();
    let mut time_to_full_coverage = None;

    while let Some(event) = queue.pop() {
        if event.time > config.horizon {
            break;
        }
        match event.kind {
            TrafficEvent::DemandRead { word } => {
                let start = event.time.max(busy_until);
                let complete = start + config.read_cost;
                busy_until = complete;
                let latency = complete - event.time;
                histogram[latency_bucket(latency)] += 1;
                latencies.push(latency);

                let outcome = controller.read(word, &mut fault_rng);
                if !outcome.is_correct() {
                    escapes += 1;
                }
                let fresh = profilers[word]
                    .record_outcome(&outcome.newly_identified, !outcome.is_correct());
                if let (Some(lat), false) = (config.repair_update_latency, fresh.is_empty()) {
                    queue.push(
                        complete + lat,
                        TrafficEvent::RepairUpdate { word, bits: fresh },
                    );
                }

                let arrival = complete.max(event.time) + next_arrival(&mut arrival_rng);
                queue.push(
                    arrival,
                    TrafficEvent::DemandRead {
                        word: zipf.sample(&mut address_rng),
                    },
                );
            }
            TrafficEvent::ScrubBurst { start_word } => {
                let end_word = (start_word + config.scrub_burst_words).min(config.words);
                let burst_len = end_word - start_word;
                let start = event.time.max(busy_until);
                let complete = start + burst_len as u64 * config.scrub_word_cost;
                busy_until = complete;
                scrub_bursts += 1;
                words_scrubbed += burst_len;

                let outcomes = controller.read_range(start_word..end_word, &mut fault_rng);
                for (offset, outcome) in outcomes.iter().enumerate() {
                    let word = start_word + offset;
                    if !outcome.is_correct() {
                        scrub_escapes += 1;
                    }
                    let fresh = profilers[word]
                        .record_outcome(&outcome.newly_identified, !outcome.is_correct());
                    if let (Some(lat), false) = (config.repair_update_latency, fresh.is_empty()) {
                        queue.push(
                            complete + lat,
                            TrafficEvent::RepairUpdate { word, bits: fresh },
                        );
                    }
                    if !scrubbed[word] {
                        scrubbed[word] = true;
                        scrubbed_count += 1;
                    }
                }
                coverage_curve.push(CoveragePoint {
                    time: complete,
                    covered: scrubbed_count as f64 / config.words as f64,
                });
                if scrubbed_count == config.words && time_to_full_coverage.is_none() {
                    time_to_full_coverage = Some(complete);
                }

                let next_start = if end_word >= config.words {
                    0
                } else {
                    end_word
                };
                queue.push(
                    event.time + config.scrub_interval,
                    TrafficEvent::ScrubBurst {
                        start_word: next_start,
                    },
                );
            }
            TrafficEvent::RepairUpdate { word, bits } => {
                let installed = controller.apply_repair_update(word, bits);
                repair_updates_applied += 1;
                repair_bits_installed += installed;
            }
        }
    }

    let positions_identified = profilers.iter().map(|p| p.identified().len()).sum();
    let escape_rate = if latencies.is_empty() {
        0.0
    } else {
        escapes as f64 / latencies.len() as f64
    };
    TrafficReport {
        horizon: config.horizon,
        demand_reads: latencies.len(),
        scrub_bursts,
        words_scrubbed,
        escapes,
        escape_rate,
        scrub_escapes,
        repair_updates_applied,
        repair_bits_installed,
        positions_identified,
        latency: LatencySummary::of(&latencies),
        latency_histogram: histogram,
        coverage_curve,
        time_to_full_coverage,
    }
}

/// Power-of-two histogram bucket for one latency value.
fn latency_bucket(latency: u64) -> usize {
    if latency == 0 {
        return 0;
    }
    ((u64::BITS - latency.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::HammingCode;

    fn smoke_code(config: &TrafficConfig) -> HammingCode {
        HammingCode::random(config.data_bits, 0x7F).unwrap()
    }

    #[test]
    fn event_queue_pops_in_time_then_submission_order() {
        let mut queue = EventQueue::new();
        queue.push(5, "late");
        queue.push(1, "first-at-1");
        queue.push(1, "second-at-1");
        queue.push(3, "middle");
        queue.push(1, "third-at-1");
        let order: Vec<(u64, u64, &str)> = std::iter::from_fn(|| queue.pop())
            .map(|e| (e.time, e.seq, e.kind))
            .collect();
        assert_eq!(
            order,
            vec![
                (1, 1, "first-at-1"),
                (1, 2, "second-at-1"),
                (1, 4, "third-at-1"),
                (3, 3, "middle"),
                (5, 0, "late"),
            ]
        );
        assert!(queue.is_empty());
    }

    #[test]
    fn zipf_sampler_prefers_low_ranks() {
        let zipf = ZipfSampler::new(64, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut counts = vec![0usize; 64];
        for _ in 0..4000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[63]);
        // Every draw stayed in range (the count vector absorbed them all).
        assert_eq!(counts.iter().sum::<usize>(), 4000);
    }

    #[test]
    fn uniform_zipf_exponent_spreads_draws() {
        let zipf = ZipfSampler::new(16, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut counts = vec![0usize; 16];
        for _ in 0..8000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            // 500 expected per bucket; uniformity within a loose band.
            assert!((250..=750).contains(&c), "counts: {counts:?}");
        }
    }

    #[test]
    fn latency_summary_of_empty_sample_has_no_percentiles() {
        let summary = LatencySummary::of(&[]);
        assert_eq!(summary.count, 0);
        assert_eq!(summary.p50, None);
        assert_eq!(summary.p999, None);
        assert_eq!(summary.max, 0);
    }

    #[test]
    fn same_seed_reproduces_the_report_byte_for_byte() {
        let config = TrafficConfig::smoke();
        let a = run_traffic(&config, smoke_code(&config));
        let b = run_traffic(&config, smoke_code(&config));
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn traffic_serves_reads_and_scrubs_the_whole_chip() {
        let config = TrafficConfig::smoke();
        let report = run_traffic(&config, smoke_code(&config));
        assert!(report.demand_reads > 100, "got {}", report.demand_reads);
        assert!(report.scrub_bursts > 0);
        // The smoke horizon is long enough to scrub all 64 words.
        assert!(report.time_to_full_coverage.is_some());
        assert_eq!(report.latency.count, report.demand_reads);
        assert_eq!(
            report.latency_histogram.iter().sum::<usize>(),
            report.demand_reads
        );
        // Coverage is monotone and ends at 1.0.
        for pair in report.coverage_curve.windows(2) {
            assert!(pair[0].covered <= pair[1].covered);
        }
        assert_eq!(report.coverage_curve.last().map(|p| p.covered), Some(1.0));
        assert!(report.render().contains("p99 latency"));
    }

    #[test]
    fn inline_repair_updates_install_identified_bits() {
        let config = TrafficConfig {
            repair_update_latency: Some(0),
            rber: 0.02,
            ..TrafficConfig::smoke()
        };
        let report = run_traffic(&config, smoke_code(&config));
        assert!(report.positions_identified > 0);
        assert!(report.repair_updates_applied > 0);
        assert!(report.repair_bits_installed > 0);
        assert!(report.repair_bits_installed <= report.positions_identified);
    }

    #[test]
    fn dropped_updates_never_touch_the_repair_table() {
        let config = TrafficConfig {
            repair_update_latency: None,
            rber: 0.02,
            ..TrafficConfig::smoke()
        };
        let report = run_traffic(&config, smoke_code(&config));
        assert_eq!(report.repair_updates_applied, 0);
        assert_eq!(report.repair_bits_installed, 0);
        // Profiling still observes.
        assert!(report.positions_identified > 0);
    }

    #[test]
    fn repairing_never_increases_escapes() {
        // With updates applied, identified bits stop failing; dropping the
        // updates leaves every identified bit exposed forever.
        let base = TrafficConfig {
            rber: 0.02,
            ..TrafficConfig::smoke()
        };
        let repaired = run_traffic(
            &TrafficConfig {
                repair_update_latency: Some(0),
                ..base.clone()
            },
            smoke_code(&base),
        );
        let dropped = run_traffic(
            &TrafficConfig {
                repair_update_latency: None,
                ..base.clone()
            },
            smoke_code(&base),
        );
        assert!(
            repaired.escapes <= dropped.escapes,
            "repaired {} vs dropped {}",
            repaired.escapes,
            dropped.escapes
        );
    }

    #[test]
    fn queueing_behind_scrub_shows_up_in_the_latency_tail() {
        // With scrub bursts large enough to occupy the channel for a long
        // stretch, some demand read must observe more than the bare
        // read_cost.
        let config = TrafficConfig {
            scrub_burst_words: 64,
            scrub_word_cost: 16,
            ..TrafficConfig::smoke()
        };
        let report = run_traffic(&config, smoke_code(&config));
        assert!(report.latency.max > config.read_cost);
        // And the minimum possible latency is the bare read cost.
        assert!(report.latency.p50.unwrap() >= config.read_cost as f64);
    }

    #[test]
    #[should_panic(expected = "mean_interarrival must be positive")]
    fn invalid_configs_are_rejected() {
        let config = TrafficConfig {
            mean_interarrival: 0.0,
            ..TrafficConfig::smoke()
        };
        run_traffic(&config, HammingCode::random(64, 1).unwrap());
    }
}
