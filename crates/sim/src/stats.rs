//! Small statistics helpers used by the evaluation experiments.

use serde::{Deserialize, Serialize};

/// Arithmetic mean. Returns 0.0 for an empty slice.
///
/// # Example
///
/// ```
/// assert_eq!(harp_sim::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// assert_eq!(harp_sim::stats::mean(&[]), 0.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// The `p`-th percentile (0–100) using **linear interpolation between
/// closest ranks** on a sorted copy of the data (the `C = 1` variant, as in
/// NumPy's default `linear` method): rank `p/100 * (n-1)` is split into its
/// integer neighbours and the two order statistics are blended by the
/// fractional part. This is *not* the nearest-rank method — percentiles may
/// fall between observed values (see the 50th-percentile example below).
///
/// Returns `None` for an empty slice: an empty sample has no percentiles,
/// and the old `0.0` sentinel was indistinguishable from a real measurement
/// (a zero-latency tail or a zero-coverage word look exactly like "no data").
///
/// # Panics
///
/// Panics if `p` is not within `[0, 100]`.
///
/// # Example
///
/// ```
/// let data = [5.0, 1.0, 9.0, 3.0];
/// assert_eq!(harp_sim::stats::percentile(&data, 0.0), Some(1.0));
/// assert_eq!(harp_sim::stats::percentile(&data, 100.0), Some(9.0));
/// assert_eq!(harp_sim::stats::percentile(&data, 50.0), Some(4.0));
/// assert_eq!(harp_sim::stats::percentile(&[], 50.0), None);
/// ```
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile {p} outside [0, 100]"
    );
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    Some(if low == high {
        sorted[low]
    } else {
        let frac = rank - low as f64;
        sorted[low] * (1.0 - frac) + sorted[high] * frac
    })
}

/// Summary statistics of a sample: the quartiles the paper's violin / box
/// plots convey, plus mean and extremes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 99th percentile (the paper reports 99th-percentile coverage).
    pub p99: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Computes summary statistics for a sample. Returns an all-zero summary
    /// for an empty sample.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                count: 0,
                min: 0.0,
                p25: 0.0,
                median: 0.0,
                p75: 0.0,
                p99: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        let at = |p| percentile(values, p).expect("sample checked non-empty above");
        Self {
            count: values.len(),
            min: at(0.0),
            p25: at(25.0),
            median: at(50.0),
            p75: at(75.0),
            p99: at(99.0),
            max: at(100.0),
            mean: mean(values),
        }
    }
}

/// A normalized histogram over integer-valued observations `0..=max_value`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// `fractions[v]` is the fraction of observations equal to `v`.
    pub fractions: Vec<f64>,
    /// Total number of observations.
    pub count: usize,
}

impl Histogram {
    /// Builds a normalized histogram of the observations, with bins
    /// `0..=max_value` (observations above `max_value` are clamped into the
    /// last bin).
    pub fn of(values: &[usize], max_value: usize) -> Self {
        let mut counts = vec![0usize; max_value + 1];
        for &v in values {
            counts[v.min(max_value)] += 1;
        }
        let total = values.len().max(1) as f64;
        Self {
            fractions: counts.iter().map(|&c| c as f64 / total).collect(),
            count: values.len(),
        }
    }

    /// The fraction of observations in bin `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the histogram's range.
    pub fn fraction(&self, v: usize) -> f64 {
        self.fractions[v]
    }
}

/// The profiling-round checkpoints at which coverage curves are reported
/// (log-spaced like the paper's x-axes: 1, 2, 4, … 128). A campaign of zero
/// rounds has no checkpoints: the result is empty, not `[0]`.
pub fn round_checkpoints(max_rounds: usize) -> Vec<usize> {
    if max_rounds == 0 {
        return Vec::new();
    }
    let mut checkpoints = Vec::new();
    let mut r = 1usize;
    while r <= max_rounds {
        checkpoints.push(r);
        r *= 2;
    }
    if checkpoints.last() != Some(&max_rounds) {
        checkpoints.push(max_rounds);
    }
    checkpoints
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_simple_sequences() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[7.0]), 7.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [0.0, 10.0];
        assert_eq!(percentile(&data, 50.0), Some(5.0));
        assert_eq!(percentile(&data, 25.0), Some(2.5));
        let single = [42.0];
        assert_eq!(percentile(&single, 99.0), Some(42.0));
    }

    /// Regression: `percentile(&[], p)` used to return `0.0` — a
    /// plausible-looking sentinel that corrupted latency/coverage tables
    /// wherever an empty sample slipped through. Empty input must be
    /// unrepresentable as a measurement.
    #[test]
    fn percentile_of_empty_input_is_none_not_zero() {
        for p in [0.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[], p), None);
        }
    }

    #[test]
    fn percentile_is_monotonic_in_p() {
        let data = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut last = f64::NEG_INFINITY;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = percentile(&data, p).unwrap();
            assert!(v >= last, "percentile not monotonic at {p}");
            last = v;
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 100]")]
    fn percentile_rejects_bad_p() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn summary_quartiles_are_ordered() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let s = Summary::of(&values);
        assert_eq!(s.count, 100);
        assert!(s.min <= s.p25 && s.p25 <= s.median);
        assert!(s.median <= s.p75 && s.p75 <= s.p99 && s.p99 <= s.max);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 99.0);
        assert!((s.mean - 49.5).abs() < 1e-9);
    }

    #[test]
    fn summary_of_empty_sample_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn histogram_normalizes_and_clamps() {
        let h = Histogram::of(&[0, 1, 1, 2, 9], 3);
        assert_eq!(h.count, 5);
        assert_eq!(h.fraction(0), 0.2);
        assert_eq!(h.fraction(1), 0.4);
        assert_eq!(h.fraction(2), 0.2);
        // The out-of-range 9 lands in the last bin.
        assert_eq!(h.fraction(3), 0.2);
        let total: f64 = h.fractions.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn checkpoints_are_log_spaced_and_end_at_max() {
        assert_eq!(round_checkpoints(128), vec![1, 2, 4, 8, 16, 32, 64, 128]);
        assert_eq!(round_checkpoints(100), vec![1, 2, 4, 8, 16, 32, 64, 100]);
        assert_eq!(round_checkpoints(1), vec![1]);
    }

    #[test]
    fn zero_rounds_has_no_checkpoints() {
        // Regression: this used to return `[0]` — a phantom "round 0"
        // checkpoint that indexed one past the end of empty coverage series.
        assert_eq!(round_checkpoints(0), Vec::<usize>::new());
    }

    /// Naive textbook reference for linear interpolation between closest
    /// ranks: sort, split the target rank, blend the two order statistics.
    fn naive_percentile(values: &[f64], p: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = p / 100.0 * (sorted.len() - 1) as f64;
        let low = sorted[rank.floor() as usize];
        let high = sorted[rank.ceil() as usize];
        low + (high - low) * (rank - rank.floor())
    }

    #[test]
    fn percentile_matches_the_naive_linear_interpolation_reference() {
        // A light property sweep: deterministic pseudo-random samples of many
        // sizes, checked at many percentiles against the reference formula
        // the doc now promises.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for size in [1usize, 2, 3, 7, 64, 257] {
            let values: Vec<f64> = (0..size).map(|_| next() * 100.0 - 50.0).collect();
            for p in [0.0, 1.0, 12.5, 25.0, 50.0, 75.0, 99.0, 100.0] {
                let ours = percentile(&values, p).unwrap();
                let reference = naive_percentile(&values, p);
                assert!(
                    (ours - reference).abs() < 1e-9,
                    "size {size}, p {p}: {ours} != {reference}"
                );
            }
        }
    }

    #[test]
    fn percentile_falls_between_observations_unlike_nearest_rank() {
        // The doc example: a nearest-rank method could only ever return an
        // element of the sample; the implemented method interpolates.
        let data = [5.0, 1.0, 9.0, 3.0];
        let median = percentile(&data, 50.0).unwrap();
        assert_eq!(median, 4.0);
        assert!(!data.contains(&median));
    }
}
