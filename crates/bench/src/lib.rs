//! Shared helpers for the benchmark harness.
//!
//! Each bench target under `benches/` regenerates one table or figure of the
//! paper: it first prints the reproduced series (so `cargo bench` output
//! doubles as the experiment log recorded in EXPERIMENTS.md) and then times
//! the underlying computation with Criterion.

use harp_sim::EvaluationConfig;

/// The Monte-Carlo configuration used by the figure benches.
///
/// Small enough that a full `cargo bench --workspace` finishes in minutes,
/// large enough that every qualitative trend from the paper is visible in the
/// printed series.
pub fn bench_config() -> EvaluationConfig {
    EvaluationConfig {
        num_codes: 2,
        words_per_code: 6,
        rounds: 128,
        error_counts: vec![2, 3, 4, 5],
        probabilities: vec![0.5],
        ..EvaluationConfig::quick()
    }
}

/// A further reduced configuration for the benches that sweep all profilers
/// or all probabilities.
pub fn small_bench_config() -> EvaluationConfig {
    EvaluationConfig {
        num_codes: 2,
        words_per_code: 4,
        rounds: 64,
        error_counts: vec![2, 4],
        probabilities: vec![0.5],
        ..EvaluationConfig::quick()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_configs_are_valid() {
        bench_config().validate();
        small_bench_config().validate();
        assert!(small_bench_config().words_total() <= bench_config().words_total());
    }
}
