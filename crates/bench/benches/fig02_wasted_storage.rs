//! Fig. 2 bench: regenerates the wasted-storage-vs-RBER curves and times the
//! analytic model.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_sim::experiments::fig2;

fn bench_fig2(c: &mut Criterion) {
    // Print the reproduced series once so the bench log doubles as the
    // experiment record.
    println!("\n{}", fig2::run().render());
    c.bench_function("fig02/wasted_storage_full_sweep", |b| b.iter(fig2::run));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2
);
criterion_main!(benches);
