//! Benchmarks the campaign checkpoint path: what freezing, serializing, and
//! thawing a sweep cell costs relative to simply running it.
//!
//! * `checkpoint_path/<code>/uninterrupted_*` — the baseline: one resumable
//!   [`BatchRun`] advanced through all rounds (the engine `harp sweep`
//!   drives between checkpoints).
//! * `checkpoint_path/<code>/freeze_*` — [`BatchRun::checkpoint`] plus the
//!   JSON encode/render of the archive group file: the per-interval cost
//!   `--checkpoint-dir` adds, minus the write syscall.
//! * `checkpoint_path/<code>/thaw_*` — parse + decode + [`BatchRun::resume`]:
//!   the one-time cost of `--resume`.
//!
//! Resumed-equals-uninterrupted is asserted before timing, so the numbers
//! describe the overhead of a correct checkpoint, not a cheaper shortcut.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use harp_bch::BchCode;
use harp_ecc::{HammingCode, LinearBlockCode};
use harp_memsim::{pattern::DataPattern, FaultModel};
use harp_profiler::{BatchRun, BatchWord, CampaignBatch, ProfilerKind};
use harp_sim::checkpoint::{decode_campaign_checkpoint, encode_campaign_checkpoint};
use harp_sim::minijson::Json;

/// Words per simulated sweep cell.
const CELL_WORDS: usize = 64;

/// Profiling rounds per campaign (matching `campaign_path`, so the freeze
/// cost can be read against the same cell's run cost).
const ROUNDS: usize = 16;

/// Round after which the mid-run checkpoint is taken.
const FREEZE_AT: usize = ROUNDS / 2;

fn cell<C: LinearBlockCode + Clone + Send + 'static>(code: C) -> CampaignBatch<C> {
    let n = code.codeword_len();
    CampaignBatch::new(
        code,
        (0..CELL_WORDS)
            .map(|w| {
                let at_risk = [w % n, (w + 17) % n, (w + 41) % n];
                BatchWord::new(
                    FaultModel::uniform(&at_risk[..1 + w % 3], 0.5),
                    DataPattern::Random,
                    0xC4EC_0000 + w as u64,
                )
            })
            .collect(),
    )
}

fn bench_checkpoint_path<C: LinearBlockCode + Clone + Send + 'static>(
    c: &mut Criterion,
    label: &str,
    code: C,
) {
    let batch = cell(code);

    // Correctness cross-check before timing: a thawed run finishes
    // byte-identically to the uninterrupted reference, through the full
    // JSON round trip.
    let reference = batch.run(ProfilerKind::HarpU, ROUNDS);
    let mut first = BatchRun::new(&batch, ProfilerKind::HarpU);
    first.advance(FREEZE_AT);
    let frozen = first.checkpoint();
    let json = Json::parse(&encode_campaign_checkpoint(&frozen).render()).expect("valid JSON");
    let thawed = decode_campaign_checkpoint(&json).expect("valid checkpoint");
    assert_eq!(thawed, frozen);
    let mut resumed = BatchRun::resume(&batch, &thawed);
    resumed.advance(ROUNDS - FREEZE_AT);
    assert_eq!(resumed.results(), reference);

    let rendered = encode_campaign_checkpoint(&frozen).render();
    let mut group = c.benchmark_group(format!("checkpoint_path/{label}"));
    group.bench_function(format!("uninterrupted_{CELL_WORDS}x{ROUNDS}"), |b| {
        b.iter(|| {
            let mut run = BatchRun::new(&batch, ProfilerKind::HarpU);
            run.advance(ROUNDS);
            black_box(run.results().len())
        })
    });
    group.bench_function(format!("freeze_{CELL_WORDS}x{FREEZE_AT}"), |b| {
        b.iter(|| {
            let checkpoint = first.checkpoint();
            black_box(encode_campaign_checkpoint(&checkpoint).render().len())
        })
    });
    group.bench_function(format!("thaw_{CELL_WORDS}x{FREEZE_AT}"), |b| {
        b.iter(|| {
            let parsed = Json::parse(&rendered).expect("valid JSON");
            let checkpoint = decode_campaign_checkpoint(&parsed).expect("valid checkpoint");
            black_box(BatchRun::resume(&batch, &checkpoint).round())
        })
    });
    group.finish();
}

fn bench_checkpoints(c: &mut Criterion) {
    bench_checkpoint_path(
        c,
        "hamming_71_64",
        HammingCode::random(64, 1).expect("valid code"),
    );
    bench_checkpoint_path(c, "bch_78_64", BchCode::dec(64).expect("valid code"));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_checkpoints
);
criterion_main!(benches);
