//! Table 2 bench: regenerates the at-risk-bit amplification table (closed
//! form) and times the exact per-code enumeration it bounds.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_ecc::analysis::FailureDependence;
use harp_ecc::{ErrorSpace, HammingCode};
use harp_sim::experiments::table2;

fn bench_table2(c: &mut Criterion) {
    println!("\n{}", table2::run().render());
    c.bench_function("table02/closed_form", |b| b.iter(table2::run));
    // The exact enumeration for a concrete code, which the closed form bounds.
    let code = HammingCode::random(64, 11).unwrap();
    let at_risk = [1usize, 9, 22, 35, 48, 55, 60, 63];
    c.bench_function("table02/exact_enumeration_n8", |b| {
        b.iter(|| ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2
);
criterion_main!(benches);
