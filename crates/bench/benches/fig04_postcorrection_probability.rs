//! Fig. 4 bench: regenerates the per-bit post-correction error-probability
//! distributions and times the Monte-Carlo kernel. Includes the (136, 128)
//! long-code ablation from §7.1.2.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_bench::small_bench_config;
use harp_sim::experiments::fig4;

fn bench_fig4(c: &mut Criterion) {
    let config = small_bench_config();
    println!(
        "\n{}",
        fig4::run_with(&config, &[2, 3, 4, 5, 6, 7, 8], 0.5).render()
    );
    // Ablation: the longer (136, 128) code shows the same trends.
    let long = config.clone().with_long_code();
    println!(
        "(136, 128) ablation\n{}",
        fig4::run_with(&long, &[2, 4, 8], 0.5).render()
    );
    c.bench_function("fig04/montecarlo_n2_to_n4", |b| {
        b.iter(|| fig4::run_with(&config, &[2, 3, 4], 0.5))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4
);
criterion_main!(benches);
