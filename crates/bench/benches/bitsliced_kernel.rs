//! Benchmarks the bit-sliced syndrome/decode phase against the word-at-a-time
//! burst it replaced, at a realistic scrub-pass error density.
//!
//! The `decode_phase_*` pair reproduces exactly the two halves of
//! `MemoryChip::decode_burst`: the *wordwise* variant is the pre-bit-slice
//! data flow (one batched `syndrome_words_into` pass over the stored
//! codewords, then `decode_with_syndrome_into` for **every** word), the
//! *bitsliced* variant is the current one (one
//! `syndrome_words_bitsliced_into` pass over the sparse raw error patterns —
//! identical syndromes by linearity, since every clean stored word is a
//! codeword — then a mask walk that short-circuits clean words through
//! `decode_clean_into` and resolves only flagged words). Both phases are
//! asserted byte-identical before timing, so the reported ratio is pure
//! execution-plan speedup; burst words/sec = `BURST_WORDS` / per-iteration
//! time.
//!
//! Error density models a scrub pass at RBER ≤ 1e-2 (the regime the ISSUE
//! and §2.4 target): one word in 16 carries a raw error (one in 64 carries
//! two), so > 93 % of words are clean — the clean-word mask fast path is the
//! measured path, exactly as in a real campaign.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use harp_bch::BchCode;
use harp_ecc::{DecodeResult, ExtendedHammingCode, HammingCode, LinearBlockCode};
use harp_gf2::{BitVec, BitsliceScratch};

/// ECC words per simulated scrub pass.
const BURST_WORDS: usize = 1024;

/// One scrub pass worth of words: clean codewords, sparse raw error
/// patterns (one word in 16 dirty, one in 64 doubly so), and the stored
/// (possibly corrupted) words the chip would decode.
struct PassInputs {
    stored: Vec<BitVec>,
    errors: Vec<BitVec>,
}

fn pass_inputs<C: LinearBlockCode>(code: &C) -> PassInputs {
    let n = code.codeword_len();
    let mut stored = Vec::with_capacity(BURST_WORDS);
    let mut errors = Vec::with_capacity(BURST_WORDS);
    for word in 0..BURST_WORDS {
        let data = BitVec::from_indices(
            code.data_len(),
            (0..code.data_len()).filter(|&b| (b * 7 + word) % 3 == 0),
        );
        let clean = code.encode(&data);
        let mut error = BitVec::zeros(n);
        if word % 16 == 0 {
            error.set((word * 13 + 7) % n, true);
        }
        if word % 64 == 0 {
            error.set((word * 29 + 3) % n, true);
        }
        stored.push(&clean ^ &error);
        errors.push(error);
    }
    PassInputs { stored, errors }
}

/// The word-at-a-time burst decode phase this PR replaced: one per-word
/// batched kernel pass over the stored words, then a syndrome resolve for
/// every word.
fn decode_phase_wordwise<C: LinearBlockCode>(
    code: &C,
    inputs: &PassInputs,
    syndromes: &mut Vec<u64>,
    out: &mut [DecodeResult],
) {
    code.syndrome_kernel()
        .syndrome_words_into(&inputs.stored, syndromes);
    for ((stored, &syndrome_word), decode) in inputs
        .stored
        .iter()
        .zip(syndromes.iter())
        .zip(out.iter_mut())
    {
        code.decode_with_syndrome_into(stored, syndrome_word, decode);
    }
}

/// The bit-sliced decode phase `MemoryChip::decode_burst` runs today: one
/// bit-sliced kernel pass over the raw error patterns, then a sparse mask
/// walk (clean words short-circuit, flagged words resolve).
fn decode_phase_bitsliced<C: LinearBlockCode>(
    code: &C,
    inputs: &PassInputs,
    syndromes: &mut Vec<u64>,
    masks: &mut Vec<u64>,
    slices: &mut BitsliceScratch,
    out: &mut [DecodeResult],
) {
    code.syndrome_kernel()
        .syndrome_words_bitsliced_into(&inputs.errors, syndromes, masks, slices);
    for (block, &mask) in masks.iter().enumerate() {
        let start = block * 64;
        let block_len = (out.len() - start).min(64);
        let block_width = if block_len == 64 {
            u64::MAX
        } else {
            (1u64 << block_len) - 1
        };
        let mut clean = !mask & block_width;
        while clean != 0 {
            let index = start + clean.trailing_zeros() as usize;
            code.decode_clean_into(&inputs.stored[index], &mut out[index]);
            clean &= clean - 1;
        }
        let mut dirty = mask;
        while dirty != 0 {
            let index = start + dirty.trailing_zeros() as usize;
            code.decode_with_syndrome_into(
                &inputs.stored[index],
                syndromes[index],
                &mut out[index],
            );
            dirty &= dirty - 1;
        }
    }
}

fn bench_family<C: LinearBlockCode>(c: &mut Criterion, label: &str, code: &C) {
    let inputs = pass_inputs(code);

    // Correctness cross-check before timing: both phases produce
    // byte-identical decode results and syndromes.
    let mut syndromes_a = Vec::new();
    let mut reference = vec![DecodeResult::default(); BURST_WORDS];
    decode_phase_wordwise(code, &inputs, &mut syndromes_a, &mut reference);
    let mut syndromes_b = Vec::new();
    let mut masks = Vec::new();
    let mut slices = BitsliceScratch::new();
    let mut bitsliced = vec![DecodeResult::default(); BURST_WORDS];
    decode_phase_bitsliced(
        code,
        &inputs,
        &mut syndromes_b,
        &mut masks,
        &mut slices,
        &mut bitsliced,
    );
    assert_eq!(syndromes_b, syndromes_a, "linearity: H·(c ⊕ e) = H·e");
    assert_eq!(
        bitsliced, reference,
        "bit-sliced phase must stay byte-identical"
    );

    let mut group = c.benchmark_group(format!("bitsliced_kernel/{label}"));
    group.bench_function(format!("decode_phase_wordwise_{BURST_WORDS}"), |b| {
        let mut syndromes = Vec::new();
        let mut out = vec![DecodeResult::default(); BURST_WORDS];
        b.iter(|| {
            decode_phase_wordwise(code, &inputs, &mut syndromes, &mut out);
            black_box(out.last());
        })
    });
    group.bench_function(format!("decode_phase_bitsliced_{BURST_WORDS}"), |b| {
        let mut syndromes = Vec::new();
        let mut masks = Vec::new();
        let mut slices = BitsliceScratch::new();
        let mut out = vec![DecodeResult::default(); BURST_WORDS];
        b.iter(|| {
            decode_phase_bitsliced(
                code,
                &inputs,
                &mut syndromes,
                &mut masks,
                &mut slices,
                &mut out,
            );
            black_box(out.last());
        })
    });
    // Kernel pass alone over the sparse raw error patterns — the input the
    // chip's burst path actually feeds it, where all-zero 64-word chunks
    // skip the transpose and row evaluation entirely.
    group.bench_function(format!("kernel_bitsliced_sparse_{BURST_WORDS}"), |b| {
        let mut syndromes = Vec::new();
        let mut masks = Vec::new();
        let mut slices = BitsliceScratch::new();
        b.iter(|| {
            code.syndrome_kernel().syndrome_words_bitsliced_into(
                &inputs.errors,
                &mut syndromes,
                &mut masks,
                &mut slices,
            );
            black_box(syndromes.last().copied())
        })
    });
    // Dense-input kernel comparison (no sparsity, no decode): the raw cost
    // of the transposed row evaluation vs. the per-word loop on the same
    // stored codewords.
    group.bench_function(format!("kernel_wordwise_dense_{BURST_WORDS}"), |b| {
        let mut syndromes = Vec::new();
        b.iter(|| {
            code.syndrome_kernel()
                .syndrome_words_into(&inputs.stored, &mut syndromes);
            black_box(syndromes.last().copied())
        })
    });
    group.bench_function(format!("kernel_bitsliced_dense_{BURST_WORDS}"), |b| {
        let mut syndromes = Vec::new();
        let mut masks = Vec::new();
        let mut slices = BitsliceScratch::new();
        b.iter(|| {
            code.syndrome_kernel().syndrome_words_bitsliced_into(
                &inputs.stored,
                &mut syndromes,
                &mut masks,
                &mut slices,
            );
            black_box(syndromes.last().copied())
        })
    });
    group.finish();
}

fn bench_bitsliced_kernel(c: &mut Criterion) {
    bench_family(
        c,
        "hamming_71_64",
        &HammingCode::random(64, 1).expect("valid code"),
    );
    bench_family(
        c,
        "secded_72_64",
        &ExtendedHammingCode::random(64, 1).expect("valid code"),
    );
    bench_family(c, "bch_78_64", &BchCode::dec(64).expect("valid code"));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bitsliced_kernel
);
criterion_main!(benches);
