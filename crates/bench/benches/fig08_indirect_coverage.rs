//! Fig. 8 bench: regenerates the missed-indirect-error curves for all five
//! profilers (including HARP-A and HARP-A+BEEP) and times the sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_bench::{bench_config, small_bench_config};
use harp_sim::experiments::fig8;

fn bench_fig8(c: &mut Criterion) {
    println!("\n{}", fig8::run(&bench_config()).render());
    let config = small_bench_config();
    c.bench_function("fig08/coverage_sweep_five_profilers", |b| {
        b.iter(|| fig8::run(&config))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8
);
criterion_main!(benches);
