//! Benchmarks the burst-routed controller/module read paths against their
//! scalar reference twins, per on-die ECC family.
//!
//! * `module_path/*` — one DDR4-style rank cache-line read:
//!   `MemoryModule::read` (one `read_burst` per chip per line + precomputed
//!   `BitInterleaveMap` assembly) against `MemoryModule::read_scalar` (the
//!   word-at-a-time, `locate`-per-bit reference). Lines/sec = `LINES` /
//!   reported per-iteration time.
//! * `controller_path/*` — one whole-chip scrub pass through the full
//!   on-die ECC → bit repair → secondary ECC path:
//!   `MemoryController::read_range` (one chip-side burst) against a scalar
//!   `MemoryController::read` loop.
//!
//! Both comparisons assert byte-identical outcomes before timing, so the
//! measured ratio is pure execution-plan overhead — the regression guard for
//! the controller/module layer's burst-routing performance claim.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use harp_bch::BchCode;
use harp_controller::MemoryController;
use harp_ecc::{ExtendedHammingCode, HammingCode, LinearBlockCode, SecondaryEcc};
use harp_gf2::BitVec;
use harp_memsim::{FaultModel, MemoryChip};
use harp_module::{MemoryModule, ModuleGeometry};

/// Cache lines per module-path iteration.
const LINES: usize = 16;

/// ECC words per controller scrub pass.
const SCRUB_WORDS: usize = 1024;

fn bench_module_path<C, E, F>(c: &mut Criterion, label: &str, make_code: F)
where
    C: LinearBlockCode + Clone,
    E: std::fmt::Debug,
    F: FnMut(u64) -> Result<C, E>,
{
    let geometry = ModuleGeometry::ddr4_style_rank();
    let mut module =
        MemoryModule::heterogeneous_with(geometry, LINES, 0x30D, make_code).expect("module codes");
    let n = module.chips()[0].code().codeword_len();
    for line in 0..LINES {
        // A quarter of the chips carry at-risk cells so the corrected and
        // uncorrectable decode branches stay on the measured path.
        for chip in 0..geometry.chips() {
            if (line + chip) % 4 == 0 {
                let at_risk = [(line * 13 + chip) % n, (line * 29 + chip * 7 + 3) % n];
                module.set_fault_model(
                    chip,
                    line,
                    0,
                    FaultModel::uniform(&at_risk[..1 + (line + chip) % 2], 0.5),
                );
            }
        }
        let payload: BitVec = (0..geometry.line_bits())
            .map(|i| (i + line) % 3 != 0)
            .collect();
        module.write(line, &payload);
    }

    // Correctness cross-check before timing: burst == scalar on both paths.
    let mut scalar_rng = ChaCha8Rng::seed_from_u64(7);
    let mut burst_rng = ChaCha8Rng::seed_from_u64(7);
    for line in 0..LINES {
        let scalar = module.read_scalar(line, &mut scalar_rng);
        assert_eq!(module.read(line, &mut burst_rng), scalar);
        let scalar = module.read_bypass_scalar(line, &mut scalar_rng);
        assert_eq!(module.read_bypass(line, &mut burst_rng), scalar);
    }

    let mut group = c.benchmark_group(format!("module_path/{label}"));
    group.bench_function(format!("scalar_line_read_{LINES}"), |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        b.iter(|| {
            let mut errors = 0usize;
            for line in 0..LINES {
                errors += module
                    .read_scalar(line, &mut rng)
                    .post_correction_errors
                    .len();
            }
            black_box(errors)
        })
    });
    group.bench_function(format!("burst_line_read_{LINES}"), |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        b.iter(|| {
            let mut errors = 0usize;
            for line in 0..LINES {
                errors += module.read(line, &mut rng).post_correction_errors.len();
            }
            black_box(errors)
        })
    });
    group.finish();
}

fn bench_controller_path<C: LinearBlockCode + Clone>(c: &mut Criterion, label: &str, code: C) {
    let n = code.codeword_len();
    let k = code.data_len();
    let mut chip = MemoryChip::new(code, SCRUB_WORDS);
    let mut rng = ChaCha8Rng::seed_from_u64(0x5C0B);
    for word in 0..SCRUB_WORDS {
        let data: BitVec = (0..k).map(|_| rand::Rng::gen_bool(&mut rng, 0.5)).collect();
        chip.write(word, &data);
        if word % 4 == 0 {
            let at_risk = [word % n, (word * 13 + 7) % n, (word * 29 + 3) % n];
            chip.set_fault_model(word, FaultModel::uniform(&at_risk[..1 + word % 3], 0.5));
        }
    }
    let mut controller = MemoryController::new(chip, SecondaryEcc::ideal_sec());
    // Reactive profiling off keeps each timed pass stateless (the profile
    // would otherwise grow once and flatten later iterations).
    controller.set_reactive_profiling(false);

    // Correctness cross-check before timing: read_range == scalar loop.
    let mut scalar_rng = ChaCha8Rng::seed_from_u64(7);
    let mut scalar_check = controller.clone();
    let scalar: Vec<_> = (0..SCRUB_WORDS)
        .map(|w| scalar_check.read(w, &mut scalar_rng))
        .collect();
    let mut burst_rng = ChaCha8Rng::seed_from_u64(7);
    assert_eq!(
        controller.read_range(0..SCRUB_WORDS, &mut burst_rng),
        scalar
    );

    let mut group = c.benchmark_group(format!("controller_path/{label}"));
    group.bench_function(format!("scalar_read_loop_{SCRUB_WORDS}"), |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        b.iter(|| {
            let mut escaped = 0usize;
            for word in 0..SCRUB_WORDS {
                escaped += controller.read(word, &mut rng).escaped_errors.len();
            }
            black_box(escaped)
        })
    });
    group.bench_function(format!("read_range_{SCRUB_WORDS}"), |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        b.iter(|| {
            let outcomes = controller.read_range(0..SCRUB_WORDS, &mut rng);
            black_box(
                outcomes
                    .iter()
                    .map(|o| o.escaped_errors.len())
                    .sum::<usize>(),
            )
        })
    });
    group.finish();
}

fn bench_module_and_controller_paths(c: &mut Criterion) {
    let word_bits = ModuleGeometry::ddr4_style_rank().ondie_word_bits();
    bench_module_path(c, "hamming_71_64", |seed| {
        HammingCode::random(word_bits, seed)
    });
    bench_module_path(c, "secded_72_64", |seed| {
        ExtendedHammingCode::random(word_bits, seed)
    });
    let bch = BchCode::dec(word_bits).expect("valid code");
    bench_module_path(c, "bch_78_64", |_seed| {
        Ok::<_, harp_bch::BchError>(bch.clone())
    });

    bench_controller_path(
        c,
        "hamming_71_64",
        HammingCode::random(64, 1).expect("valid code"),
    );
    bench_controller_path(
        c,
        "secded_72_64",
        ExtendedHammingCode::random(64, 1).expect("valid code"),
    );
    bench_controller_path(c, "bch_78_64", BchCode::dec(64).expect("valid code"));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_module_and_controller_paths
);
criterion_main!(benches);
