//! Microbenchmarks of the core operations every experiment is built from:
//! encoding, decoding, fault injection, exact error-space enumeration, and a
//! full profiling round for each profiler.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use harp_ecc::analysis::FailureDependence;
use harp_ecc::{ErrorSpace, HammingCode, LinearBlockCode};
use harp_gf2::BitVec;
use harp_memsim::pattern::DataPattern;
use harp_memsim::{FaultModel, MemoryChip};
use harp_profiler::{ProfilerKind, ProfilingCampaign};

fn bench_encode_decode(c: &mut Criterion) {
    let code = HammingCode::random(64, 1).unwrap();
    let data = BitVec::from_u64(64, 0xDEAD_BEEF_0123_4567);
    let mut group = c.benchmark_group("core/ecc");
    group.bench_function("encode_71_64", |b| b.iter(|| code.encode(&data)));
    let mut stored = code.encode(&data);
    stored.flip(17);
    stored.flip(42);
    group.bench_function("decode_double_error_71_64", |b| {
        b.iter(|| code.decode(&stored))
    });
    let code128 = HammingCode::random(128, 1).unwrap();
    let data128 = BitVec::ones(128);
    group.bench_function("encode_136_128", |b| b.iter(|| code128.encode(&data128)));
    group.finish();
}

fn bench_fault_injection_and_chip_read(c: &mut Criterion) {
    let code = HammingCode::random(64, 2).unwrap();
    let mut chip = MemoryChip::new(code, 1);
    chip.set_fault_model(0, FaultModel::uniform(&[3, 19, 42, 66], 0.5));
    chip.write(0, &BitVec::ones(64));
    let mut group = c.benchmark_group("core/memsim");
    group.bench_function("chip_read_with_injection", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| chip.read(0, &mut rng))
    });
    group.finish();
}

fn bench_error_space_enumeration(c: &mut Criterion) {
    let code = HammingCode::random(64, 3).unwrap();
    let mut group = c.benchmark_group("core/analysis");
    for n in [2usize, 4, 6, 8] {
        let at_risk: Vec<usize> = (0..n).map(|i| i * 8 + 1).collect();
        group.bench_function(format!("error_space_n{n}"), |b| {
            b.iter(|| ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell))
        });
    }
    group.finish();
}

fn bench_profiling_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/profiling_campaign_32_rounds");
    for kind in ProfilerKind::ALL {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || {
                    let code = HammingCode::random(64, 5).unwrap();
                    ProfilingCampaign::new(
                        code,
                        FaultModel::uniform(&[3, 19, 42, 60], 0.5),
                        DataPattern::Random,
                        7,
                    )
                },
                |campaign| campaign.run(kind, 32),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode_decode,
    bench_fault_injection_and_chip_read,
    bench_error_space_enumeration,
    bench_profiling_round
);
criterion_main!(benches);
