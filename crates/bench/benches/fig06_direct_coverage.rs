//! Fig. 6 bench: regenerates the direct-error coverage curves (HARP-U vs.
//! Naive vs. BEEP) and times the coverage sweep. Includes the data-pattern
//! ablation called out in DESIGN.md §5.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_bench::{bench_config, small_bench_config};
use harp_memsim::pattern::DataPattern;
use harp_sim::experiments::fig6;

fn bench_fig6(c: &mut Criterion) {
    let config = bench_config();
    println!("\n{}", fig6::run(&config).render());

    // Ablation: static data patterns vs. the random pattern (the paper notes
    // random performs on par or better, §7.1.2).
    for pattern in [DataPattern::Charged, DataPattern::Checkered] {
        let ablation = harp_sim::EvaluationConfig {
            pattern,
            ..small_bench_config()
        };
        println!(
            "pattern ablation ({pattern})\n{}",
            fig6::run(&ablation).render()
        );
    }

    let timing_config = small_bench_config();
    c.bench_function("fig06/coverage_sweep_three_profilers", |b| {
        b.iter(|| fig6::run(&timing_config))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6
);
criterion_main!(benches);
