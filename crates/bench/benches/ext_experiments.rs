//! Extension benches: regenerate the five extension experiments (DEC BCH
//! on-die ECC, BEER reverse engineering, multi-chip secondary-ECC layout,
//! repair-capacity planning, VRT scrubbing) and time each one.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_bench::small_bench_config;
use harp_sim::experiments::{ext_bch, ext_beer, ext_module, ext_repair, ext_vrt};

fn bench_extensions(c: &mut Criterion) {
    let config = small_bench_config();

    println!("\n{}", ext_bch::run(&config).render());
    c.bench_function("ext1/bch_error_space", |b| b.iter(|| ext_bch::run(&config)));

    println!("\n{}", ext_beer::run(&config).render());
    c.bench_function("ext2/beer_reverse_engineering", |b| {
        b.iter(|| ext_beer::run(&config))
    });

    println!("\n{}", ext_module::run(&config).render());
    c.bench_function("ext3/module_layouts", |b| {
        b.iter(|| ext_module::run(&config))
    });

    println!("\n{}", ext_repair::run(&config).render());
    c.bench_function("ext4/repair_capacity", |b| {
        b.iter(|| ext_repair::run(&config))
    });

    println!("\n{}", ext_vrt::run(&config).render());
    c.bench_function("ext5/vrt_scrubbing", |b| b.iter(|| ext_vrt::run(&config)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_extensions
);
criterion_main!(benches);
