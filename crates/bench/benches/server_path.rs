//! Benchmarks the `harpd` serving path over the deterministic in-process
//! transport: what the daemon adds on top of the sweep engine itself.
//!
//! * `server_path/submit_to_first_snapshot` — the interactive latency a
//!   submitter sees: frame a submit request, durably persist the round-0
//!   archive and job record, get the id back, open a watch, and receive the
//!   first coverage snapshot from the worker pool.
//! * `server_path/complete_4_tiny_jobs` — end-to-end job throughput: four
//!   tiny sweeps submitted back-to-back and all watched to their terminal
//!   result frames through the two-worker pool.
//!
//! Exported to `BENCH_server_path.json` by `harp bench-export` (see
//! BENCHMARKS.md); both numbers include the durable fsync-ordered archive
//! writes, so they track the cost of the crash-durability guarantee too.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use harp_profiler::ProfilerKind;
use harp_server::client::Client;
use harp_server::daemon::{Daemon, DaemonConfig};
use harp_server::proto::{encode_request, Request};
use harp_server::transport::{duplex, FrameTransport};
use harp_sim::minijson::Json;
use harp_sim::EvaluationConfig;

/// A deliberately tiny job: the serving overhead, not the sweep, dominates.
fn tiny_config() -> EvaluationConfig {
    EvaluationConfig {
        data_bits: 16,
        num_codes: 1,
        words_per_code: 2,
        rounds: 2,
        error_counts: vec![2],
        probabilities: vec![0.5],
        threads: 1,
        ..EvaluationConfig::quick()
    }
}

const PROFILERS: [ProfilerKind; 1] = [ProfilerKind::HarpU];

fn connect(daemon: &Daemon) -> Client<harp_server::transport::PairTransport> {
    let (client_end, server_end) = duplex();
    let handler = daemon.clone();
    std::thread::spawn(move || handler.handle(server_end));
    Client::new(client_end)
}

/// One submit → first-snapshot round trip over the raw frame transport.
fn submit_to_first_snapshot(daemon: &Daemon, config: &EvaluationConfig) -> usize {
    let (mut raw, server_end) = duplex();
    let handler = daemon.clone();
    std::thread::spawn(move || handler.handle(server_end));
    raw.send(&encode_request(&Request::Submit {
        config: config.clone(),
        profilers: PROFILERS.to_vec(),
    }))
    .expect("submit frame");
    let submitted = raw.recv().expect("recv").expect("submitted frame");
    let job = submitted.get("job").and_then(Json::as_u64).expect("job id");
    raw.send(&encode_request(&Request::Watch { job }))
        .expect("watch frame");
    let first = raw.recv().expect("recv").expect("first snapshot");
    assert_eq!(first.get("type").and_then(Json::as_str), Some("snapshot"));
    // Dropping the transport mid-watch ends the handler thread cleanly.
    first.render().len()
}

fn bench_server_path(c: &mut Criterion) {
    let state_dir = std::env::temp_dir().join(format!("harp_bench_server_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let daemon = Daemon::start(DaemonConfig::new(&state_dir)).expect("daemon starts");
    let config = tiny_config();

    let mut group = c.benchmark_group("server_path");
    group.bench_function("submit_to_first_snapshot", |b| {
        b.iter(|| black_box(submit_to_first_snapshot(&daemon, &config)))
    });
    group.bench_function("complete_4_tiny_jobs", |b| {
        b.iter(|| {
            let mut client = connect(&daemon);
            let jobs: Vec<u64> = (0..4)
                .map(|_| client.submit(&config, &PROFILERS).expect("submit"))
                .collect();
            let mut total_frames = 0usize;
            for job in jobs {
                client
                    .watch(job, |_| total_frames += 1)
                    .expect("watch to completion");
            }
            black_box(total_frames)
        })
    });
    group.finish();

    connect(&daemon).shutdown().expect("shutdown");
    daemon.join();
    let _ = std::fs::remove_dir_all(&state_dir);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_server_path
);
criterion_main!(benches);
