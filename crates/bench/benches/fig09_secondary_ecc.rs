//! Fig. 9 bench: regenerates both panels (required secondary-ECC correction
//! capability) plus the headline coverage-speedup summary, and includes the
//! secondary-ECC strength ablation from §6.3.2.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_bench::{bench_config, small_bench_config};
use harp_ecc::SecondaryEcc;
use harp_gf2::BitVec;
use harp_profiler::ReactiveProfiler;
use harp_sim::experiments::fig9;

fn bench_fig9(c: &mut Criterion) {
    println!("\n{}", fig9::run(&bench_config()).render());

    // Ablation (§6.3.2): a stronger secondary ECC tolerates multi-bit
    // post-correction errors during reactive profiling; measure its
    // observation cost relative to the SEC configuration.
    let mut group = c.benchmark_group("fig09/secondary_ecc_strength_ablation");
    for capability in [1usize, 2, 3] {
        group.bench_function(format!("ideal_t{capability}"), |b| {
            let written = BitVec::ones(64);
            let mut observed = written.clone();
            observed.flip(3);
            observed.flip(17);
            b.iter(|| {
                let mut reactive = ReactiveProfiler::new(SecondaryEcc::ideal(capability));
                reactive.observe(&written, &observed)
            })
        });
    }
    group.finish();

    let config = small_bench_config();
    c.bench_function("fig09/full_run", |b| b.iter(|| fig9::run(&config)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9
);
criterion_main!(benches);
