//! Fig. 10 bench: regenerates the data-retention BER case study (before /
//! after reactive profiling) plus the headline speedup summary, and times the
//! end-to-end pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_bench::{bench_config, small_bench_config};
use harp_sim::experiments::{fig10, fig9, headline, sweep};

fn bench_fig10(c: &mut Criterion) {
    let config = harp_sim::EvaluationConfig {
        probabilities: vec![0.5, 0.75],
        ..bench_config()
    };
    let fig10_result = fig10::run(&config);
    println!("\n{}", fig10_result.render());

    // Headline summary (coverage speedups + case-study speedup).
    let fig9_sweep = sweep::run_coverage_sweep(&config, &fig9::PROFILERS);
    let fig9_result = fig9::from_sweep(&fig9_sweep);
    println!(
        "{}",
        headline::summarize(&config, &fig9_result, &fig10_result).render()
    );

    let timing_config = small_bench_config();
    c.bench_function("fig10/case_study_single_rber", |b| {
        b.iter(|| fig10::run_with_rbers(&timing_config, &[0.05]))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig10
);
criterion_main!(benches);
