//! Benchmarks the batched syndrome kernel against the naive matrix-vector
//! path, for both code families, at single-read and batched granularity —
//! plus the end-to-end scrub-pass comparison: `MemoryChip::read_burst`
//! against a word-at-a-time `MemoryChip::read` loop.
//!
//! The kernel is the hot path of every Monte-Carlo read (each decode starts
//! with a syndrome), so this bench is the regression guard for the
//! `LinearBlockCode` layer's performance claim: packed-word evaluation beats
//! row-by-row `mul_vec`, the batched entry points amortize output allocation
//! across a campaign's worth of reads, and the allocation-free burst path
//! turns that kernel speedup into an end-to-end read throughput win (the
//! `read_path/*` groups read `BURST_WORDS` words per iteration, so words/sec
//! = `BURST_WORDS` / reported per-iteration time).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use harp_bch::BchCode;
use harp_ecc::{ExtendedHammingCode, HammingCode, LinearBlockCode};
use harp_gf2::{BitVec, SyndromeKernel};
use harp_memsim::pattern::DataPattern;
use harp_memsim::{BurstScratch, FaultModel, MemoryChip};
use harp_profiler::{BatchWord, CampaignBatch, ProfilerKind, ProfilingCampaign};

/// One campaign's worth of stored (possibly corrupted) codewords.
fn stored_words<C: LinearBlockCode>(code: &C, count: usize, seed: u64) -> Vec<BitVec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let data: BitVec = (0..code.data_len())
                .map(|_| rand::Rng::gen_bool(&mut rng, 0.5))
                .collect();
            let mut stored = code.encode(&data);
            // Corrupt a couple of positions so syndromes are non-trivial.
            stored.flip(i % stored.len());
            stored.flip((i * 7 + 3) % stored.len());
            stored
        })
        .collect()
}

fn bench_code<C: LinearBlockCode>(c: &mut Criterion, label: &str, code: &C) {
    let words = stored_words(code, 4096, 0xBEEF);
    let h = code.parity_check_matrix().clone();
    let kernel = code.syndrome_kernel();

    let mut group = c.benchmark_group(format!("syndrome_kernel/{label}"));
    group.bench_function("mul_vec_single", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % words.len();
            black_box(h.mul_vec(&words[i]))
        })
    });
    group.bench_function("kernel_single", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % words.len();
            black_box(kernel.syndrome(&words[i]))
        })
    });
    group.bench_function("kernel_word_single", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % words.len();
            black_box(kernel.syndrome_word(&words[i]))
        })
    });
    group.bench_function("kernel_batch_4096", |b| {
        b.iter(|| black_box(code.syndromes_batch(&words)))
    });
    group.bench_function("kernel_batch_words_4096", |b| {
        let mut out = Vec::with_capacity(words.len());
        b.iter(|| {
            kernel.syndrome_words_into(&words, &mut out);
            black_box(out.last().copied())
        })
    });
    group.finish();
}

/// Number of ECC words per simulated scrub pass in the `read_path` groups.
const BURST_WORDS: usize = 1024;

/// End-to-end scrub pass: every word read once per iteration, through the
/// scalar reference path and through the burst path. A quarter of the words
/// carry at-risk bits so the corrected/uncorrectable decode branches stay on
/// the measured path.
fn bench_read_path<C: LinearBlockCode + Clone>(c: &mut Criterion, label: &str, code: C) {
    let n = code.codeword_len();
    let k = code.data_len();
    let mut chip = MemoryChip::new(code, BURST_WORDS);
    let mut rng = ChaCha8Rng::seed_from_u64(0x5C0B);
    for word in 0..BURST_WORDS {
        let data: BitVec = (0..k).map(|_| rand::Rng::gen_bool(&mut rng, 0.5)).collect();
        chip.write(word, &data);
        if word % 4 == 0 {
            let at_risk = [word % n, (word * 13 + 7) % n, (word * 29 + 3) % n];
            chip.set_fault_model(word, FaultModel::uniform(&at_risk[..1 + word % 3], 0.5));
        }
    }

    // Correctness cross-check before timing: burst == scalar loop.
    let mut scalar_rng = ChaCha8Rng::seed_from_u64(7);
    let scalar: Vec<_> = (0..BURST_WORDS)
        .map(|w| chip.read(w, &mut scalar_rng))
        .collect();
    let mut burst_rng = ChaCha8Rng::seed_from_u64(7);
    let mut scratch = BurstScratch::new();
    assert_eq!(
        chip.read_burst(0..BURST_WORDS, &mut burst_rng, &mut scratch),
        scalar.as_slice()
    );

    let mut group = c.benchmark_group(format!("read_path/{label}"));
    group.bench_function(format!("scalar_read_loop_{BURST_WORDS}"), |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        b.iter(|| {
            let mut corrected = 0usize;
            for word in 0..BURST_WORDS {
                corrected += chip
                    .read(word, &mut rng)
                    .decode_result()
                    .outcome
                    .correction_count();
            }
            black_box(corrected)
        })
    });
    group.bench_function(format!("read_burst_{BURST_WORDS}"), |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut scratch = BurstScratch::new();
        b.iter(|| {
            let observations = chip.read_burst(0..BURST_WORDS, &mut rng, &mut scratch);
            black_box(
                observations
                    .iter()
                    .map(|o| o.decode_result().outcome.correction_count())
                    .sum::<usize>(),
            )
        })
    });
    group.finish();
}

/// Words per simulated sweep cell in the `campaign_path` groups.
const CELL_WORDS: usize = 64;

/// Profiling rounds per campaign in the `campaign_path` groups (kept short
/// so fixed per-word setup stays a realistic fraction of a sweep cell's
/// cost; rounds/sec = `CELL_WORDS * CAMPAIGN_ROUNDS` / per-iteration time).
const CAMPAIGN_ROUNDS: usize = 16;

/// End-to-end campaign comparison for one sweep cell: the historical
/// per-word data flow (one `ProfilingCampaign` and one one-word chip per
/// word, each round a one-word burst) against the cell-batched engine (all
/// words on one chip, one multi-word burst per round). Both paths produce
/// bit-identical snapshots — asserted before timing — so the ratio is pure
/// execution-plan overhead.
fn bench_campaign_path<C: LinearBlockCode + Clone + Send + 'static>(
    c: &mut Criterion,
    label: &str,
    code: C,
) {
    let n = code.codeword_len();
    let words: Vec<BatchWord> = (0..CELL_WORDS)
        .map(|w| {
            // Fixed offsets keep the 1–3 positions distinct modulo every
            // benched codeword length (n > 41).
            let at_risk = [w % n, (w + 17) % n, (w + 41) % n];
            BatchWord::new(
                FaultModel::uniform(&at_risk[..1 + w % 3], 0.5),
                DataPattern::Random,
                0xCE11_0000 + w as u64,
            )
        })
        .collect();
    let batch = CampaignBatch::new(code.clone(), words.clone());

    // Correctness cross-check before timing: batched == scalar reference.
    let batched = batch.run(ProfilerKind::HarpU, CAMPAIGN_ROUNDS);
    for (index, result) in batched.iter().enumerate() {
        assert_eq!(
            result,
            &batch
                .scalar_campaign(index)
                .run(ProfilerKind::HarpU, CAMPAIGN_ROUNDS)
        );
    }

    let mut group = c.benchmark_group(format!("campaign_path/{label}"));
    group.bench_function(format!("per_word_{CELL_WORDS}x{CAMPAIGN_ROUNDS}"), |b| {
        b.iter(|| {
            let mut identified = 0usize;
            for word in &words {
                let campaign = ProfilingCampaign::new(
                    code.clone(),
                    word.faults.clone(),
                    word.pattern,
                    word.seed,
                );
                let result = campaign.run(ProfilerKind::HarpU, CAMPAIGN_ROUNDS);
                identified += result.final_identified().len();
            }
            black_box(identified)
        })
    });
    group.bench_function(
        format!("cell_batched_{CELL_WORDS}x{CAMPAIGN_ROUNDS}"),
        |b| {
            b.iter(|| {
                let results = batch.run(ProfilerKind::HarpU, CAMPAIGN_ROUNDS);
                black_box(
                    results
                        .iter()
                        .map(|r| r.final_identified().len())
                        .sum::<usize>(),
                )
            })
        },
    );
    group.finish();
}

fn bench_syndrome_kernels(c: &mut Criterion) {
    // Correctness cross-check before timing: kernel == matrix on every word.
    let hamming = HammingCode::random(64, 1).expect("valid code");
    let verify = stored_words(&hamming, 64, 7);
    for word in &verify {
        assert_eq!(
            hamming.syndrome_kernel().syndrome(word),
            hamming.parity_check_matrix().mul_vec(word)
        );
    }
    assert_eq!(
        SyndromeKernel::new(hamming.parity_check_matrix()),
        *hamming.syndrome_kernel()
    );

    bench_code(c, "hamming_71_64", &hamming);
    bench_code(
        c,
        "hamming_136_128",
        &HammingCode::random(128, 1).expect("valid code"),
    );
    bench_code(c, "bch_78_64", &BchCode::dec(64).expect("valid code"));

    bench_read_path(c, "hamming_71_64", hamming.clone());
    bench_read_path(
        c,
        "secded_72_64",
        ExtendedHammingCode::random(64, 1).expect("valid code"),
    );
    bench_read_path(c, "bch_78_64", BchCode::dec(64).expect("valid code"));

    bench_campaign_path(c, "hamming_71_64", hamming);
    bench_campaign_path(
        c,
        "secded_72_64",
        ExtendedHammingCode::random(64, 1).expect("valid code"),
    );
    bench_campaign_path(c, "bch_78_64", BchCode::dec(64).expect("valid code"));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_syndrome_kernels
);
criterion_main!(benches);
