//! Benchmarks the batched syndrome kernel against the naive matrix-vector
//! path, for both code families, at single-read and batched granularity.
//!
//! The kernel is the hot path of every Monte-Carlo read (each decode starts
//! with a syndrome), so this bench is the regression guard for the
//! `LinearBlockCode` layer's performance claim: packed-word evaluation beats
//! row-by-row `mul_vec`, and the batched entry points amortize output
//! allocation across a campaign's worth of reads.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use harp_bch::BchCode;
use harp_ecc::{HammingCode, LinearBlockCode};
use harp_gf2::{BitVec, SyndromeKernel};

/// One campaign's worth of stored (possibly corrupted) codewords.
fn stored_words<C: LinearBlockCode>(code: &C, count: usize, seed: u64) -> Vec<BitVec> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|i| {
            let data: BitVec = (0..code.data_len())
                .map(|_| rand::Rng::gen_bool(&mut rng, 0.5))
                .collect();
            let mut stored = code.encode(&data);
            // Corrupt a couple of positions so syndromes are non-trivial.
            stored.flip(i % stored.len());
            stored.flip((i * 7 + 3) % stored.len());
            stored
        })
        .collect()
}

fn bench_code<C: LinearBlockCode>(c: &mut Criterion, label: &str, code: &C) {
    let words = stored_words(code, 4096, 0xBEEF);
    let h = code.parity_check_matrix().clone();
    let kernel = code.syndrome_kernel();

    let mut group = c.benchmark_group(format!("syndrome_kernel/{label}"));
    group.bench_function("mul_vec_single", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % words.len();
            black_box(h.mul_vec(&words[i]))
        })
    });
    group.bench_function("kernel_single", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % words.len();
            black_box(kernel.syndrome(&words[i]))
        })
    });
    group.bench_function("kernel_word_single", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % words.len();
            black_box(kernel.syndrome_word(&words[i]))
        })
    });
    group.bench_function("kernel_batch_4096", |b| {
        b.iter(|| black_box(code.syndromes_batch(&words)))
    });
    group.bench_function("kernel_batch_words_4096", |b| {
        let mut out = Vec::with_capacity(words.len());
        b.iter(|| {
            kernel.syndrome_words_into(&words, &mut out);
            black_box(out.last().copied())
        })
    });
    group.finish();
}

fn bench_syndrome_kernels(c: &mut Criterion) {
    // Correctness cross-check before timing: kernel == matrix on every word.
    let hamming = HammingCode::random(64, 1).expect("valid code");
    let verify = stored_words(&hamming, 64, 7);
    for word in &verify {
        assert_eq!(
            hamming.syndrome_kernel().syndrome(word),
            hamming.parity_check_matrix().mul_vec(word)
        );
    }
    assert_eq!(
        SyndromeKernel::new(hamming.parity_check_matrix()),
        *hamming.syndrome_kernel()
    );

    bench_code(c, "hamming_71_64", &hamming);
    bench_code(
        c,
        "hamming_136_128",
        &HammingCode::random(128, 1).expect("valid code"),
    );
    bench_code(c, "bch_78_64", &BchCode::dec(64).expect("valid code"));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_syndrome_kernels
);
criterion_main!(benches);
