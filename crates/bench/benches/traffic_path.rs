//! Benchmarks the live-traffic co-scheduling path.
//!
//! * `traffic_path/event_queue/*` — the raw discrete-event queue: push/pop
//!   throughput with heavy timestamp collisions (the determinism tie-break
//!   is on this hot path).
//! * `traffic_path/<code>/run_smoke` — one full co-scheduled run (demand
//!   reads + scrub bursts + deferred repair updates) at the smoke shape,
//!   for SEC Hamming and DEC BCH chips.
//!
//! Determinism is asserted before timing: the same seed must reproduce the
//! same report, so the numbers describe the deterministic scheduler, not a
//! racy shortcut.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use harp_bch::BchCode;
use harp_ecc::HammingCode;
use harp_sim::traffic::{run_traffic, EventQueue, TrafficConfig};

/// Events per queue benchmark iteration.
const QUEUE_EVENTS: u64 = 10_000;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("traffic_path/event_queue");
    group.bench_function(format!("push_pop_{QUEUE_EVENTS}"), |b| {
        b.iter(|| {
            let mut queue = EventQueue::new();
            // Eight-way timestamp collisions exercise the (time, seq)
            // tie-break on every pop.
            for i in 0..QUEUE_EVENTS {
                queue.push(i / 8, i);
            }
            let mut sum = 0u64;
            while let Some(event) = queue.pop() {
                sum = sum.wrapping_add(event.kind);
            }
            black_box(sum)
        })
    });
    group.finish();
}

fn bench_traffic_runs(c: &mut Criterion) {
    let config = TrafficConfig {
        rber: 0.02,
        ..TrafficConfig::smoke()
    };
    // Correctness cross-check before timing: same seed, same report.
    let reference = run_traffic(&config, HammingCode::random(64, 0x7F).expect("valid code"));
    assert_eq!(
        reference,
        run_traffic(&config, HammingCode::random(64, 0x7F).expect("valid code"))
    );
    assert!(reference.demand_reads > 0);

    let mut group = c.benchmark_group("traffic_path/hamming_71_64");
    group.bench_function("run_smoke", |b| {
        b.iter(|| {
            let code = HammingCode::random(64, 0x7F).expect("valid code");
            black_box(run_traffic(&config, code).demand_reads)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("traffic_path/bch_78_64");
    group.bench_function("run_smoke", |b| {
        b.iter(|| {
            let code = BchCode::dec(64).expect("valid code");
            black_box(run_traffic(&config, code).demand_reads)
        })
    });
    group.finish();
}

fn bench_traffic_path(c: &mut Criterion) {
    bench_event_queue(c);
    bench_traffic_runs(c);
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_traffic_path
);
criterion_main!(benches);
