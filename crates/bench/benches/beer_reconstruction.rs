//! Benchmarks the family-generic BEER reconstruction path: black-box
//! profile extraction, time-to-converge of the full equivalent-code search,
//! and per-attempt candidate evaluation throughput, for both supported
//! [`CodeFamily`] targets at 8- and 16-bit datawords.
//!
//! The search cost model is `time_to_converge ≈ attempts_needed /
//! attempts_per_sec`: `reconstruct_converge` measures the left side
//! end-to-end (averaged over rotating search seeds, so it includes the
//! expected number of rejected candidates), while `attempt_accept` /
//! `attempt_reject` bound the right side — one consistency evaluation of a
//! matching and a non-matching candidate respectively (rejection is the
//! common case and early-exits on the first mismatching pattern).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use harp_beer::{reconstruct_code, BeerCampaign, CodeFamily, VisibleErrorProfile};

fn bench_family(c: &mut Criterion, family: CodeFamily, label: &str) {
    for data_bits in [8usize, 16] {
        let secret = family.random(data_bits, 1).expect("valid code");
        let other = family.random(data_bits, 2).expect("valid code");
        let campaign = BeerCampaign::new(data_bits);
        let profile = VisibleErrorProfile::from_code(&secret);
        let parity_bits = family.min_parity_bits(data_bits);

        // Correctness cross-check before timing: the campaign observes the
        // ground truth and the search converges to a consistent code.
        assert_eq!(campaign.extract_visible_profile(&secret), profile);
        let recovered =
            reconstruct_code(&profile, family, parity_bits, 1, 500_000).expect("converges");
        assert!(profile.is_data_visible_consistent_with(&recovered));
        assert!(!profile.is_data_visible_consistent_with(&other));

        let mut group = c.benchmark_group(format!("beer_reconstruction/{label}_{data_bits}"));
        group.bench_function("campaign_extract", |b| {
            b.iter(|| black_box(campaign.extract_visible_profile(&secret)))
        });
        group.bench_function("reconstruct_converge", |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(
                    reconstruct_code(&profile, family, parity_bits, seed, 500_000)
                        .expect("reconstruction converges"),
                )
            })
        });
        group.bench_function("attempt_accept", |b| {
            b.iter(|| black_box(profile.is_data_visible_consistent_with(&recovered)))
        });
        group.bench_function("attempt_reject", |b| {
            b.iter(|| black_box(profile.is_data_visible_consistent_with(&other)))
        });
        group.finish();
    }
}

fn bench_beer_reconstruction(c: &mut Criterion) {
    bench_family(c, CodeFamily::Hamming, "hamming");
    bench_family(c, CodeFamily::ExtendedHamming, "secded");
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_beer_reconstruction
);
criterion_main!(benches);
