//! Fig. 7 bench: regenerates the bootstrapping-round distributions and times
//! the aggregation.

use criterion::{criterion_group, criterion_main, Criterion};
use harp_bench::{bench_config, small_bench_config};
use harp_sim::experiments::{fig6, fig7, sweep};

fn bench_fig7(c: &mut Criterion) {
    println!("\n{}", fig7::run(&bench_config()).render());

    // Time the sweep and the (cheap) aggregation separately.
    let config = small_bench_config();
    let shared = sweep::run_coverage_sweep(&config, &fig6::PROFILERS);
    c.bench_function("fig07/aggregate_from_sweep", |b| {
        b.iter(|| fig7::from_sweep(&shared))
    });
    c.bench_function("fig07/full_run", |b| b.iter(|| fig7::run(&config)));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7
);
criterion_main!(benches);
