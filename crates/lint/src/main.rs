//! Standalone entry point for CI: `cargo run -p harp_lint -- --check`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match harp_lint::run_cli(&args) {
        Ok(code) => std::process::exit(code),
        Err(err) => {
            eprintln!("harp_lint: {err}");
            std::process::exit(2);
        }
    }
}
