//! The rule engine: five rules wired to the workspace's real contracts.
//!
//! Token rules (`panic`, `determinism`, `rng-salt`) run per file over the
//! lexed token stream, skipping test spans, and honor `lint:allow`
//! directives. Structural rules (`bench-registry`, `scalar-twin`) run once
//! over the whole [`Tree`], cross-checking source against committed
//! artifacts.

use crate::lexer::{in_spans, lex, match_delimiter, test_spans, Token, TokenKind};
use crate::report::{AllowedSite, Diagnostic, Report};
use crate::{SourceFile, Tree};

/// Rule keys, in the order they are documented.
pub const RULE_KEYS: &[&str] = &[
    "panic",
    "determinism",
    "rng-salt",
    "bench-registry",
    "scalar-twin",
];

/// A parsed `// lint:allow(<rule>) <reason>` directive. It suppresses
/// findings of `rule` on its own line and the line directly below it (so
/// it works both as a trailing comment and as a comment above the site).
#[derive(Debug, Clone)]
pub struct Allow {
    pub key: String,
    pub line: u32,
    pub reason: String,
}

/// Extracts `lint:allow` directives from a file's comment tokens. A
/// directive with an unknown rule key or an empty justification is itself
/// a diagnostic: a waiver that cannot be audited is not a waiver.
pub fn parse_allows(file: &SourceFile, tokens: &[Token], report: &mut Report) -> Vec<Allow> {
    let mut allows = Vec::new();
    for token in tokens.iter().filter(|t| t.is_comment()) {
        // Doc comments (`///`, `//!`, `/**`, `/*!`) are documentation, not
        // directives — they may legitimately *describe* the convention.
        let text = token.text(&file.text);
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| text.starts_with(p))
        {
            continue;
        }
        for (offset, raw) in token.text(&file.text).lines().enumerate() {
            let line = token.line + offset as u32;
            let Some(at) = raw.find("lint:allow(") else {
                continue;
            };
            let rest = &raw[at + "lint:allow(".len()..];
            let Some(close) = rest.find(')') else {
                report.diagnostics.push(Diagnostic {
                    file: file.rel.clone(),
                    line,
                    rule: "lint-allow",
                    message: "malformed lint:allow directive (missing `)`)".to_owned(),
                });
                continue;
            };
            let key = rest[..close].trim().to_owned();
            let mut reason = rest[close + 1..].trim();
            if let Some(stripped) = reason.strip_suffix("*/") {
                reason = stripped.trim_end();
            }
            if !RULE_KEYS.contains(&key.as_str()) {
                report.diagnostics.push(Diagnostic {
                    file: file.rel.clone(),
                    line,
                    rule: "lint-allow",
                    message: format!(
                        "lint:allow({key}) names an unknown rule (known: {})",
                        RULE_KEYS.join(", ")
                    ),
                });
            } else if reason.is_empty() {
                report.diagnostics.push(Diagnostic {
                    file: file.rel.clone(),
                    line,
                    rule: "lint-allow",
                    message: format!(
                        "lint:allow({key}) has no justification; write the reason after the `)`"
                    ),
                });
            } else {
                allows.push(Allow {
                    key,
                    line,
                    reason: reason.to_owned(),
                });
            }
        }
    }
    allows
}

/// Either records a diagnostic or, when a matching `lint:allow` covers the
/// line, tallies the waived site.
fn emit(
    report: &mut Report,
    allows: &[Allow],
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
) {
    if let Some(allow) = allows
        .iter()
        .find(|a| a.key == rule && (a.line == line || a.line + 1 == line))
    {
        report.allowed.push(AllowedSite {
            file: file.rel.clone(),
            line,
            rule,
            reason: allow.reason.clone(),
        });
    } else {
        report.diagnostics.push(Diagnostic {
            file: file.rel.clone(),
            line,
            rule,
            message,
        });
    }
}

fn code_tokens(tokens: &[Token]) -> Vec<&Token> {
    tokens.iter().filter(|t| !t.is_comment()).collect()
}

// ---------------------------------------------------------------------------
// Rule 1: panic-freedom on the serving and persistence paths.
// ---------------------------------------------------------------------------

/// The panic-free universe: the daemon/server crate, the durable
/// checkpoint and JSON codecs, and the CLI's daemon clients. A panic here
/// either kills a worker past the `catch_unwind` net or tears an archive.
fn panic_scope(rel: &str) -> bool {
    rel.starts_with("crates/server/src/")
        || rel == "crates/sim/src/checkpoint.rs"
        || rel == "crates/sim/src/minijson.rs"
        || rel == "crates/cli/src/client_cli.rs"
}

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub fn panic_rule(
    file: &SourceFile,
    tokens: &[Token],
    spans: &[(usize, usize)],
    allows: &[Allow],
    report: &mut Report,
) {
    if !panic_scope(&file.rel) {
        return;
    }
    let src = &file.text;
    let code = code_tokens(tokens);
    for (i, token) in code.iter().enumerate() {
        if token.kind != TokenKind::Ident || in_spans(spans, token.start) {
            continue;
        }
        let text = token.text(src);
        let next_is = |ch| code.get(i + 1).is_some_and(|n| n.is_punct(src, ch));
        let spelled = match text {
            // `.unwrap(` / `.expect(` — method calls only, so locally
            // defined functions that happen to share the name don't fire.
            "unwrap" | "expect" if i > 0 && code[i - 1].is_punct(src, '.') && next_is('(') => {
                format!(".{text}()")
            }
            // `panic!(` etc. — the `!` requirement keeps `std::panic::…`
            // paths (next token `:`) from firing.
            _ if PANIC_MACROS.contains(&text) && next_is('!') => format!("{text}!"),
            _ => continue,
        };
        emit(
            report,
            allows,
            file,
            "panic",
            token.line,
            format!(
                "`{spelled}` on the panic-free path; return a typed error \
                 or waive with `// lint:allow(panic) <reason>`"
            ),
        );
    }
}

// ---------------------------------------------------------------------------
// Rule 2: determinism discipline in the deterministic modules.
// ---------------------------------------------------------------------------

/// Modules whose outputs must be a pure function of `(config, code)`:
/// the traffic co-scheduler (event clock), the checkpoint codecs, and the
/// JSON renderer.
const DETERMINISM_SCOPE: &[&str] = &[
    "crates/sim/src/traffic.rs",
    "crates/sim/src/checkpoint.rs",
    "crates/sim/src/minijson.rs",
];

/// Banned names and why. `HashMap`/`HashSet` are banned outright rather
/// than "only when iterated into output" — in a module whose entire job is
/// producing serialized artifacts, any unordered container is one refactor
/// away from leaking iteration order into bytes.
const DETERMINISM_BANNED: &[(&str, &str)] = &[
    (
        "SystemTime",
        "wall-clock time is not a function of (config, code)",
    ),
    (
        "Instant",
        "monotonic clocks are not a function of (config, code)",
    ),
    ("thread_rng", "ambient entropy breaks replay"),
    ("from_entropy", "ambient entropy breaks replay"),
    (
        "HashMap",
        "unordered iteration can leak into serialized output; use BTreeMap",
    ),
    (
        "HashSet",
        "unordered iteration can leak into serialized output; use BTreeSet",
    ),
];

pub fn determinism_rule(
    file: &SourceFile,
    tokens: &[Token],
    spans: &[(usize, usize)],
    allows: &[Allow],
    report: &mut Report,
) {
    if !DETERMINISM_SCOPE.contains(&file.rel.as_str()) {
        return;
    }
    let src = &file.text;
    for token in tokens {
        if token.kind != TokenKind::Ident || in_spans(spans, token.start) {
            continue;
        }
        let text = token.text(src);
        if let Some((name, why)) = DETERMINISM_BANNED.iter().find(|(n, _)| *n == text) {
            emit(
                report,
                allows,
                file,
                "determinism",
                token.line,
                format!("`{name}` in a deterministic module: {why}"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 3: RNG salt discipline.
// ---------------------------------------------------------------------------

/// Whether any token is an identifier carrying the `_SALT`/`_salt` suffix
/// (constants, parameters, or helper functions all qualify).
fn has_salt_ident(tokens: &[&Token], src: &str) -> bool {
    tokens.iter().any(|t| {
        matches!(t.kind, TokenKind::Ident | TokenKind::RawIdent)
            && t.text(src).to_ascii_lowercase().ends_with("_salt")
    })
}

/// Finds the nearest preceding `let [mut] <name> = … ;` statement and
/// returns its tokens, so a seed bound one line up can carry the salt.
fn binding_tokens<'c, 't>(code: &'c [&'t Token], name: &str, src: &str) -> Option<&'c [&'t Token]> {
    for j in (0..code.len()).rev() {
        if !code[j].is_ident(src, "let") {
            continue;
        }
        let mut k = j + 1;
        if code.get(k).is_some_and(|t| t.is_ident(src, "mut")) {
            k += 1;
        }
        if !code.get(k).is_some_and(|t| t.is_ident(src, name)) {
            continue;
        }
        let mut end = k;
        while end < code.len() && !code[end].is_punct(src, ';') {
            end += 1;
        }
        return Some(&code[j..end]);
    }
    None
}

pub fn rng_salt_rule(
    file: &SourceFile,
    tokens: &[Token],
    spans: &[(usize, usize)],
    allows: &[Allow],
    report: &mut Report,
) {
    // All library code; benches and integration tests seed ad hoc.
    if !(file.rel.starts_with("crates/") && file.rel.contains("/src/")) {
        return;
    }
    let src = &file.text;
    let code = code_tokens(tokens);
    for i in 0..code.len() {
        if !code[i].is_ident(src, "seed_from_u64")
            || !code.get(i + 1).is_some_and(|n| n.is_punct(src, '('))
            || in_spans(spans, code[i].start)
        {
            continue;
        }
        let close = match_delimiter(&code, i + 1, '(', ')', src);
        let args = &code[i + 2..close];
        if has_salt_ident(args, src) {
            continue;
        }
        // A bare identifier argument may have been salted where it was
        // bound: `let seed = base ^ FOO_SALT; … seed_from_u64(seed)`.
        if let [only] = args {
            if only.kind == TokenKind::Ident {
                if let Some(stmt) = binding_tokens(&code[..i], only.text(src), src) {
                    if has_salt_ident(stmt, src) {
                        continue;
                    }
                }
            }
        }
        emit(
            report,
            allows,
            file,
            "rng-salt",
            code[i].line,
            "seed_from_u64 without a named *_SALT in the argument (or in the \
             seed's `let` binding); name the stream's salt"
                .to_owned(),
        );
    }
}

// ---------------------------------------------------------------------------
// Rule 4: bench-registry coherence.
// ---------------------------------------------------------------------------

/// A criterion group discovered in a bench file, with its first
/// definition site.
struct BenchGroup {
    name: String,
    file: String,
    line: u32,
}

/// Extracts group names from one bench file: `benchmark_group("g/…")` (the
/// first string literal inside the call, which may sit inside `format!`),
/// and `bench_function("g/…")` when the id carries a `/` (top-level
/// criterion ids are `group/name`).
fn extract_groups(file: &SourceFile, tokens: &[Token], out: &mut Vec<BenchGroup>) {
    let src = &file.text;
    let code = code_tokens(tokens);
    for i in 0..code.len() {
        let want_prefix_only = if code[i].is_ident(src, "benchmark_group") {
            false
        } else if code[i].is_ident(src, "bench_function") {
            true
        } else {
            continue;
        };
        if !code.get(i + 1).is_some_and(|n| n.is_punct(src, '(')) {
            continue;
        }
        let close = match_delimiter(&code, i + 1, '(', ')', src);
        let Some(lit) = code[i + 2..close]
            .iter()
            .find(|t| matches!(t.kind, TokenKind::StrLit | TokenKind::RawStrLit))
        else {
            continue;
        };
        let inner = lit.str_inner(src);
        if want_prefix_only && !inner.contains('/') {
            continue; // a bare function name inside an existing group
        }
        let name: String = inner
            .chars()
            .take_while(|&c| c != '/' && c != '{')
            .collect();
        if !name.is_empty() && !out.iter().any(|g| g.name == name) {
            out.push(BenchGroup {
                name,
                file: file.rel.clone(),
                line: lit.line,
            });
        }
    }
}

/// Finds the `REGISTERED_GROUPS` *declaration* (the occurrence followed by
/// `:`) and returns its string entries plus the declaration site.
fn registered_groups(
    tree: &Tree,
    lexed: &[Option<Vec<Token>>],
) -> Option<(Vec<String>, String, u32)> {
    for (file, tokens) in tree.files.iter().zip(lexed) {
        let Some(tokens) = tokens else { continue };
        let src = &file.text;
        let code = code_tokens(tokens);
        for i in 0..code.len() {
            if !code[i].is_ident(src, "REGISTERED_GROUPS")
                || !code.get(i + 1).is_some_and(|n| n.is_punct(src, ':'))
            {
                continue;
            }
            let mut names = Vec::new();
            for t in &code[i..] {
                if t.is_punct(src, ';') {
                    break;
                }
                if matches!(t.kind, TokenKind::StrLit | TokenKind::RawStrLit) {
                    names.push(t.str_inner(src).to_owned());
                }
            }
            return Some((names, file.rel.clone(), code[i].line));
        }
    }
    None
}

pub fn bench_registry_rule(tree: &Tree, lexed: &[Option<Vec<Token>>], report: &mut Report) {
    let mut groups: Vec<BenchGroup> = Vec::new();
    for (file, tokens) in tree.files.iter().zip(lexed) {
        if !file.rel.starts_with("crates/bench/benches/") {
            continue;
        }
        if let Some(tokens) = tokens {
            extract_groups(file, tokens, &mut groups);
        }
    }
    let Some((registered, reg_file, reg_line)) = registered_groups(tree, lexed) else {
        report.diagnostics.push(Diagnostic {
            file: "crates/cli/src/bench_export.rs".to_owned(),
            line: 1,
            rule: "bench-registry",
            message: "REGISTERED_GROUPS declaration not found anywhere in the tree".to_owned(),
        });
        return;
    };
    for group in &groups {
        if !registered.iter().any(|r| r == &group.name) {
            report.diagnostics.push(Diagnostic {
                file: group.file.clone(),
                line: group.line,
                rule: "bench-registry",
                message: format!(
                    "criterion group `{}` is not listed in REGISTERED_GROUPS ({reg_file})",
                    group.name
                ),
            });
        }
    }
    for name in &registered {
        if !groups.iter().any(|g| &g.name == name) {
            report.diagnostics.push(Diagnostic {
                file: reg_file.clone(),
                line: reg_line,
                rule: "bench-registry",
                message: format!(
                    "registered group `{name}` has no criterion group under crates/bench/benches"
                ),
            });
        }
        let json_name = format!("BENCH_{name}.json");
        match tree.bench_json.get(&json_name) {
            None => report.diagnostics.push(Diagnostic {
                file: reg_file.clone(),
                line: reg_line,
                rule: "bench-registry",
                message: format!("registered group `{name}` has no committed {json_name}"),
            }),
            Some(body) if !body.contains(&format!("\"group\": \"{name}\"")) => {
                report.diagnostics.push(Diagnostic {
                    file: json_name.clone(),
                    line: 1,
                    rule: "bench-registry",
                    message: format!("{json_name} does not declare `\"group\": \"{name}\"`"),
                });
            }
            Some(_) => {}
        }
        if !tree.benchmarks_md.contains(name) {
            report.diagnostics.push(Diagnostic {
                file: "BENCHMARKS.md".to_owned(),
                line: 1,
                rule: "bench-registry",
                message: format!("BENCHMARKS.md never mentions registered group `{name}`"),
            });
        }
    }
    for json_name in tree.bench_json.keys() {
        let stem = json_name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .unwrap_or(json_name);
        if !registered.iter().any(|r| r == stem) {
            report.diagnostics.push(Diagnostic {
                file: json_name.clone(),
                line: 1,
                rule: "bench-registry",
                message: format!("stray {json_name}: `{stem}` is not in REGISTERED_GROUPS"),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule 5: scalar-twin coverage.
// ---------------------------------------------------------------------------

pub fn scalar_twin_rule(tree: &Tree, lexed: &[Option<Vec<Token>>], report: &mut Report) {
    if tree.scalar_manifest.is_empty() {
        report.diagnostics.push(Diagnostic {
            file: tree.manifest_rel.clone(),
            line: 1,
            rule: "scalar-twin",
            message: "scalar-twin manifest is missing or empty; list the hot-path \
                      entry points that need differential coverage"
                .to_owned(),
        });
        return;
    }
    for (line, entry) in &tree.scalar_manifest {
        let covered = tree.files.iter().zip(lexed).any(|(file, tokens)| {
            file.rel.starts_with("tests/")
                && tokens.as_ref().is_some_and(|tokens| {
                    tokens
                        .iter()
                        .any(|t| t.kind == TokenKind::Ident && t.text(&file.text) == *entry)
                })
        });
        if !covered {
            report.diagnostics.push(Diagnostic {
                file: tree.manifest_rel.clone(),
                line: *line,
                rule: "scalar-twin",
                message: format!(
                    "hot-path entry point `{entry}` is not referenced by any suite under tests/"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Orchestration.
// ---------------------------------------------------------------------------

/// Runs every rule over the tree and returns the finished report.
pub fn analyze(tree: &Tree) -> Report {
    let mut report = Report {
        files_scanned: tree.files.len(),
        ..Report::default()
    };
    let mut lexed: Vec<Option<Vec<Token>>> = Vec::with_capacity(tree.files.len());
    for file in &tree.files {
        match lex(&file.text) {
            Ok(tokens) => lexed.push(Some(tokens)),
            Err(err) => {
                report.diagnostics.push(Diagnostic {
                    file: file.rel.clone(),
                    line: err.line,
                    rule: "lex",
                    message: err.message,
                });
                lexed.push(None);
            }
        }
    }
    for (file, tokens) in tree.files.iter().zip(&lexed) {
        let Some(tokens) = tokens else { continue };
        let spans = test_spans(tokens, &file.text);
        let allows = parse_allows(file, tokens, &mut report);
        panic_rule(file, tokens, &spans, &allows, &mut report);
        determinism_rule(file, tokens, &spans, &allows, &mut report);
        rng_salt_rule(file, tokens, &spans, &allows, &mut report);
    }
    bench_registry_rule(tree, &lexed, &mut report);
    scalar_twin_rule(tree, &lexed, &mut report);
    report.finish();
    report
}
