//! A minimal, dependency-free Rust lexer: just enough token structure for
//! the rule engine to reason about identifiers, literals, and comments
//! without ever mistaking string contents for code.
//!
//! The lexer handles the constructs that defeat regex-based scanning:
//!
//! * raw strings `r"…"` / `r#"…"#` with any number of `#` guards (and the
//!   byte variants `br"…"`, `br#"…"#`),
//! * nested block comments `/* /* … */ */`,
//! * lifetimes `'a` vs. char literals `'a'` (including escapes like `'\''`
//!   and `'\u{1F600}'`),
//! * raw identifiers `r#type`.
//!
//! Tokens carry byte spans into the original source, so the concatenation
//! of all token texts plus the whitespace between them reconstructs the
//! input exactly — the round-trip property the lexer's property suite
//! exercises (`crates/lint/tests/lexer_props.rs`).

/// What a token is; rules mostly care about `Ident`, the literal kinds,
/// and the comment kinds (for `lint:allow` directives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `HashMap`).
    Ident,
    /// A raw identifier, `r#type`.
    RawIdent,
    /// A lifetime or loop label, `'a` (no closing quote).
    Lifetime,
    /// A char literal `'a'` or byte-char literal `b'a'`.
    CharLit,
    /// A string literal `"…"` or byte-string `b"…"`.
    StrLit,
    /// A raw (byte) string literal `r#"…"#` / `br"…"`.
    RawStrLit,
    /// A numeric literal (`42`, `0xC0DE`, `1.5e-3`).
    NumLit,
    /// A single punctuation byte (`.`, `!`, `{`, …).
    Punct,
    /// A `//`-comment (including `///` and `//!` doc comments), without the
    /// trailing newline.
    LineComment,
    /// A (possibly nested) `/* … */` comment.
    BlockComment,
}

/// One lexed token: kind plus its byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.start..self.end]
    }

    /// Whether this is a comment token.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is an identifier with exactly the given text.
    pub fn is_ident(&self, source: &str, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(source) == name
    }

    /// Whether this is the given single punctuation byte.
    pub fn is_punct(&self, source: &str, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text(source).starts_with(ch)
    }

    /// For `StrLit`/`RawStrLit` tokens: the literal's inner text, with the
    /// quotes, prefixes, and `#` guards stripped (escape sequences are left
    /// as written; the rules only match plain ASCII names).
    pub fn str_inner<'s>(&self, source: &'s str) -> &'s str {
        let text = self.text(source);
        match self.kind {
            TokenKind::StrLit => {
                let text = text.strip_prefix('b').unwrap_or(text);
                text.strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .unwrap_or("")
            }
            TokenKind::RawStrLit => {
                let text = text.strip_prefix('b').unwrap_or(text);
                let text = text.strip_prefix('r').unwrap_or(text);
                let guards = text.bytes().take_while(|&b| b == b'#').count();
                let inner = &text[guards..text.len() - guards];
                inner
                    .strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .unwrap_or("")
            }
            _ => "",
        }
    }
}

/// A lexing failure: the source construct that never terminated, with its
/// starting line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes Rust source. Whitespace is skipped (spans make it
/// recoverable); comments are kept as tokens so `lint:allow` directives
/// survive.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated strings, chars, or block
/// comments.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    Lexer {
        bytes: source.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'s> {
    bytes: &'s [u8],
    pos: usize,
    line: u32,
}

impl<'s> Lexer<'s> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.bytes.get(self.pos) == Some(&b'\n') {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn error(&self, at_line: u32, message: &str) -> LexError {
        LexError {
            line: at_line,
            message: message.to_owned(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        let mut tokens = Vec::new();
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let start = self.pos;
            let line = self.line;
            let kind = match b {
                b'/' if self.peek(1) == Some(b'/') => {
                    while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                    TokenKind::LineComment
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment(line)?;
                    TokenKind::BlockComment
                }
                b'r' if self.raw_string_guard(1).is_some() => {
                    let guards = self.raw_string_guard(1).unwrap_or(0);
                    self.pos += 1;
                    self.raw_string(guards, line)?;
                    TokenKind::RawStrLit
                }
                b'r' if self.peek(1) == Some(b'#')
                    && self.peek(2).is_some_and(is_ident_start)
                    && self.peek(2) != Some(b'"') =>
                {
                    self.pos += 2;
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.pos += 1;
                    }
                    TokenKind::RawIdent
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 2;
                    self.quoted_string(line)?;
                    TokenKind::StrLit
                }
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.char_literal(line)?;
                    TokenKind::CharLit
                }
                b'b' if self.peek(1) == Some(b'r') && self.raw_string_guard(2).is_some() => {
                    let guards = self.raw_string_guard(2).unwrap_or(0);
                    self.pos += 2;
                    self.raw_string(guards, line)?;
                    TokenKind::RawStrLit
                }
                b'"' => {
                    self.pos += 1;
                    self.quoted_string(line)?;
                    TokenKind::StrLit
                }
                b'\'' => self.lifetime_or_char(line)?,
                _ if is_ident_start(b) => {
                    while self.peek(0).is_some_and(is_ident_continue) {
                        self.pos += 1;
                    }
                    TokenKind::Ident
                }
                _ if b.is_ascii_digit() => {
                    self.number();
                    TokenKind::NumLit
                }
                _ => {
                    self.pos += 1;
                    TokenKind::Punct
                }
            };
            tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        Ok(tokens)
    }

    /// If the bytes at `offset` (relative to `pos`) start a raw-string body
    /// (`#`* followed by `"`), returns the number of `#` guards.
    fn raw_string_guard(&self, offset: usize) -> Option<usize> {
        let mut guards = 0;
        while self.peek(offset + guards) == Some(b'#') {
            guards += 1;
        }
        (self.peek(offset + guards) == Some(b'"')).then_some(guards)
    }

    /// Consumes a nested block comment; `pos` is on the opening `/`.
    fn block_comment(&mut self, line: u32) -> Result<(), LexError> {
        let mut depth = 0usize;
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.error(line, "unterminated block comment"));
            }
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return Ok(());
                }
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a raw string body; `pos` is on the first `#` (or the `"`
    /// when there are no guards).
    fn raw_string(&mut self, guards: usize, line: u32) -> Result<(), LexError> {
        self.pos += guards + 1; // past the guards and the opening quote
        loop {
            if self.pos >= self.bytes.len() {
                return Err(self.error(line, "unterminated raw string"));
            }
            if self.bytes[self.pos] == b'"' && (0..guards).all(|i| self.peek(1 + i) == Some(b'#')) {
                self.pos += 1 + guards;
                return Ok(());
            }
            self.bump();
        }
    }

    /// Consumes an escaped string body; `pos` is one past the opening `"`.
    fn quoted_string(&mut self, line: u32) -> Result<(), LexError> {
        loop {
            match self.peek(0) {
                None => return Err(self.error(line, "unterminated string literal")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_none() {
                        return Err(self.error(line, "unterminated string literal"));
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Disambiguates `'a` (lifetime) from `'a'` (char literal); `pos` is on
    /// the opening `'`.
    fn lifetime_or_char(&mut self, line: u32) -> Result<TokenKind, LexError> {
        match self.peek(1) {
            Some(b'\\') => {
                self.pos += 1;
                self.char_literal(line)?;
                Ok(TokenKind::CharLit)
            }
            Some(b) if is_ident_start(b) => {
                // Scan the identifier run after the quote: a closing quote
                // right after it makes this a char literal ('a', 'é'),
                // anything else a lifetime or loop label ('a, 'outer:).
                let mut end = self.pos + 2;
                while self.bytes.get(end).copied().is_some_and(is_ident_continue) {
                    end += 1;
                }
                if self.bytes.get(end) == Some(&b'\'') {
                    self.pos = end + 1;
                    Ok(TokenKind::CharLit)
                } else {
                    self.pos = end;
                    Ok(TokenKind::Lifetime)
                }
            }
            Some(_) => {
                self.pos += 1;
                self.char_literal(line)?;
                Ok(TokenKind::CharLit)
            }
            None => Err(self.error(line, "unterminated char literal")),
        }
    }

    /// Consumes a char-literal body; `pos` is one past the opening `'`.
    fn char_literal(&mut self, line: u32) -> Result<(), LexError> {
        // `pos` sits one past the opening quote (on a backslash, a plain
        // char's first byte, or — for `b'…'` — still on the quote).
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
        loop {
            match self.peek(0) {
                None => return Err(self.error(line, "unterminated char literal")),
                Some(b'\'') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.bump();
                    if self.peek(0).is_none() {
                        return Err(self.error(line, "unterminated char literal"));
                    }
                    self.bump();
                }
                Some(_) => self.bump(),
            }
        }
    }

    /// Consumes a numeric literal: digits, radix prefixes, `_` separators,
    /// one decimal point, and a signed exponent (decimal literals only —
    /// `0xAE - 1` must stay three tokens).
    fn number(&mut self) {
        let start = self.pos;
        let radix_prefixed = self.bytes[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'));
        let mut seen_dot = false;
        self.pos += 1;
        loop {
            match self.peek(0) {
                Some(b) if b.is_ascii_alphanumeric() || b == b'_' => self.pos += 1,
                Some(b'.')
                    if !seen_dot
                        && !radix_prefixed
                        && self.peek(1).is_some_and(|b| b.is_ascii_digit()) =>
                {
                    seen_dot = true;
                    self.pos += 1;
                }
                Some(b'+' | b'-')
                    if !radix_prefixed
                        && matches!(
                            self.bytes.get(self.pos - 1),
                            Some(b'e' | b'E') if self.pos > start + 1
                        )
                        && self.peek(1).is_some_and(|b| b.is_ascii_digit()) =>
                {
                    self.pos += 1;
                }
                _ => return,
            }
        }
    }
}

/// Byte ranges of test-only code: `#[cfg(test)]`-gated items, `#[test]`
/// functions, and `mod tests { … }` blocks. Rules skip findings inside
/// these spans — the panic-freedom and salt-discipline contracts are about
/// shipping code, and tests legitimately `unwrap()` and seed ad hoc.
pub fn test_spans(tokens: &[Token], source: &str) -> Vec<(usize, usize)> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut spans = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // `mod tests { … }` — the workspace's unit-test convention, marked
        // even without the attribute so a missing cfg-gate cannot smuggle
        // panics into the "non-test" universe.
        if code[i].is_ident(source, "mod")
            && i + 2 < code.len()
            && code[i + 1].is_ident(source, "tests")
            && code[i + 2].is_punct(source, '{')
        {
            let close = match_delimiter(&code, i + 2, '{', '}', source);
            spans.push((code[i].start, code[close].end));
            i = close + 1;
            continue;
        }
        if code[i].is_punct(source, '#') && i + 1 < code.len() && code[i + 1].is_punct(source, '[')
        {
            let close = match_delimiter(&code, i + 1, '[', ']', source);
            let inner = &code[i + 2..close];
            // Exactly `#[test]` or `#[cfg(test)]` — NOT `#[cfg(not(test))]`,
            // which gates *non*-test code.
            let is_test_attr = matches!(inner, [t] if t.is_ident(source, "test"))
                || matches!(
                    inner,
                    [c, o, t, p]
                        if c.is_ident(source, "cfg")
                            && o.is_punct(source, '(')
                            && t.is_ident(source, "test")
                            && p.is_punct(source, ')')
                );
            if !is_test_attr {
                i = close + 1;
                continue;
            }
            // Skip any further attributes on the same item.
            let mut j = close + 1;
            while j + 1 < code.len()
                && code[j].is_punct(source, '#')
                && code[j + 1].is_punct(source, '[')
            {
                j = match_delimiter(&code, j + 1, '[', ']', source) + 1;
            }
            // The gated item runs to its closing brace (fn/mod/impl) or to
            // the first `;` (use declarations, statics).
            let mut k = j;
            while k < code.len() && !code[k].is_punct(source, '{') && !code[k].is_punct(source, ';')
            {
                k += 1;
            }
            if k >= code.len() {
                spans.push((code[i].start, source.len()));
                break;
            }
            let end = if code[k].is_punct(source, '{') {
                match_delimiter(&code, k, '{', '}', source)
            } else {
                k
            };
            spans.push((code[i].start, code[end].end));
            i = end + 1;
            continue;
        }
        i += 1;
    }
    spans
}

/// Index of the token closing the delimiter opened at `open` (which must be
/// an `open_ch` punct). Returns the last token index when unbalanced — the
/// span then runs to end-of-file, which over-approximates the test region
/// (safe: it can only suppress findings in code that does not parse).
pub(crate) fn match_delimiter(
    code: &[&Token],
    open: usize,
    open_ch: char,
    close_ch: char,
    source: &str,
) -> usize {
    let mut depth = 0usize;
    for (index, token) in code.iter().enumerate().skip(open) {
        if token.is_punct(source, open_ch) {
            depth += 1;
        } else if token.is_punct(source, close_ch) {
            depth -= 1;
            if depth == 0 {
                return index;
            }
        }
    }
    code.len() - 1
}

/// Whether `offset` falls inside any of the (sorted or unsorted) spans.
pub fn in_spans(spans: &[(usize, usize)], offset: usize) -> bool {
    spans
        .iter()
        .any(|&(start, end)| offset >= start && offset < end)
}
