//! `harp_lint` — a dependency-free static invariant analyzer for the
//! workspace.
//!
//! The repo's safety story rests on conventions: panic-free serving and
//! persistence paths, determinism in the modules whose bytes get
//! compared, salted RNG streams, a bench registry mirrored into
//! `BENCH_*.json`, and scalar twins for every hot path. This crate checks
//! them statically — a minimal Rust lexer ([`lexer`]) feeds a rule engine
//! ([`rules`]) that emits file/line diagnostics ([`report`]), with a
//! machine-readable JSON report and `--check` exit codes for CI.
//!
//! Run it as `harp lint` or as the standalone `harp_lint` binary:
//!
//! ```text
//! harp_lint [--check] [--json PATH] [--root DIR]
//! ```
//!
//! `--check` exits non-zero on any finding; a plain run prints the report
//! and always exits 0 (for local iteration). Waive a token-rule finding
//! with `// lint:allow(<rule>) <reason>` on the same line or the line
//! above — waivers are tallied in the report, and a waiver without a
//! reason is itself a finding.

pub mod lexer;
pub mod report;
pub mod rules;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use report::{AllowedSite, Diagnostic, Report};
pub use rules::analyze;

/// Repo-relative path of the scalar-twin manifest consumed by rule 5.
pub const SCALAR_TWIN_MANIFEST: &str = "tests/scalar_twins.txt";

/// One source file, identified by its repo-relative `/`-separated path.
#[derive(Debug, Clone)]
pub struct SourceFile {
    pub rel: String,
    pub text: String,
}

/// Everything the rules look at, decoupled from the filesystem so fixture
/// tests can fabricate violating trees in memory.
#[derive(Debug, Default)]
pub struct Tree {
    /// All `.rs` files under `crates/*/src`, `crates/bench/benches`, and
    /// the repo-root `tests/`, sorted by path.
    pub files: Vec<SourceFile>,
    /// Committed `BENCH_<group>.json` files at the repo root, by filename.
    pub bench_json: BTreeMap<String, String>,
    /// The contents of `BENCHMARKS.md`.
    pub benchmarks_md: String,
    /// `(line, entry)` pairs from the scalar-twin manifest.
    pub scalar_manifest: Vec<(u32, String)>,
    /// Where the manifest lives, for diagnostics.
    pub manifest_rel: String,
}

impl Tree {
    /// Loads the analyzable tree from a workspace root. Vendored crates
    /// are deliberately out of scope: the rules encode *this* repo's
    /// contracts, not the stand-ins'.
    pub fn load(root: &Path) -> Result<Tree, String> {
        let mut tree = Tree {
            manifest_rel: SCALAR_TWIN_MANIFEST.to_owned(),
            ..Tree::default()
        };
        let crates_dir = root.join("crates");
        let mut crate_dirs = read_dir_sorted(&crates_dir)?;
        crate_dirs.retain(|p| p.is_dir());
        for crate_dir in crate_dirs {
            collect_rs(root, &crate_dir.join("src"), &mut tree.files)?;
            collect_rs(root, &crate_dir.join("benches"), &mut tree.files)?;
        }
        collect_rs(root, &root.join("tests"), &mut tree.files)?;
        tree.files.sort_by(|a, b| a.rel.cmp(&b.rel));

        for path in read_dir_sorted(root)? {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                tree.bench_json.insert(name.to_owned(), read_file(&path)?);
            }
        }
        let benchmarks_md = root.join("BENCHMARKS.md");
        if benchmarks_md.is_file() {
            tree.benchmarks_md = read_file(&benchmarks_md)?;
        }
        let manifest = root.join(SCALAR_TWIN_MANIFEST);
        if manifest.is_file() {
            for (index, line) in read_file(&manifest)?.lines().enumerate() {
                let entry = line.trim();
                if entry.is_empty() || entry.starts_with('#') {
                    continue;
                }
                tree.scalar_manifest
                    .push((index as u32 + 1, entry.to_owned()));
            }
        }
        Ok(tree)
    }
}

fn read_file(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

/// Directory entries sorted by path (the analysis must not depend on
/// readdir order). A missing directory is an empty listing.
fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(ref e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("{}: {e}", dir.display())),
    };
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(entry.map_err(|e| format!("{}: {e}", dir.display()))?.path());
    }
    paths.sort();
    Ok(paths)
}

/// Recursively collects `.rs` files under `dir` into `files`, with paths
/// rewritten relative to `root` using `/` separators.
fn collect_rs(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> Result<(), String> {
    for path in read_dir_sorted(dir)? {
        if path.is_dir() {
            collect_rs(root, &path, files)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("{}: {e}", path.display()))?
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile {
                rel,
                text: read_file(&path)?,
            });
        }
    }
    Ok(())
}

/// Walks up from `start` looking for a directory that holds both
/// `Cargo.toml` and `crates/` — the workspace root.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The shared CLI driver behind both `harp lint` and the `harp_lint`
/// binary. Returns the process exit code, or a usage/config error.
pub fn run_cli(args: &[String]) -> Result<i32, String> {
    let mut check = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => {
                json_path = Some(PathBuf::from(iter.next().ok_or("--json requires a path")?));
            }
            "--root" => {
                root = Some(PathBuf::from(
                    iter.next().ok_or("--root requires a directory")?,
                ));
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(0);
            }
            other => return Err(format!("unknown argument `{other}`\n{}", usage())),
        }
    }
    let root = match root {
        Some(root) => root,
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getcwd: {e}"))?;
            find_root(&cwd).ok_or(
                "no workspace root (Cargo.toml + crates/) above the current \
                 directory; pass --root",
            )?
        }
    };
    let tree = Tree::load(&root)?;
    let report = analyze(&tree);
    print!("{}", report.render_text());
    if let Some(path) = json_path {
        std::fs::write(&path, report.render_json())
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    Ok(if check && !report.is_clean() { 1 } else { 0 })
}

fn usage() -> &'static str {
    "usage: harp_lint [--check] [--json PATH] [--root DIR]\n\
     \n\
     Static invariant analysis over the workspace:\n\
     \x20 panic          panic-freedom on serving/persistence paths\n\
     \x20 determinism    no clocks/entropy/unordered maps in deterministic modules\n\
     \x20 rng-salt       every seed_from_u64 references a named *_SALT\n\
     \x20 bench-registry benches <-> REGISTERED_GROUPS <-> BENCH_*.json <-> BENCHMARKS.md\n\
     \x20 scalar-twin    every manifest entry point has a differential suite\n\
     \n\
     --check  exit 1 when findings exist (CI gate)\n\
     --json   also write the machine-readable report to PATH\n\
     --root   workspace root (default: walk up from the current directory)"
}
