//! Diagnostics and the machine-readable report.
//!
//! The JSON emitter is hand-rolled (the lint crate is dependency-free by
//! design — it must stay buildable even when the analysis finds the
//! vendored serde stand-ins broken) and deterministic: diagnostics and
//! allowed sites are sorted before rendering, and all maps upstream are
//! `BTreeMap`.

/// One finding: a rule fired at a file/line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule key, e.g. `panic`.
    pub rule: &'static str,
    pub message: String,
}

/// A site where a rule *would* have fired but a `lint:allow` directive
/// suppressed it; tallied so waivers stay visible.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AllowedSite {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    /// The justification text after the directive.
    pub reason: String,
}

/// The full result of an analysis run.
#[derive(Debug, Default)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub allowed: Vec<AllowedSite>,
    /// Files scanned, for the summary line.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts findings into the canonical (file, line, rule) order. Call
    /// once after all rules have run.
    pub fn finish(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.allowed
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }

    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable rendering, one line per finding plus a summary.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                d.file, d.line, d.rule, d.message
            ));
        }
        if !self.allowed.is_empty() {
            out.push_str(&format!(
                "{} allowed site{} (lint:allow):\n",
                self.allowed.len(),
                if self.allowed.len() == 1 { "" } else { "s" }
            ));
            for a in &self.allowed {
                out.push_str(&format!(
                    "  {}:{}: [{}] {}\n",
                    a.file, a.line, a.rule, a.reason
                ));
            }
        }
        out.push_str(&format!(
            "{} file{} scanned, {} finding{}\n",
            self.files_scanned,
            if self.files_scanned == 1 { "" } else { "s" },
            self.diagnostics.len(),
            if self.diagnostics.len() == 1 { "" } else { "s" },
        ));
        out
    }

    /// Machine-readable rendering for CI artifact upload.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str(&format!("  \"findings\": {},\n", self.diagnostics.len()));
        out.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
                json_string(&d.file),
                d.line,
                json_string(d.rule),
                json_string(&d.message)
            ));
        }
        if !self.diagnostics.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"allowed\": [");
        for (i, a) in self.allowed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}",
                json_string(&a.file),
                a.line,
                json_string(a.rule),
                json_string(&a.reason)
            ));
        }
        if !self.allowed.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

/// JSON string literal with the escapes the report can actually contain
/// (paths and rule messages are ASCII; control bytes are escaped anyway
/// for safety).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_sorts_and_renders() {
        let mut report = Report {
            diagnostics: vec![
                Diagnostic {
                    file: "b.rs".into(),
                    line: 2,
                    rule: "panic",
                    message: "x".into(),
                },
                Diagnostic {
                    file: "a.rs".into(),
                    line: 9,
                    rule: "panic",
                    message: "y".into(),
                },
            ],
            allowed: Vec::new(),
            files_scanned: 2,
        };
        report.finish();
        assert_eq!(report.diagnostics[0].file, "a.rs");
        let text = report.render_text();
        assert!(text.starts_with("a.rs:9: [panic] y\n"));
        assert!(text.ends_with("2 files scanned, 2 findings\n"));
        let json = report.render_json();
        assert!(json.contains("\"findings\": 2"));
        assert!(json.contains("\"file\": \"a.rs\""));
    }
}
