//! Property suite for the lint lexer (`harp_lint::lexer`).
//!
//! The rules are only as trustworthy as the lexer underneath them: a
//! mis-lexed raw string or block comment would let `unwrap` inside a
//! string literal masquerade as code (false positive) or — worse — let a
//! string terminate early and hide real code from the rules (false
//! negative). These properties pin the constructs that defeat regex
//! scanning: raw strings with arbitrary `#` guards, nested block
//! comments, lifetimes vs. char literals, byte strings, and the global
//! span invariants (ordered, non-overlapping, whitespace-only gaps).

use harp_lint::lexer::{in_spans, lex, test_spans, Token, TokenKind};
use proptest::prelude::*;

fn chars_of(alphabet: &str) -> Vec<char> {
    alphabet.chars().collect()
}

/// A plausible identifier: `[a-z_][a-z0-9_]{0,7}`.
fn ident() -> impl Strategy<Value = String> {
    let first = proptest::sample::select(chars_of("abcdefghijklmnopqrstuvwxyz_"));
    let rest = proptest::collection::vec(
        proptest::sample::select(chars_of("abcdefghijklmnopqrstuvwxyz0123456789_")),
        0..8,
    );
    (first, rest).prop_map(|(first, rest)| {
        let mut s = String::new();
        s.push(first);
        s.extend(rest);
        s
    })
}

/// Raw-string content over an alphabet that includes the dangerous bytes:
/// quotes, hashes, and backslashes (which must NOT act as escapes inside
/// raw strings).
fn raw_content() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(chars_of("ab \n\"#\\x0")), 0..24)
        .prop_map(|chars| chars.into_iter().collect())
}

/// The minimum number of `#` guards that make `content` embeddable in a
/// raw string: one more than the longest `#`-run immediately following a
/// `"` inside the content (and at least one if any `"` appears at all).
fn required_guards(content: &str) -> usize {
    let bytes = content.as_bytes();
    let mut needed = 0;
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            let mut run = 0;
            while i + 1 + run < bytes.len() && bytes[i + 1 + run] == b'#' {
                run += 1;
            }
            needed = needed.max(run + 1);
            i += 1 + run;
        } else {
            i += 1;
        }
    }
    needed
}

/// Comment padding that cannot form `/*` or `*/` at a seam.
fn comment_pad() -> impl Strategy<Value = String> {
    proptest::collection::vec(proptest::sample::select(chars_of("ab c\nxyz")), 0..6)
        .prop_map(|chars| chars.into_iter().collect())
}

/// Token-shaped snippets for the span-integrity property. Each entry lexes
/// to at least one token on its own; separators keep them apart.
fn snippet() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(vec![
        "fn",
        "some_ident",
        "r#type",
        "42",
        "0xC0DE",
        "1.5e-3",
        "1_000",
        "\"plain \\\" string\"",
        "r\"raw\"",
        "r#\"guarded \" quote\"#",
        "b\"bytes\"",
        "br#\"raw bytes\"#",
        "'a",
        "'static",
        "'x'",
        "'\\n'",
        "b'\\0'",
        "// a line comment",
        "/* a /* nested */ block */",
        "{",
        "}",
        "(",
        ")",
        ".",
        "!",
        "#",
        ";",
        "::",
    ])
}

fn separator() -> impl Strategy<Value = &'static str> {
    proptest::sample::select(vec![" ", "\n", "\t", "  ", "\n\n"])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A raw string with the computed guard count lexes to exactly one
    /// `RawStrLit` spanning the whole source, and `str_inner` recovers the
    /// content byte-for-byte — quotes, hashes, and backslashes included.
    #[test]
    fn raw_string_round_trips(content in raw_content(), extra in 0usize..3) {
        let guards = "#".repeat(required_guards(&content) + extra);
        let source = format!("r{guards}\"{content}\"{guards}");
        let tokens = lex(&source).expect("raw string must lex");
        prop_assert_eq!(tokens.len(), 1);
        prop_assert_eq!(tokens[0].kind, TokenKind::RawStrLit);
        prop_assert_eq!(tokens[0].start, 0);
        prop_assert_eq!(tokens[0].end, source.len());
        prop_assert_eq!(tokens[0].str_inner(&source), content.as_str());
    }

    /// Same for the byte variant `br#"…"#`.
    #[test]
    fn byte_raw_string_round_trips(content in raw_content()) {
        let guards = "#".repeat(required_guards(&content));
        let source = format!("br{guards}\"{content}\"{guards}");
        let tokens = lex(&source).expect("byte raw string must lex");
        prop_assert_eq!(tokens.len(), 1);
        prop_assert_eq!(tokens[0].kind, TokenKind::RawStrLit);
        prop_assert_eq!(tokens[0].str_inner(&source), content.as_str());
    }

    /// Arbitrarily nested block comments lex to one `BlockComment` token
    /// covering the full span.
    #[test]
    fn nested_block_comments_stay_one_token(
        depth in 1usize..=4,
        open_pad in comment_pad(),
        mid in comment_pad(),
        close_pad in comment_pad(),
    ) {
        let mut source = String::new();
        for _ in 0..depth {
            source.push_str("/*");
            source.push_str(&open_pad);
        }
        source.push_str(&mid);
        for _ in 0..depth {
            source.push_str(&close_pad);
            source.push_str("*/");
        }
        let tokens = lex(&source).expect("balanced comment must lex");
        prop_assert_eq!(tokens.len(), 1);
        prop_assert_eq!(tokens[0].kind, TokenKind::BlockComment);
        prop_assert_eq!(tokens[0].end, source.len());
    }

    /// `'name` is a lifetime; `'name'` is a char literal — for any
    /// identifier-shaped name, in isolation and in generic-parameter
    /// position.
    #[test]
    fn lifetimes_and_chars_disambiguate(name in ident()) {
        let lifetime_src = format!("'{name}");
        let tokens = lex(&lifetime_src).expect("lifetime must lex");
        prop_assert_eq!(tokens.len(), 1);
        prop_assert_eq!(tokens[0].kind, TokenKind::Lifetime);

        let char_src = format!("'{name}'");
        let tokens = lex(&char_src).expect("char literal must lex");
        prop_assert_eq!(tokens.len(), 1);
        prop_assert_eq!(tokens[0].kind, TokenKind::CharLit);

        let generic_src = format!("fn f<'{name}>(x: &'{name} u32) {{}}");
        let tokens = lex(&generic_src).expect("generic fn must lex");
        let lifetimes = tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let chars = tokens.iter().filter(|t| t.kind == TokenKind::CharLit).count();
        prop_assert_eq!(lifetimes, 2);
        prop_assert_eq!(chars, 0);
    }

    /// Rule-triggering names inside a string literal never surface as
    /// identifier tokens — the false-positive class the lexer exists to
    /// prevent.
    #[test]
    fn string_contents_are_never_code(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "unwrap()", "expect()", "panic!", "unreachable!",
                "seed_from_u64", "HashMap", "Instant", "thread_rng",
            ]),
            1..6,
        ),
        raw in proptest::any::<bool>(),
    ) {
        let content = words.join(" ");
        let source = if raw {
            format!("let s = r#\"{content}\"#;")
        } else {
            format!("let s = \"{content}\";")
        };
        let tokens = lex(&source).expect("string stmt must lex");
        // let, s, =, <string>, ;
        prop_assert_eq!(tokens.len(), 5);
        prop_assert_eq!(tokens[3].str_inner(&source), content.as_str());
        for banned in ["unwrap", "expect", "panic", "seed_from_u64", "HashMap"] {
            prop_assert!(
                !tokens.iter().any(|t| t.kind == TokenKind::Ident && t.text(&source) == banned),
                "`{}` leaked out of a string literal in {:?}",
                banned,
                source
            );
        }
    }

    /// Global span invariants over arbitrary snippet soup: lexing succeeds,
    /// spans are ordered and non-overlapping, stay in bounds, and every
    /// inter-token gap is pure whitespace (so token texts + gaps
    /// reconstruct the source exactly).
    #[test]
    fn spans_are_ordered_disjoint_and_whitespace_separated(
        parts in proptest::collection::vec((snippet(), separator()), 0..20),
    ) {
        let mut source = String::new();
        for (snip, sep) in &parts {
            source.push_str(snip);
            source.push_str(sep);
        }
        let tokens = lex(&source).expect("snippet soup must lex");
        let mut prev_end = 0usize;
        for token in &tokens {
            prop_assert!(token.start >= prev_end, "overlap in {:?}", source);
            prop_assert!(token.end > token.start);
            prop_assert!(token.end <= source.len());
            prop_assert!(
                source[prev_end..token.start].bytes().all(|b| b.is_ascii_whitespace()),
                "non-whitespace gap in {:?}",
                source
            );
            prev_end = token.end;
        }
        prop_assert!(
            source[prev_end..].bytes().all(|b| b.is_ascii_whitespace()),
            "trailing non-whitespace unlexed in {:?}",
            source
        );
    }

    /// `#[cfg(test)] mod tests` bodies land inside `test_spans` while the
    /// production code above them stays outside, whatever the test is
    /// named.
    #[test]
    fn cfg_test_mod_is_span_tracked(name in ident()) {
        let source = format!(
            "pub fn live(value: Option<u8>) -> u8 {{\n    value.unwrap()\n}}\n\
             #[cfg(test)]\nmod tests {{\n    #[test]\n    fn {name}() {{\n        \
             other.unwrap();\n    }}\n}}\n"
        );
        let tokens = lex(&source).expect("module must lex");
        let spans = test_spans(&tokens, &source);
        let unwraps: Vec<&Token> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && t.text(&source) == "unwrap")
            .collect();
        prop_assert_eq!(unwraps.len(), 2);
        prop_assert!(!in_spans(&spans, unwraps[0].start), "production unwrap marked as test");
        prop_assert!(in_spans(&spans, unwraps[1].start), "test unwrap not marked as test");
    }
}

#[test]
fn unterminated_constructs_error_with_their_start_line() {
    for (source, what) in [
        ("let s = \"never closed", "string"),
        ("/* still open", "comment"),
        ("let c = '\\", "char"),
        ("let r = r#\"open", "raw string"),
    ] {
        let err = lex(source).expect_err(what);
        assert_eq!(err.line, 1, "{what}: {err}");
    }
    let err = lex("fn ok() {}\n\nlet s = \"open").expect_err("late string");
    assert_eq!(err.line, 3);
}

#[test]
fn cfg_not_test_is_not_a_test_span() {
    let source = "#[cfg(not(test))]\nfn production() {\n    value.unwrap();\n}\n";
    let tokens = lex(source).expect("must lex");
    let spans = test_spans(&tokens, source);
    let unwrap = tokens
        .iter()
        .find(|t| t.kind == TokenKind::Ident && t.text(source) == "unwrap")
        .expect("unwrap token");
    assert!(
        !in_spans(&spans, unwrap.start),
        "#[cfg(not(test))] gates non-test code and must stay visible to the rules"
    );
}
