//! Fixture suite for the rule engine: every rule must fire on a minimal
//! violating tree and stay silent once the violation is fixed or waived.
//!
//! Trees are fabricated in memory (the [`Tree`] fields are plain data), so
//! each fixture controls exactly what the rules see. Because [`analyze`]
//! always runs every rule — and a skeletal tree trivially violates the
//! structural ones (no registry, empty manifest) — assertions filter the
//! report by rule key instead of using `is_clean`.

use harp_lint::{analyze, Diagnostic, Report, SourceFile, Tree};

fn tree(files: &[(&str, &str)]) -> Tree {
    Tree {
        files: files
            .iter()
            .map(|(rel, text)| SourceFile {
                rel: (*rel).to_owned(),
                text: (*text).to_owned(),
            })
            .collect(),
        manifest_rel: harp_lint::SCALAR_TWIN_MANIFEST.to_owned(),
        ..Tree::default()
    }
}

fn diags<'r>(report: &'r Report, rule: &str) -> Vec<&'r Diagnostic> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .collect()
}

// ---------------------------------------------------------------------------
// Rule 1: panic
// ---------------------------------------------------------------------------

#[test]
fn panic_rule_fires_on_unwrap_in_scope() {
    let report = analyze(&tree(&[(
        "crates/server/src/daemon.rs",
        "pub fn worker(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    )]));
    let found = diags(&report, "panic");
    assert_eq!(found.len(), 1, "{}", report.render_text());
    assert_eq!(found[0].line, 2);
    assert!(found[0].message.contains(".unwrap()"));
}

#[test]
fn panic_rule_fires_on_macros_but_not_panic_paths() {
    let report = analyze(&tree(&[(
        "crates/sim/src/minijson.rs",
        "pub fn f(go: bool) {\n    if go {\n        panic!(\"boom\");\n    }\n    \
         let _ = std::panic::catch_unwind(|| 1);\n    todo!()\n}\n",
    )]));
    let found = diags(&report, "panic");
    assert_eq!(found.len(), 2, "{}", report.render_text());
    assert!(found[0].message.contains("panic!"));
    assert!(found[1].message.contains("todo!"));
}

#[test]
fn panic_rule_ignores_files_outside_the_scope() {
    let report = analyze(&tree(&[(
        "crates/sim/src/engine.rs",
        "pub fn hot(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n",
    )]));
    assert!(diags(&report, "panic").is_empty());
}

#[test]
fn panic_rule_skips_test_code() {
    let report = analyze(&tree(&[(
        "crates/server/src/daemon.rs",
        "pub fn live() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        \
         Some(1).unwrap();\n        panic!(\"fine in tests\");\n    }\n}\n",
    )]));
    assert!(
        diags(&report, "panic").is_empty(),
        "{}",
        report.render_text()
    );
}

#[test]
fn lint_allow_waives_and_is_tallied() {
    let report = analyze(&tree(&[(
        "crates/server/src/daemon.rs",
        "pub fn worker(v: Option<u8>) -> u8 {\n    \
         // lint:allow(panic) probed above, cannot fail\n    v.unwrap()\n}\n",
    )]));
    assert!(
        diags(&report, "panic").is_empty(),
        "{}",
        report.render_text()
    );
    assert_eq!(report.allowed.len(), 1);
    assert_eq!(report.allowed[0].rule, "panic");
    assert_eq!(report.allowed[0].reason, "probed above, cannot fail");
}

#[test]
fn lint_allow_works_as_a_trailing_comment() {
    let report = analyze(&tree(&[(
        "crates/server/src/daemon.rs",
        "pub fn worker(v: Option<u8>) -> u8 {\n    \
         v.unwrap() // lint:allow(panic) trailing waiver\n}\n",
    )]));
    assert!(diags(&report, "panic").is_empty());
    assert_eq!(report.allowed.len(), 1);
}

#[test]
fn lint_allow_without_reason_is_a_finding_and_does_not_waive() {
    let report = analyze(&tree(&[(
        "crates/server/src/daemon.rs",
        "pub fn worker(v: Option<u8>) -> u8 {\n    // lint:allow(panic)\n    v.unwrap()\n}\n",
    )]));
    assert_eq!(diags(&report, "lint-allow").len(), 1);
    assert_eq!(
        diags(&report, "panic").len(),
        1,
        "a reasonless waiver must not waive"
    );
}

#[test]
fn lint_allow_with_unknown_rule_is_a_finding() {
    let report = analyze(&tree(&[(
        "crates/server/src/daemon.rs",
        "// lint:allow(bogus) not a rule\npub fn live() {}\n",
    )]));
    let found = diags(&report, "lint-allow");
    assert_eq!(found.len(), 1);
    assert!(found[0].message.contains("unknown rule"));
}

#[test]
fn doc_comments_describing_the_convention_are_not_directives() {
    let report = analyze(&tree(&[(
        "crates/server/src/daemon.rs",
        "/// Waive with lint:allow(bogus) — this doc line is not a directive.\n\
         //! Nor is lint:allow(alsobogus) in a module doc.\npub fn live() {}\n",
    )]));
    assert!(
        diags(&report, "lint-allow").is_empty(),
        "{}",
        report.render_text()
    );
}

// ---------------------------------------------------------------------------
// Rule 2: determinism
// ---------------------------------------------------------------------------

#[test]
fn determinism_rule_fires_on_clocks_and_unordered_maps() {
    let report = analyze(&tree(&[(
        "crates/sim/src/traffic.rs",
        "use std::time::Instant;\nuse std::collections::HashMap;\npub fn f() {}\n",
    )]));
    let found = diags(&report, "determinism");
    assert_eq!(found.len(), 2, "{}", report.render_text());
    assert!(found[0].message.contains("Instant"));
    assert!(found[1].message.contains("HashMap"));
}

#[test]
fn determinism_rule_is_scoped_to_the_deterministic_modules() {
    let report = analyze(&tree(&[(
        "crates/sim/src/engine.rs",
        "use std::time::Instant;\nuse std::collections::HashMap;\npub fn f() {}\n",
    )]));
    assert!(diags(&report, "determinism").is_empty());
}

#[test]
fn determinism_rule_skips_banned_names_inside_strings_and_tests() {
    let report = analyze(&tree(&[(
        "crates/sim/src/minijson.rs",
        "pub const NOTE: &str = \"never use HashMap or Instant here\";\n\
         #[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n",
    )]));
    assert!(
        diags(&report, "determinism").is_empty(),
        "{}",
        report.render_text()
    );
}

// ---------------------------------------------------------------------------
// Rule 3: rng-salt
// ---------------------------------------------------------------------------

#[test]
fn rng_salt_rule_fires_on_unsalted_seeds() {
    let report = analyze(&tree(&[(
        "crates/ecc/src/code.rs",
        "pub fn rng(seed: u64) -> ChaCha8Rng {\n    ChaCha8Rng::seed_from_u64(seed)\n}\n",
    )]));
    let found = diags(&report, "rng-salt");
    assert_eq!(found.len(), 1, "{}", report.render_text());
    assert_eq!(found[0].line, 2);
}

#[test]
fn rng_salt_rule_accepts_salts_in_argument_binding_or_helper() {
    let report = analyze(&tree(&[(
        "crates/ecc/src/code.rs",
        "pub fn direct(seed: u64) -> ChaCha8Rng {\n    \
         ChaCha8Rng::seed_from_u64(seed ^ CODE_SALT)\n}\n\
         pub fn bound(seed: u64) -> ChaCha8Rng {\n    \
         let stream = seed ^ WORD_SALT;\n    ChaCha8Rng::seed_from_u64(stream)\n}\n\
         pub fn helper(w: u64) -> ChaCha8Rng {\n    \
         ChaCha8Rng::seed_from_u64(trial_salt(w))\n}\n",
    )]));
    assert!(
        diags(&report, "rng-salt").is_empty(),
        "{}",
        report.render_text()
    );
}

#[test]
fn rng_salt_rule_is_scoped_to_library_sources() {
    let unsalted = "fn seed() -> ChaCha8Rng {\n    ChaCha8Rng::seed_from_u64(42)\n}\n";
    let report = analyze(&tree(&[
        ("crates/bench/benches/kernel.rs", unsalted),
        ("tests/integration.rs", unsalted),
    ]));
    assert!(diags(&report, "rng-salt").is_empty());
}

#[test]
fn rng_salt_rule_skips_tests_and_honors_allows() {
    let report = analyze(&tree(&[(
        "crates/ecc/src/code.rs",
        "pub fn api(seed: u64) -> ChaCha8Rng {\n    \
         // lint:allow(rng-salt) the caller picks the stream\n    \
         ChaCha8Rng::seed_from_u64(seed)\n}\n\
         #[cfg(test)]\nmod tests {\n    fn t() {\n        \
         let _ = ChaCha8Rng::seed_from_u64(7);\n    }\n}\n",
    )]));
    assert!(
        diags(&report, "rng-salt").is_empty(),
        "{}",
        report.render_text()
    );
    assert_eq!(report.allowed.len(), 1);
    assert_eq!(report.allowed[0].rule, "rng-salt");
}

// ---------------------------------------------------------------------------
// Rule 4: bench-registry
// ---------------------------------------------------------------------------

/// A coherent single-group tree: bench target, registry, JSON, and docs
/// all agree on `alpha`.
fn registry_tree() -> Tree {
    let mut t = tree(&[
        (
            "crates/bench/benches/alpha.rs",
            "fn run(c: &mut Criterion) {\n    \
             let mut g = c.benchmark_group(format!(\"alpha/{label}\"));\n    \
             g.bench_function(\"decode\", |b| b.iter(work));\n}\n",
        ),
        (
            "crates/cli/src/bench_export.rs",
            "pub const REGISTERED_GROUPS: &[&str] = &[\"alpha\"];\n",
        ),
    ]);
    t.bench_json.insert(
        "BENCH_alpha.json".to_owned(),
        "{\n  \"group\": \"alpha\",\n  \"entries\": []\n}\n".to_owned(),
    );
    t.benchmarks_md = "The `alpha` group measures the decode path.".to_owned();
    t
}

#[test]
fn bench_registry_accepts_a_coherent_tree() {
    let report = analyze(&registry_tree());
    assert!(
        diags(&report, "bench-registry").is_empty(),
        "{}",
        report.render_text()
    );
}

#[test]
fn bench_registry_flags_an_unregistered_group() {
    let mut t = registry_tree();
    t.files[0]
        .text
        .push_str("fn more(c: &mut Criterion) {\n    c.benchmark_group(\"beta/x\");\n}\n");
    let report = analyze(&t);
    let found = diags(&report, "bench-registry");
    assert_eq!(found.len(), 1, "{}", report.render_text());
    assert!(found[0].message.contains("`beta`"));
    assert_eq!(found[0].file, "crates/bench/benches/alpha.rs");
}

#[test]
fn bench_registry_flags_a_registered_group_with_no_backing() {
    let mut t = registry_tree();
    t.files[1].text =
        "pub const REGISTERED_GROUPS: &[&str] = &[\"alpha\", \"gamma\"];\n".to_owned();
    let report = analyze(&t);
    let found = diags(&report, "bench-registry");
    // No bench target, no BENCH_gamma.json, no BENCHMARKS.md mention.
    assert_eq!(found.len(), 3, "{}", report.render_text());
    assert!(found.iter().all(|d| d.message.contains("gamma")));
}

#[test]
fn bench_registry_flags_json_group_mismatch_and_strays() {
    let mut t = registry_tree();
    t.bench_json.insert(
        "BENCH_alpha.json".to_owned(),
        "{\n  \"group\": \"other\",\n  \"entries\": []\n}\n".to_owned(),
    );
    t.bench_json
        .insert("BENCH_zzz.json".to_owned(), "{}".to_owned());
    let report = analyze(&t);
    let found = diags(&report, "bench-registry");
    assert_eq!(found.len(), 2, "{}", report.render_text());
    assert!(found.iter().any(|d| d.file == "BENCH_alpha.json"));
    assert!(found
        .iter()
        .any(|d| d.message.contains("stray BENCH_zzz.json")));
}

#[test]
fn bench_registry_reads_groups_from_slashed_bench_function_ids() {
    let mut t = registry_tree();
    // Replace the benchmark_group call with a top-level slashed id: the
    // group is still discoverable, and a bare id defines no group.
    t.files[0].text = "fn run(c: &mut Criterion) {\n    \
                       c.bench_function(\"alpha/decode\", |b| b.iter(work));\n    \
                       c.bench_function(\"not_a_group\", |b| b.iter(work));\n}\n"
        .to_owned();
    let report = analyze(&t);
    assert!(
        diags(&report, "bench-registry").is_empty(),
        "{}",
        report.render_text()
    );
}

#[test]
fn bench_registry_reports_a_missing_registry() {
    let mut t = registry_tree();
    t.files.remove(1);
    let report = analyze(&t);
    let found = diags(&report, "bench-registry");
    assert_eq!(found.len(), 1);
    assert!(found[0]
        .message
        .contains("REGISTERED_GROUPS declaration not found"));
}

// ---------------------------------------------------------------------------
// Rule 5: scalar-twin
// ---------------------------------------------------------------------------

#[test]
fn scalar_twin_rule_requires_a_manifest() {
    let report = analyze(&tree(&[]));
    let found = diags(&report, "scalar-twin");
    assert_eq!(found.len(), 1);
    assert!(found[0].message.contains("missing or empty"));
}

#[test]
fn scalar_twin_rule_accepts_entries_referenced_under_tests() {
    let mut t = tree(&[(
        "tests/burst.rs",
        "#[test]\nfn matches_scalar() {\n    read_burst(&words);\n}\n",
    )]);
    t.scalar_manifest.push((3, "read_burst".to_owned()));
    let report = analyze(&t);
    assert!(
        diags(&report, "scalar-twin").is_empty(),
        "{}",
        report.render_text()
    );
}

#[test]
fn scalar_twin_rule_flags_uncovered_entries_with_their_manifest_line() {
    let mut t = tree(&[(
        "tests/burst.rs",
        "#[test]\nfn matches_scalar() {\n    read_burst(&words);\n}\n",
    )]);
    t.scalar_manifest.push((3, "read_burst".to_owned()));
    t.scalar_manifest.push((7, "missing_kernel".to_owned()));
    let report = analyze(&t);
    let found = diags(&report, "scalar-twin");
    assert_eq!(found.len(), 1, "{}", report.render_text());
    assert_eq!(found[0].line, 7);
    assert!(found[0].message.contains("missing_kernel"));
}

#[test]
fn scalar_twin_rule_rejects_string_mentions_and_non_test_references() {
    let mut t = tree(&[
        // A string mention in a test file is not coverage…
        ("tests/notes.rs", "const N: &str = \"read_burst\";\n"),
        // …and a real call outside tests/ is not either.
        (
            "crates/sim/src/engine.rs",
            "fn f() {\n    read_burst(&w);\n}\n",
        ),
    ]);
    t.scalar_manifest.push((1, "read_burst".to_owned()));
    let report = analyze(&t);
    assert_eq!(diags(&report, "scalar-twin").len(), 1);
}

// ---------------------------------------------------------------------------
// The workspace itself
// ---------------------------------------------------------------------------

/// The acceptance gate, as a test: the real tree must be clean. This is
/// the same analysis CI runs via `cargo run -p harp_lint -- --check`.
#[test]
fn the_workspace_itself_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..");
    let tree = Tree::load(&root).expect("workspace tree must load");
    let report = analyze(&tree);
    assert!(
        report.is_clean(),
        "workspace lint findings:\n{}",
        report.render_text()
    );
    assert!(report.files_scanned > 100, "suspiciously small tree");
}
