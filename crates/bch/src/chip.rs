//! A memory chip whose on-die ECC is the double-error-correcting BCH code.
//!
//! This mirrors [`harp_memsim::MemoryChip`] (which models the paper's SEC
//! Hamming on-die ECC) so the extension experiments can exercise HARP's two
//! read paths — the normal decoded read and the raw-data *bypass* read — on a
//! chip with stronger on-die ECC. The fault model is shared with the SEC
//! chip: data-dependent Bernoulli errors in individual cells.

use rand::Rng;

use harp_gf2::BitVec;
use harp_memsim::FaultModel;

use crate::code::BchCode;
use crate::decoder::BchDecodeResult;

/// Everything the simulator knows about one read of a BCH-protected word.
///
/// As with the SEC chip, the memory controller only ever sees the
/// post-correction dataword (normal read) or the raw data bits (bypass
/// read); the raw error pattern is simulator-side ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BchReadObservation {
    written_data: BitVec,
    raw_error: BitVec,
    decode: BchDecodeResult,
}

impl BchReadObservation {
    /// The dataword that was written to the word.
    pub fn written_data(&self) -> &BitVec {
        &self.written_data
    }

    /// The post-correction dataword returned by the normal read path.
    pub fn post_correction_data(&self) -> &BitVec {
        &self.decode.dataword
    }

    /// The raw (pre-correction) data bits returned by the bypass read path.
    /// Parity bits are not exposed, exactly as in the SEC chip.
    pub fn raw_data_bits(&self) -> BitVec {
        let k = self.written_data.len();
        let mut raw = self.written_data.clone();
        for pos in self.raw_error.iter_ones() {
            if pos < k {
                raw.flip(pos);
            }
        }
        raw
    }

    /// The full decode result (outcome and syndromes).
    pub fn decode_result(&self) -> &BchDecodeResult {
        &self.decode
    }

    /// Dataword positions where the post-correction data differs from the
    /// written data.
    pub fn post_correction_errors(&self) -> Vec<usize> {
        self.decode.post_correction_errors(&self.written_data)
    }

    /// Dataword positions of raw errors within the data bits (direct
    /// errors), as the bypass path exposes them.
    pub fn direct_errors(&self) -> Vec<usize> {
        let k = self.written_data.len();
        self.raw_error.iter_ones().filter(|&p| p < k).collect()
    }

    /// The injected raw error pattern over the whole codeword
    /// (simulator-side ground truth).
    pub fn raw_error_pattern(&self) -> &BitVec {
        &self.raw_error
    }
}

/// A memory chip with DEC BCH on-die ECC and per-word fault models.
///
/// # Example
///
/// ```
/// use harp_bch::{BchCode, BchMemoryChip};
/// use harp_gf2::BitVec;
/// use harp_memsim::FaultModel;
/// use rand::SeedableRng;
///
/// let code = BchCode::dec(64)?;
/// let mut chip = BchMemoryChip::new(code, 1);
/// chip.set_fault_model(0, FaultModel::uniform(&[3, 40], 1.0));
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// chip.write(0, &BitVec::ones(64));
/// let obs = chip.read(0, &mut rng);
/// // A DEC code absorbs the double raw error entirely...
/// assert!(obs.post_correction_errors().is_empty());
/// // ...but the bypass path still exposes both raw errors to HARP's active
/// // profiler.
/// assert_eq!(obs.direct_errors(), vec![3, 40]);
/// # Ok::<(), harp_bch::BchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct BchMemoryChip {
    code: BchCode,
    written: Vec<BitVec>,
    faults: Vec<FaultModel>,
}

impl BchMemoryChip {
    /// Creates a chip with `num_words` words, all initialised to zero and
    /// fault-free.
    ///
    /// # Panics
    ///
    /// Panics if `num_words` is zero.
    pub fn new(code: BchCode, num_words: usize) -> Self {
        assert!(num_words > 0, "a chip needs at least one word");
        let written = vec![BitVec::zeros(code.data_len()); num_words];
        let faults = vec![FaultModel::none(); num_words];
        Self {
            code,
            written,
            faults,
        }
    }

    /// The on-die ECC code of this chip.
    pub fn code(&self) -> &BchCode {
        &self.code
    }

    /// Number of words the chip stores.
    pub fn num_words(&self) -> usize {
        self.written.len()
    }

    /// Sets the fault model of one word.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn set_fault_model(&mut self, word: usize, model: FaultModel) {
        assert!(word < self.num_words(), "word {word} out of range");
        self.faults[word] = model;
    }

    /// The fault model of one word.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn fault_model(&self, word: usize) -> &FaultModel {
        assert!(word < self.num_words(), "word {word} out of range");
        &self.faults[word]
    }

    /// Writes a dataword into a word.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range or the data length does not match
    /// the code.
    pub fn write(&mut self, word: usize, data: &BitVec) {
        assert!(word < self.num_words(), "word {word} out of range");
        assert_eq!(
            data.len(),
            self.code.data_len(),
            "dataword length mismatch: expected {}, got {}",
            self.code.data_len(),
            data.len()
        );
        self.written[word] = data.clone();
    }

    /// The dataword most recently written to a word.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn written_data(&self, word: usize) -> &BitVec {
        assert!(word < self.num_words(), "word {word} out of range");
        &self.written[word]
    }

    /// Reads a word: samples raw errors from its fault model against the
    /// stored codeword, decodes with the DEC BCH on-die ECC, and returns the
    /// full observation.
    ///
    /// # Panics
    ///
    /// Panics if `word` is out of range.
    pub fn read<R: Rng + ?Sized>(&self, word: usize, rng: &mut R) -> BchReadObservation {
        assert!(word < self.num_words(), "word {word} out of range");
        let written_data = self.written[word].clone();
        let stored = self.code.encode(&written_data);
        let raw_error = self.faults[word].sample_errors(&stored, rng);
        let decode = self.code.decode(&(&stored ^ &raw_error));
        BchReadObservation {
            written_data,
            raw_error,
            decode,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(0xBC4)
    }

    fn chip_with_faults(at_risk: &[usize], probability: f64) -> BchMemoryChip {
        let code = BchCode::dec(64).unwrap();
        let mut chip = BchMemoryChip::new(code, 2);
        chip.set_fault_model(0, FaultModel::uniform(at_risk, probability));
        chip
    }

    #[test]
    fn fault_free_reads_round_trip() {
        let code = BchCode::dec(32).unwrap();
        let mut chip = BchMemoryChip::new(code, 3);
        let data = BitVec::from_u64(32, 0xCAFE_F00D);
        chip.write(2, &data);
        let obs = chip.read(2, &mut rng());
        assert_eq!(obs.post_correction_data(), &data);
        assert_eq!(obs.raw_data_bits(), data);
        assert!(obs.post_correction_errors().is_empty());
        assert!(obs.direct_errors().is_empty());
        assert_eq!(chip.written_data(2), &data);
        assert_eq!(chip.num_words(), 3);
        assert!(chip.fault_model(0).is_error_free());
    }

    #[test]
    fn double_errors_are_invisible_on_the_decoded_path_but_not_the_bypass_path() {
        let mut chip = chip_with_faults(&[7, 50], 1.0);
        chip.write(0, &BitVec::ones(64));
        let obs = chip.read(0, &mut rng());
        assert!(obs.post_correction_errors().is_empty());
        assert_eq!(obs.direct_errors(), vec![7, 50]);
        assert!(!obs.raw_data_bits().get(7));
        assert!(!obs.raw_data_bits().get(50));
        assert_eq!(obs.decode_result().outcome.correction_count(), 2);
    }

    #[test]
    fn data_dependence_is_respected() {
        // True cells storing '0' cannot fail.
        let mut chip = chip_with_faults(&[7, 50], 1.0);
        chip.write(0, &BitVec::zeros(64));
        let obs = chip.read(0, &mut rng());
        assert!(obs.raw_error_pattern().is_zero());
    }

    #[test]
    fn triple_errors_may_leak_but_never_exceed_two_indirect_errors() {
        let mut chip = chip_with_faults(&[1, 2, 3], 1.0);
        chip.write(0, &BitVec::ones(64));
        let obs = chip.read(0, &mut rng());
        let direct: std::collections::BTreeSet<usize> = obs.direct_errors().into_iter().collect();
        let post: std::collections::BTreeSet<usize> =
            obs.post_correction_errors().into_iter().collect();
        let indirect = post.difference(&direct).count();
        assert!(indirect <= 2);
        assert_eq!(direct.len(), 3);
    }

    #[test]
    fn bypass_reads_give_harp_active_profiling_full_direct_coverage() {
        // HARP-U's active phase is unchanged by the stronger on-die ECC: the
        // bypass path identifies every at-risk data bit within a few rounds,
        // independent of which error combinations occur.
        let at_risk = [5usize, 23, 44, 60];
        let mut chip = chip_with_faults(&at_risk, 0.5);
        chip.write(0, &BitVec::ones(64));
        let mut rng = rng();
        let mut identified = std::collections::BTreeSet::new();
        for _ in 0..64 {
            let obs = chip.read(0, &mut rng);
            identified.extend(obs.direct_errors());
        }
        let expected: std::collections::BTreeSet<usize> = at_risk.iter().copied().collect();
        assert_eq!(identified, expected);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_word_is_rejected() {
        let code = BchCode::dec(16).unwrap();
        BchMemoryChip::new(code, 1).read(3, &mut rng());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_dataword_is_rejected() {
        let code = BchCode::dec(16).unwrap();
        BchMemoryChip::new(code, 1).write(0, &BitVec::ones(8));
    }
}
