//! Systematic, shortened, double-error-correcting BCH codes.
//!
//! The code is constructed over GF(2^m) with generator polynomial
//! `g(x) = lcm(m₁(x), m₃(x))` (the minimal polynomials of `α` and `α³`),
//! giving a designed distance of 5 and therefore a correction capability of
//! `t = 2`. The full code length is `2^m − 1`; the code is *shortened* to
//! exactly the requested dataword length by fixing the unused
//! highest-order message positions to zero (standard practice for
//! memory-geometry-constrained ECC).
//!
//! The codeword layout matches the shared [`LinearBlockCode`] convention:
//! data bits occupy positions `[0, k)` and parity bits positions
//! `[k, k + p)`, so the code is systematic and the whole of the HARP
//! analysis about direct vs. indirect errors carries over unchanged.
//! Encoding, syndrome computation (through the batched
//! [`SyndromeKernel`]), and decoding are exposed via the trait; decoding
//! internally derives the power-sum syndromes `(S₁, S₃)` from the binary
//! syndrome and applies Peterson's direct solution for `t = 2`.

use std::fmt;

use serde::{Deserialize, Serialize};

use harp_ecc::{CorrectedPositions, DecodeOutcome, DecodeResult, LinearBlockCode, WordLayout};
use harp_gf2::{BitVec, Gf2Matrix, SyndromeKernel};

use crate::field::Gf2mField;
use crate::poly::BinaryPoly;

/// Errors produced when constructing a [`BchCode`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BchError {
    /// The requested dataword length is zero.
    EmptyDataword,
    /// The requested dataword does not fit in the chosen field: shortening
    /// cannot *extend* a code beyond `2^m − 1` total bits.
    DatawordTooLong {
        /// Requested dataword length.
        data_bits: usize,
        /// Field degree that was attempted.
        field_degree: u32,
        /// Maximum dataword length the field supports.
        max_data_bits: usize,
    },
}

impl fmt::Display for BchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BchError::EmptyDataword => f.write_str("dataword length must be nonzero"),
            BchError::DatawordTooLong {
                data_bits,
                field_degree,
                max_data_bits,
            } => write!(
                f,
                "dataword of {data_bits} bits does not fit a GF(2^{field_degree}) BCH code \
                 (maximum {max_data_bits} data bits)"
            ),
        }
    }
}

impl std::error::Error for BchError {}

/// A systematic, shortened, double-error-correcting BCH code.
///
/// # Example
///
/// ```
/// use harp_bch::BchCode;
/// use harp_ecc::LinearBlockCode;
/// use harp_gf2::BitVec;
///
/// let code = BchCode::dec(64)?;
/// assert_eq!(code.data_len(), 64);
/// assert_eq!(code.parity_len(), 14);
/// assert_eq!(code.codeword_len(), 78);
/// assert_eq!(code.correction_capability(), 2);
///
/// let data = BitVec::from_u64(64, 0xDEAD_BEEF_0BAD_F00D);
/// let codeword = code.encode(&data);
/// assert_eq!(code.decode(&codeword).dataword, data);
/// # Ok::<(), harp_bch::BchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BchCode {
    field: Gf2mField,
    data_bits: usize,
    parity_bits: usize,
    generator: BinaryPoly,
    /// `parity_columns[i]` holds the parity contribution of data bit `i`
    /// (the coefficients of `x^(p+i) mod g(x)`), used for systematic
    /// encoding and for the GF(2) chargeability analysis.
    parity_columns: Vec<BitVec>,
    /// The parity block `A` (`p × k`) assembled from `parity_columns`.
    a: Gf2Matrix,
    /// The binary parity-check matrix `H` (`2m × (k+p)`).
    h: Gf2Matrix,
    /// Word-packed copy of `H` driving the hot syndrome path.
    kernel: SyndromeKernel,
}

impl BchCode {
    /// Constructs a double-error-correcting BCH code for `data_bits` data
    /// bits, choosing the smallest field that fits.
    ///
    /// # Errors
    ///
    /// Returns [`BchError::EmptyDataword`] for a zero-length dataword and
    /// [`BchError::DatawordTooLong`] if no supported field fits the request.
    pub fn dec(data_bits: usize) -> Result<Self, BchError> {
        if data_bits == 0 {
            return Err(BchError::EmptyDataword);
        }
        for m in 3..=12u32 {
            match Self::dec_with_field(data_bits, m) {
                Ok(code) => return Ok(code),
                Err(BchError::DatawordTooLong { .. }) => continue,
                Err(other) => return Err(other),
            }
        }
        Err(BchError::DatawordTooLong {
            data_bits,
            field_degree: 12,
            max_data_bits: (1 << 12) - 1 - 24,
        })
    }

    /// Constructs a double-error-correcting BCH code over GF(2^m).
    ///
    /// # Errors
    ///
    /// Returns [`BchError::EmptyDataword`] or [`BchError::DatawordTooLong`]
    /// if the requested geometry is unusable.
    ///
    /// # Panics
    ///
    /// Panics if `m` is outside the supported range `3..=12`.
    pub fn dec_with_field(data_bits: usize, m: u32) -> Result<Self, BchError> {
        if data_bits == 0 {
            return Err(BchError::EmptyDataword);
        }
        let field = Gf2mField::new(m);
        let m1 = BinaryPoly::minimal_polynomial(&field, field.alpha_pow(1));
        let m3 = BinaryPoly::minimal_polynomial(&field, field.alpha_pow(3));
        let generator = m1.lcm(&m3);
        let parity_bits = generator.degree().expect("generator polynomial is nonzero");
        let full_length = field.order() as usize;
        if data_bits + parity_bits > full_length {
            return Err(BchError::DatawordTooLong {
                data_bits,
                field_degree: m,
                max_data_bits: full_length - parity_bits,
            });
        }

        // Parity contribution of each data bit: x^(p + i) mod g(x).
        let parity_columns: Vec<BitVec> = (0..data_bits)
            .map(|i| {
                let remainder = BinaryPoly::monomial(parity_bits + i).rem(&generator);
                BitVec::from_indices(parity_bits, remainder.exponents())
            })
            .collect();
        let a = Gf2Matrix::from_cols(&parity_columns);

        let codeword_len = data_bits + parity_bits;
        let field_degree = field.degree() as usize;
        let h_cols: Vec<BitVec> = (0..codeword_len)
            .map(|pos| {
                let power = Self::power_for(data_bits, parity_bits, pos) as u32;
                let a1 = field.alpha_pow(power);
                let a3 = field.pow(field.alpha_pow(power), 3);
                let mut col = BitVec::zeros(2 * field_degree);
                for bit in 0..field_degree {
                    col.set(bit, a1 & (1 << bit) != 0);
                    col.set(field_degree + bit, a3 & (1 << bit) != 0);
                }
                col
            })
            .collect();
        let h = Gf2Matrix::from_cols(&h_cols);
        let kernel = SyndromeKernel::new(&h);

        Ok(Self {
            field,
            data_bits,
            parity_bits,
            generator,
            parity_columns,
            a,
            h,
            kernel,
        })
    }

    /// The underlying field GF(2^m).
    pub fn field(&self) -> &Gf2mField {
        &self.field
    }

    /// The generator polynomial `g(x)`.
    pub fn generator_polynomial(&self) -> &BinaryPoly {
        &self.generator
    }

    fn power_for(data_bits: usize, parity_bits: usize, pos: usize) -> usize {
        if pos < data_bits {
            parity_bits + pos
        } else {
            pos - data_bits
        }
    }

    /// Maps a codeword bit position to its polynomial power.
    ///
    /// Data bit `i` is the coefficient of `x^(p+i)`; parity bit `j` (at
    /// codeword position `k + j`) is the coefficient of `x^j`.
    pub fn power_of_position(&self, pos: usize) -> usize {
        assert!(
            pos < self.data_bits + self.parity_bits,
            "position {pos} out of range"
        );
        Self::power_for(self.data_bits, self.parity_bits, pos)
    }

    /// Maps a polynomial power back to a codeword bit position, or `None` if
    /// the power lies in the shortened (always-zero) region.
    pub fn position_of_power(&self, power: usize) -> Option<usize> {
        if power < self.parity_bits {
            Some(self.data_bits + power)
        } else if power < self.parity_bits + self.data_bits {
            Some(power - self.parity_bits)
        } else {
            None
        }
    }

    /// Computes the power-sum syndromes `(S₁, S₃)` of a stored codeword as
    /// GF(2^m) elements, derived from the binary syndrome (the kernel path).
    ///
    /// Both are zero exactly when the stored word is a valid codeword.
    ///
    /// # Panics
    ///
    /// Panics if `stored.len() != codeword_len()`.
    pub fn power_sums(&self, stored: &BitVec) -> (u32, u32) {
        self.power_sums_from_syndrome(&self.syndrome(stored))
    }

    /// Splits a binary syndrome (as produced by
    /// [`LinearBlockCode::syndrome`]) into the power sums `(S₁, S₃)`:
    /// bits `0..m` are `S₁`, bits `m..2m` are `S₃`.
    ///
    /// # Panics
    ///
    /// Panics if the syndrome length is not `2m`.
    pub fn power_sums_from_syndrome(&self, syndrome: &BitVec) -> (u32, u32) {
        let m = self.field.degree() as usize;
        assert_eq!(syndrome.len(), 2 * m, "syndrome length mismatch");
        self.power_sums_from_word(syndrome.to_u64())
    }

    /// Splits a packed binary syndrome (as produced by the batched
    /// `SyndromeKernel::syndrome_words_into`) into the power sums
    /// `(S₁, S₃)`: bits `0..m` are `S₁`, bits `m..2m` are `S₃`.
    pub fn power_sums_from_word(&self, syndrome_word: u64) -> (u32, u32) {
        let m = self.field.degree() as usize;
        let mask = (1u64 << m) - 1;
        (
            (syndrome_word & mask) as u32,
            ((syndrome_word >> m) & mask) as u32,
        )
    }

    fn uncorrectable(&self, stored: &BitVec, syndrome: BitVec) -> DecodeResult {
        DecodeResult {
            dataword: stored.slice(0, self.data_bits),
            outcome: DecodeOutcome::DetectedUncorrectable,
            syndrome,
        }
    }

    /// Peterson's direct solution for `t = 2` on the power sums of a
    /// *nonzero* syndrome: the single shared error-locator computation behind
    /// both decode entry points (`decode` and `decode_with_syndrome_into`),
    /// so the scalar and burst read paths can never diverge on the math.
    fn resolve_nonzero_syndrome(&self, s1: u32, s3: u32) -> PetersonResolution {
        // Single-error hypothesis: S₃ = S₁³ with S₁ ≠ 0.
        if s1 != 0 && self.field.pow(s1, 3) == s3 {
            let power = self.field.log(s1) as usize;
            return match self.position_of_power(power) {
                Some(position) => PetersonResolution::Single(position),
                None => PetersonResolution::Uncorrectable,
            };
        }

        // Double-error hypothesis. With two errors S₁ ≠ 0, so S₁ = 0 with
        // S₃ ≠ 0 is already uncorrectable.
        if s1 == 0 {
            return PetersonResolution::Uncorrectable;
        }
        // Error-locator polynomial σ(x) = x² + S₁·x + (S₃/S₁ + S₁²); its
        // roots are the error locators α^e₁, α^e₂.
        let sigma2 = self
            .field
            .add(self.field.div(s3, s1), self.field.pow(s1, 2));
        if sigma2 == 0 {
            // A repeated root cannot correspond to two distinct positions.
            return PetersonResolution::Uncorrectable;
        }
        let mut roots = [0usize; 2];
        let mut root_count = 0usize;
        for power in 0..self.field.order() {
            let x = self.field.alpha_pow(power);
            let value = self.field.add(
                self.field.add(self.field.pow(x, 2), self.field.mul(s1, x)),
                sigma2,
            );
            if value == 0 {
                if root_count < 2 {
                    roots[root_count] = power as usize;
                }
                root_count += 1;
                if root_count > 2 {
                    break;
                }
            }
        }
        if root_count != 2 {
            return PetersonResolution::Uncorrectable;
        }
        match (
            self.position_of_power(roots[0]),
            self.position_of_power(roots[1]),
        ) {
            (Some(a), Some(b)) => PetersonResolution::Double(a, b),
            _ => PetersonResolution::Uncorrectable,
        }
    }
}

/// What Peterson's solution concluded about a nonzero syndrome (codeword
/// positions, already mapped out of the shortened region).
enum PetersonResolution {
    Single(usize),
    Double(usize, usize),
    Uncorrectable,
}

impl LinearBlockCode for BchCode {
    fn layout(&self) -> WordLayout {
        WordLayout::new(self.data_bits, self.parity_bits)
    }

    /// The correction capability `t` (always 2 for this crate).
    fn correction_capability(&self) -> usize {
        2
    }

    fn parity_check_matrix(&self) -> &Gf2Matrix {
        &self.h
    }

    fn parity_block(&self) -> &Gf2Matrix {
        &self.a
    }

    fn syndrome_kernel(&self) -> &SyndromeKernel {
        &self.kernel
    }

    /// Bounded-distance decodes a stored codeword using Peterson's direct
    /// solution for `t = 2`.
    ///
    /// The decoder has no access to the originally written data: with three
    /// or more raw errors it may *miscorrect*, flipping up to two additional
    /// (previously error-free) positions — the indirect errors studied by
    /// the HARP paper, here bounded by `t = 2` instead of 1.
    fn decode(&self, stored: &BitVec) -> DecodeResult {
        let syndrome = self.syndrome(stored);
        let (s1, s3) = self.power_sums_from_syndrome(&syndrome);
        if s1 == 0 && s3 == 0 {
            return DecodeResult {
                dataword: stored.slice(0, self.data_bits),
                outcome: DecodeOutcome::NoErrorDetected,
                syndrome,
            };
        }
        match self.resolve_nonzero_syndrome(s1, s3) {
            PetersonResolution::Single(position) => {
                let mut corrected = stored.clone();
                corrected.flip(position);
                DecodeResult {
                    dataword: corrected.slice(0, self.data_bits),
                    outcome: DecodeOutcome::corrected(position),
                    syndrome,
                }
            }
            PetersonResolution::Double(a, b) => {
                let mut corrected = stored.clone();
                corrected.flip(a);
                corrected.flip(b);
                DecodeResult {
                    dataword: corrected.slice(0, self.data_bits),
                    outcome: DecodeOutcome::corrected_many([a, b]),
                    syndrome,
                }
            }
            PetersonResolution::Uncorrectable => self.uncorrectable(stored, syndrome),
        }
    }

    fn description(&self) -> String {
        format!(
            "DEC BCH ({}, {}) over {}",
            self.data_bits + self.parity_bits,
            self.data_bits,
            self.field
        )
    }

    /// The allocation-free twin of [`BchCode::decode`] for the burst read
    /// path: same Peterson resolution, but the power sums come straight from
    /// the packed syndrome and all buffers in `out` are reused.
    fn decode_with_syndrome_into(
        &self,
        stored: &BitVec,
        syndrome_word: u64,
        out: &mut DecodeResult,
    ) {
        assert_eq!(
            stored.len(),
            self.data_bits + self.parity_bits,
            "stored codeword length mismatch"
        );
        let k = self.data_bits;
        let m = self.field.degree() as usize;
        out.syndrome.assign_u64(2 * m, syndrome_word);
        out.dataword.copy_prefix_from(stored, k);
        let (s1, s3) = self.power_sums_from_word(syndrome_word);
        if s1 == 0 && s3 == 0 {
            out.outcome = DecodeOutcome::NoErrorDetected;
            return;
        }
        match self.resolve_nonzero_syndrome(s1, s3) {
            PetersonResolution::Single(position) => {
                // Parity-bit corrections never touch the dataword.
                if position < k {
                    out.dataword.flip(position);
                }
                out.outcome = DecodeOutcome::corrected(position);
            }
            PetersonResolution::Double(a, b) => {
                let mut positions = CorrectedPositions::new();
                for position in [a, b] {
                    positions.push(position);
                    if position < k {
                        out.dataword.flip(position);
                    }
                }
                out.outcome = DecodeOutcome::Corrected { positions };
            }
            PetersonResolution::Uncorrectable => {
                out.outcome = DecodeOutcome::DetectedUncorrectable;
            }
        }
    }
}

impl fmt::Display for BchCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.description())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(code: &BchCode, rng: &mut StdRng) -> BitVec {
        (0..code.data_len()).map(|_| rng.gen_bool(0.5)).collect()
    }

    #[test]
    fn paper_geometries() {
        let code64 = BchCode::dec(64).unwrap();
        assert_eq!(code64.data_len(), 64);
        assert_eq!(code64.parity_len(), 14);
        assert_eq!(code64.codeword_len(), 78);
        assert_eq!(code64.field().degree(), 7);

        let code128 = BchCode::dec(128).unwrap();
        assert_eq!(code128.parity_len(), 16);
        assert_eq!(code128.codeword_len(), 144);
        assert_eq!(code128.field().degree(), 8);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(BchCode::dec(0), Err(BchError::EmptyDataword));
        assert!(matches!(
            BchCode::dec_with_field(1000, 7),
            Err(BchError::DatawordTooLong {
                field_degree: 7,
                ..
            })
        ));
        let err = BchCode::dec_with_field(1000, 7).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    #[test]
    fn generator_divides_x_n_plus_1() {
        let code = BchCode::dec(64).unwrap();
        let n = code.field().order() as usize;
        let x_n_plus_1 = BinaryPoly::monomial(n).add(&BinaryPoly::one());
        assert!(code.generator_polynomial().divides(&x_n_plus_1));
        assert_eq!(code.generator_polynomial().degree(), Some(14));
    }

    #[test]
    fn encoding_is_systematic() {
        let code = BchCode::dec(32).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let data = random_data(&code, &mut rng);
            let codeword = code.encode(&data);
            assert_eq!(codeword.slice(0, code.data_len()), data);
        }
    }

    #[test]
    fn codewords_have_zero_syndromes_and_satisfy_h() {
        let code = BchCode::dec(64).unwrap();
        let h = code.parity_check_matrix();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let data = random_data(&code, &mut rng);
            let codeword = code.encode(&data);
            assert_eq!(code.power_sums(&codeword), (0, 0));
            assert!(h.mul_vec(&codeword).is_zero());
            assert!(code.syndrome(&codeword).is_zero());
        }
    }

    #[test]
    fn kernel_syndrome_matches_power_sum_computation() {
        // The binary syndrome through the batched kernel carries exactly the
        // power sums: bits 0..m are S₁, bits m..2m are S₃, computed the slow
        // way with the log/antilog tables.
        let code = BchCode::dec(64).unwrap();
        let data = BitVec::from_u64(64, 0x0F0F_F0F0_1234_8765);
        let mut stored = code.encode(&data);
        stored.flip(3);
        stored.flip(41);
        stored.flip(70);
        let (s1, s3) = code.power_sums(&stored);
        let mut slow_s1 = 0u32;
        let mut slow_s3 = 0u32;
        for pos in stored.iter_ones() {
            let power = code.power_of_position(pos) as u32;
            slow_s1 ^= code.field().alpha_pow(power);
            slow_s3 ^= code.field().alpha_pow(3 * power);
        }
        assert_eq!((s1, s3), (slow_s1, slow_s3));
    }

    #[test]
    fn every_single_error_is_corrected() {
        let code = BchCode::dec(64).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let data = random_data(&code, &mut rng);
        for pos in 0..code.codeword_len() {
            let error = BitVec::from_indices(code.codeword_len(), [pos]);
            let result = code.encode_corrupt_decode(&data, &error);
            assert_eq!(result.dataword, data, "single error at {pos}");
            assert_eq!(result.outcome, DecodeOutcome::corrected(pos));
        }
    }

    #[test]
    fn every_double_error_is_corrected() {
        let code = BchCode::dec(16).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let data = random_data(&code, &mut rng);
        let n = code.codeword_len();
        for a in 0..n {
            for b in (a + 1)..n {
                let error = BitVec::from_indices(n, [a, b]);
                let result = code.encode_corrupt_decode(&data, &error);
                assert_eq!(result.dataword, data, "double error at ({a}, {b})");
                assert_eq!(result.outcome, DecodeOutcome::corrected_many([a, b]));
            }
        }
    }

    #[test]
    fn triple_errors_are_never_silently_accepted() {
        // Designed distance 5 means any weight-3 error pattern has a nonzero
        // syndrome: the decoder either miscorrects or reports uncorrectable,
        // but never claims "no error".
        let code = BchCode::dec(16).unwrap();
        let data = BitVec::ones(16);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let mut positions = std::collections::BTreeSet::new();
            while positions.len() < 3 {
                positions.insert(rng.gen_range(0..code.codeword_len()));
            }
            let error = BitVec::from_indices(code.codeword_len(), positions.iter().copied());
            let result = code.encode_corrupt_decode(&data, &error);
            assert_ne!(result.outcome, DecodeOutcome::NoErrorDetected);
        }
    }

    #[test]
    fn miscorrections_flip_at_most_two_extra_bits() {
        // Insight 2 of the paper, generalized: a t-error-correcting code can
        // introduce at most t indirect errors at once.
        let code = BchCode::dec(32).unwrap();
        let data = BitVec::ones(32);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..500 {
            let weight = rng.gen_range(3..6);
            let mut positions = std::collections::BTreeSet::new();
            while positions.len() < weight {
                positions.insert(rng.gen_range(0..code.codeword_len()));
            }
            let error = BitVec::from_indices(code.codeword_len(), positions.iter().copied());
            let result = code.encode_corrupt_decode(&data, &error);
            let post: std::collections::BTreeSet<usize> =
                result.post_correction_errors(&data).into_iter().collect();
            let direct: std::collections::BTreeSet<usize> = positions
                .iter()
                .copied()
                .filter(|&p| p < code.data_len())
                .collect();
            let indirect: Vec<usize> = post.difference(&direct).copied().collect();
            assert!(
                indirect.len() <= code.correction_capability(),
                "indirect errors {indirect:?} exceed t"
            );
        }
    }

    #[test]
    fn parity_block_matches_encoder() {
        let code = BchCode::dec(24).unwrap();
        let a = code.parity_block();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let data = random_data(&code, &mut rng);
            let codeword = code.encode(&data);
            let parity = codeword.slice(code.data_len(), code.codeword_len());
            assert_eq!(a.mul_vec(&data), parity);
        }
    }

    #[test]
    fn position_power_mapping_round_trips() {
        let code = BchCode::dec(64).unwrap();
        for pos in 0..code.codeword_len() {
            let power = code.power_of_position(pos);
            assert_eq!(code.position_of_power(power), Some(pos));
        }
        // Powers in the shortened region map to no position.
        assert_eq!(code.position_of_power(code.codeword_len()), None);
        assert_eq!(code.position_of_power(126), None);
    }

    #[test]
    fn display_names_the_code() {
        let code = BchCode::dec(64).unwrap();
        assert_eq!(code.to_string(), "DEC BCH (78, 64) over GF(2^7)");
        assert_eq!(code.description(), "DEC BCH (78, 64) over GF(2^7)");
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn encode_decode_round_trip(
                data_value in any::<u64>(),
                k in proptest::sample::select(vec![8usize, 16, 32, 64]),
            ) {
                let code = BchCode::dec(k).unwrap();
                let data = BitVec::from_u64(64, data_value).slice(0, k);
                let result = code.decode(&code.encode(&data));
                prop_assert_eq!(result.dataword, data);
                prop_assert_eq!(result.outcome, DecodeOutcome::NoErrorDetected);
            }

            #[test]
            fn encoding_is_linear(a in any::<u64>(), b in any::<u64>()) {
                let code = BchCode::dec(64).unwrap();
                let da = BitVec::from_u64(64, a);
                let db = BitVec::from_u64(64, b);
                let sum = &da ^ &db;
                prop_assert_eq!(code.encode(&sum), &code.encode(&da) ^ &code.encode(&db));
            }

            #[test]
            fn any_double_error_is_corrected_property(
                data_value in any::<u64>(),
                a in 0usize..78,
                b in 0usize..78,
            ) {
                prop_assume!(a != b);
                let code = BchCode::dec(64).unwrap();
                let data = BitVec::from_u64(64, data_value);
                let error = BitVec::from_indices(78, [a, b]);
                let result = code.encode_corrupt_decode(&data, &error);
                prop_assert_eq!(result.dataword, data);
                prop_assert_eq!(result.outcome.correction_count(), 2);
            }

            #[test]
            fn low_weight_errors_are_never_silent(
                positions in proptest::collection::btree_set(0usize..78, 1..5),
            ) {
                // Designed distance 5: any error of weight 1..=4 has a
                // nonzero syndrome and therefore cannot decode as "no error".
                let code = BchCode::dec(64).unwrap();
                let data = BitVec::ones(64);
                let error = BitVec::from_indices(78, positions.iter().copied());
                let result = code.encode_corrupt_decode(&data, &error);
                prop_assert_ne!(result.outcome, DecodeOutcome::NoErrorDetected);
            }

            #[test]
            fn indirect_errors_bounded_by_correction_capability(
                data_value in any::<u64>(),
                positions in proptest::collection::btree_set(0usize..78, 3..7),
            ) {
                let code = BchCode::dec(64).unwrap();
                let data = BitVec::from_u64(64, data_value);
                let error = BitVec::from_indices(78, positions.iter().copied());
                let result = code.encode_corrupt_decode(&data, &error);
                let post: std::collections::BTreeSet<usize> =
                    result.post_correction_errors(&data).into_iter().collect();
                let direct: std::collections::BTreeSet<usize> =
                    positions.iter().copied().filter(|&p| p < 64).collect();
                let indirect = post.difference(&direct).count();
                prop_assert!(indirect <= code.correction_capability());
            }
        }
    }

    #[test]
    fn errors_in_the_shortened_region_are_not_hallucinated() {
        // Corrupt a codeword so heavily that the single-error hypothesis
        // points into the shortened region; the decoder must not flip a
        // nonexistent bit. We synthesize this by brute force: find a triple
        // error whose decode is DetectedUncorrectable.
        let code = BchCode::dec(8).unwrap();
        let data = BitVec::ones(8);
        let mut saw_uncorrectable = false;
        let n = code.codeword_len();
        'outer: for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let error = BitVec::from_indices(n, [a, b, c]);
                    let result = code.encode_corrupt_decode(&data, &error);
                    if result.outcome == DecodeOutcome::DetectedUncorrectable {
                        saw_uncorrectable = true;
                        // Uncorrectable reads pass the stored data bits
                        // through: the dataword shows exactly the direct
                        // errors, nothing more.
                        let mut expected = data.clone();
                        for &p in &[a, b, c] {
                            if p < 8 {
                                expected.flip(p);
                            }
                        }
                        assert_eq!(result.dataword, expected);
                        break 'outer;
                    }
                }
            }
        }
        assert!(
            saw_uncorrectable,
            "expected at least one uncorrectable triple"
        );
    }
}
