//! Double-error-correcting (DEC) BCH codes for the HARP reproduction.
//!
//! The HARP paper evaluates single-error-correcting Hamming codes because
//! they are what LPDDR4/DDR5 on-die ECC uses today, and explicitly leaves
//! stronger block codes — "e.g., double-error correcting BCH" — to future
//! work (§2.5, footnote 9). This crate implements that extension as a third
//! (well, with SEC-DED, a *second external*) implementation of the shared
//! [`harp_ecc::LinearBlockCode`] trait, so the whole stack — the generic
//! memory chip in `harp_memsim`, every profiler in `harp_profiler`, the BEER
//! reverse-engineering campaign, and the Monte-Carlo experiments — runs on
//! BCH-protected words through exactly the same code paths as Hamming.
//!
//! The crate provides:
//!
//! * [`field::Gf2mField`] — arithmetic in the finite field GF(2^m) via
//!   log/antilog tables over a primitive polynomial;
//! * [`poly::BinaryPoly`] — polynomials over GF(2) used to construct the BCH
//!   generator polynomial (minimal polynomials, lcm, polynomial division);
//! * [`BchCode`] — systematic, shortened, double-error-correcting BCH codes
//!   sized for the paper's 64-bit and 128-bit datawords (a `(78, 64)` and a
//!   `(144, 128)` code). Encoding, kernel-accelerated syndrome computation,
//!   and bounded-distance decoding (Peterson's direct solution for `t = 2`)
//!   are exposed through [`harp_ecc::LinearBlockCode`], reporting results in
//!   the shared [`harp_ecc::DecodeOutcome`] vocabulary;
//! * [`analysis::combinatorics`] — the paper's Table 2 amplification
//!   analysis generalized to `t = 2`. (The error-space machinery itself is
//!   the *generic* [`harp_ecc::ErrorSpace`], which drives this crate's
//!   decoder directly.)
//!
//! # Quickstart
//!
//! ```
//! use harp_bch::BchCode;
//! use harp_ecc::LinearBlockCode;
//! use harp_gf2::BitVec;
//!
//! // A (78, 64) double-error-correcting BCH code.
//! let code = BchCode::dec(64)?;
//! let data = BitVec::ones(64);
//! let mut stored = code.encode(&data);
//!
//! // Any double error is corrected.
//! stored.flip(3);
//! stored.flip(70);
//! let decoded = code.decode(&stored);
//! assert_eq!(decoded.dataword, data);
//! assert!(decoded.outcome.is_correction());
//! # Ok::<(), harp_bch::BchError>(())
//! ```

pub mod analysis;
pub mod code;
pub mod field;
pub mod poly;

pub use code::{BchCode, BchError};
pub use field::Gf2mField;
pub use poly::BinaryPoly;
