//! Double-error-correcting (DEC) BCH codes for the HARP reproduction.
//!
//! The HARP paper evaluates single-error-correcting Hamming codes because
//! they are what LPDDR4/DDR5 on-die ECC uses today, and explicitly leaves
//! stronger block codes — "e.g., double-error correcting BCH" — to future
//! work (§2.5, footnote 9). This crate implements that extension so the
//! repository can answer the natural follow-up question: *how do the three
//! profiling challenges and HARP's secondary-ECC requirement change when
//! on-die ECC corrects two errors instead of one?*
//!
//! The crate provides:
//!
//! * [`field::Gf2mField`] — arithmetic in the finite field GF(2^m) via
//!   log/antilog tables over a primitive polynomial;
//! * [`poly::BinaryPoly`] — polynomials over GF(2) used to construct the BCH
//!   generator polynomial (minimal polynomials, lcm, polynomial division);
//! * [`BchCode`] — systematic, shortened, double-error-correcting BCH codes
//!   sized for the paper's 64-bit and 128-bit datawords (a `(78, 64)` and a
//!   `(144, 128)` code), with encoding, syndrome computation and
//!   bounded-distance decoding (Peterson's direct solution for `t = 2`);
//! * [`analysis`] — the same post-correction error-space analysis the
//!   Hamming crate performs for SEC codes, generalized to `t = 2`: direct
//!   and indirect at-risk bits, the combinatorial amplification table, and
//!   the maximum number of simultaneous indirect errors (which is bounded by
//!   the correction capability, exactly as the paper's insight 2 predicts).
//!
//! # Quickstart
//!
//! ```
//! use harp_bch::BchCode;
//! use harp_gf2::BitVec;
//!
//! // A (78, 64) double-error-correcting BCH code.
//! let code = BchCode::dec(64)?;
//! let data = BitVec::ones(64);
//! let mut stored = code.encode(&data);
//!
//! // Any double error is corrected.
//! stored.flip(3);
//! stored.flip(70);
//! let decoded = code.decode(&stored);
//! assert_eq!(decoded.dataword, data);
//! assert!(decoded.outcome.is_correction());
//! # Ok::<(), harp_bch::BchError>(())
//! ```

pub mod analysis;
pub mod chip;
pub mod code;
pub mod decoder;
pub mod field;
pub mod poly;

pub use analysis::BchErrorSpace;
pub use chip::{BchMemoryChip, BchReadObservation};
pub use code::{BchCode, BchError};
pub use decoder::{BchDecodeOutcome, BchDecodeResult};
pub use field::Gf2mField;
pub use poly::BinaryPoly;
