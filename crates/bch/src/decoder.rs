//! Decode-result types for the double-error-correcting BCH decoder.
//!
//! These mirror [`harp_ecc::DecodeOutcome`]/[`harp_ecc::DecodeResult`] for
//! the SEC Hamming code, extended with a double-correction outcome. As with
//! the Hamming decoder, a reported correction may in truth be a
//! *miscorrection* when the number of raw errors exceeds the correction
//! capability — that is exactly the mechanism behind the paper's indirect
//! errors, and with a `t = 2` code up to two indirect errors can appear
//! concurrently.

use serde::{Deserialize, Serialize};

use harp_gf2::BitVec;

/// What the BCH decoder believes happened during a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BchDecodeOutcome {
    /// Both syndromes were zero: no error, or an undetectable error pattern.
    NoErrorDetected,
    /// The syndromes were consistent with a single raw error, which the
    /// decoder flipped.
    CorrectedSingle {
        /// Codeword position the decoder flipped.
        position: usize,
    },
    /// The syndromes were consistent with a double raw error, and the decoder
    /// flipped both located positions.
    CorrectedDouble {
        /// The two codeword positions the decoder flipped (ascending).
        positions: [usize; 2],
    },
    /// The syndromes matched no correctable pattern (no root, a repeated
    /// root, or a root pointing into the shortened region); the decoder
    /// passed the stored data bits through unmodified.
    DetectedUncorrectable,
}

impl BchDecodeOutcome {
    /// The codeword positions the decoder flipped (empty unless a correction
    /// was performed).
    pub fn corrected_positions(&self) -> Vec<usize> {
        match self {
            BchDecodeOutcome::CorrectedSingle { position } => vec![*position],
            BchDecodeOutcome::CorrectedDouble { positions } => positions.to_vec(),
            _ => Vec::new(),
        }
    }

    /// Returns `true` if the decoder performed any correction operation.
    pub fn is_correction(&self) -> bool {
        matches!(
            self,
            BchDecodeOutcome::CorrectedSingle { .. } | BchDecodeOutcome::CorrectedDouble { .. }
        )
    }

    /// The number of bit positions the decoder flipped.
    pub fn correction_count(&self) -> usize {
        self.corrected_positions().len()
    }
}

/// The full result of decoding a stored BCH codeword.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BchDecodeResult {
    /// The post-correction dataword returned to the memory controller.
    pub dataword: BitVec,
    /// What the decoder believes happened.
    pub outcome: BchDecodeOutcome,
    /// The power-sum syndromes `(S₁, S₃)` as GF(2^m) elements, exposed for
    /// the "syndrome on correction" transparency option (§5.2).
    pub syndromes: (u32, u32),
}

impl BchDecodeResult {
    /// Positions (dataword bit indices) where the post-correction dataword
    /// differs from `written` — the post-correction errors the memory
    /// controller observes for this read.
    ///
    /// # Panics
    ///
    /// Panics if `written.len() != self.dataword.len()`.
    pub fn post_correction_errors(&self, written: &BitVec) -> Vec<usize> {
        assert_eq!(
            written.len(),
            self.dataword.len(),
            "dataword length mismatch"
        );
        (&self.dataword ^ written).iter_ones().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrected_positions_per_outcome() {
        assert!(BchDecodeOutcome::NoErrorDetected.corrected_positions().is_empty());
        assert_eq!(
            BchDecodeOutcome::CorrectedSingle { position: 9 }.corrected_positions(),
            vec![9]
        );
        assert_eq!(
            BchDecodeOutcome::CorrectedDouble { positions: [2, 70] }.corrected_positions(),
            vec![2, 70]
        );
        assert!(BchDecodeOutcome::DetectedUncorrectable.corrected_positions().is_empty());
    }

    #[test]
    fn correction_counts() {
        assert_eq!(BchDecodeOutcome::NoErrorDetected.correction_count(), 0);
        assert_eq!(BchDecodeOutcome::CorrectedSingle { position: 1 }.correction_count(), 1);
        assert_eq!(
            BchDecodeOutcome::CorrectedDouble { positions: [1, 2] }.correction_count(),
            2
        );
        assert!(!BchDecodeOutcome::DetectedUncorrectable.is_correction());
        assert!(BchDecodeOutcome::CorrectedSingle { position: 1 }.is_correction());
    }

    #[test]
    fn post_correction_errors_diffs_datawords() {
        let result = BchDecodeResult {
            dataword: BitVec::from_indices(8, [1, 4]),
            outcome: BchDecodeOutcome::NoErrorDetected,
            syndromes: (0, 0),
        };
        assert_eq!(result.post_correction_errors(&BitVec::from_indices(8, [4])), vec![1]);
        assert!(result
            .post_correction_errors(&BitVec::from_indices(8, [1, 4]))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn post_correction_errors_rejects_length_mismatch() {
        let result = BchDecodeResult {
            dataword: BitVec::zeros(8),
            outcome: BchDecodeOutcome::NoErrorDetected,
            syndromes: (0, 0),
        };
        result.post_correction_errors(&BitVec::zeros(9));
    }
}
