//! DEC-specific combinatorics for the BCH extension experiments.
//!
//! The error-space machinery that used to live here (a near-duplicate of
//! `harp_ecc::analysis` specialized to `t = 2`) is gone: `BchCode` implements
//! [`harp_ecc::LinearBlockCode`], so the generic
//! [`harp_ecc::ErrorSpace`], [`harp_ecc::analysis::charging_dataword`],
//! [`harp_ecc::analysis::is_chargeable`], and
//! [`harp_ecc::analysis::predict_indirect_from_direct`] apply to BCH words
//! directly — the enumeration drives the BCH decoder itself, so the `t = 2`
//! behaviour (up to two indirect errors per uncorrectable pattern) falls out
//! without any code-specific logic.
//!
//! What remains is the closed-form [`combinatorics`] module: the paper's
//! Table 2 generalized to a `t = 2` code, used by the `ext-bch` experiment
//! to contrast amplification under SEC vs. DEC on-die ECC.

/// Closed-form pattern counts for a `t`-error-correcting code protecting `n`
/// at-risk pre-correction bits (the Table 2 analysis generalized beyond
/// `t = 1`).
pub mod combinatorics {
    /// Number of distinct non-empty pre-correction error patterns over `n`
    /// at-risk bits: `2^n − 1`.
    pub fn unique_error_patterns(n: u32) -> u64 {
        (1u64 << n) - 1
    }

    /// Number of patterns a `t = 2` code corrects: all single and double
    /// errors, `n + n·(n−1)/2`.
    pub fn correctable_patterns_dec(n: u32) -> u64 {
        let n = n as u64;
        n + n * n.saturating_sub(1) / 2
    }

    /// Number of pre-correction error patterns a `t = 2` code cannot correct.
    pub fn uncorrectable_patterns_dec(n: u32) -> u64 {
        unique_error_patterns(n).saturating_sub(correctable_patterns_dec(n))
    }

    /// Worst-case number of dataword bits at risk of post-correction error:
    /// every at-risk data bit plus, for every uncorrectable pattern, up to
    /// `t = 2` distinct indirect errors. The loose upper bound used in the
    /// extension table is `min(k, n + 2·uncorrectable)`, reported here
    /// without the `k` clamp.
    pub fn worst_case_post_correction_at_risk_dec(n: u32) -> u64 {
        n as u64 + 2 * uncorrectable_patterns_dec(n)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn correctable_counts() {
            assert_eq!(correctable_patterns_dec(1), 1);
            assert_eq!(correctable_patterns_dec(2), 3);
            assert_eq!(correctable_patterns_dec(3), 6);
            assert_eq!(correctable_patterns_dec(4), 10);
            assert_eq!(correctable_patterns_dec(8), 36);
        }

        #[test]
        fn uncorrectable_counts() {
            // For n ≤ 2 every pattern is correctable by a DEC code.
            assert_eq!(uncorrectable_patterns_dec(1), 0);
            assert_eq!(uncorrectable_patterns_dec(2), 0);
            assert_eq!(uncorrectable_patterns_dec(3), 1);
            assert_eq!(uncorrectable_patterns_dec(4), 5);
            assert_eq!(uncorrectable_patterns_dec(8), 219);
        }

        #[test]
        fn dec_has_fewer_uncorrectable_patterns_than_sec() {
            for n in 1..=10u32 {
                let sec = harp_ecc::analysis::combinatorics::uncorrectable_patterns(n);
                assert!(uncorrectable_patterns_dec(n) <= sec, "n = {n}");
            }
        }

        #[test]
        fn worst_case_bound_grows_with_n() {
            assert_eq!(worst_case_post_correction_at_risk_dec(2), 2);
            assert!(worst_case_post_correction_at_risk_dec(5) > 5);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use harp_ecc::analysis::{charging_dataword, is_chargeable, FailureDependence};
    use harp_ecc::{ErrorSpace, LinearBlockCode};
    use harp_gf2::BitVec;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    use crate::BchCode;

    #[test]
    fn two_at_risk_bits_cause_no_indirect_errors_under_dec() {
        // The headline difference from SEC on-die ECC: a DEC code corrects
        // every combination of two at-risk bits, so the post-correction
        // error space is empty.
        let code = BchCode::dec(16).unwrap();
        let space = ErrorSpace::enumerate(&code, &[2, 9], FailureDependence::TrueCell);
        assert!(space.post_correction_at_risk().is_empty());
        assert_eq!(space.direct_at_risk().len(), 2);
        assert_eq!(space.max_simultaneous_errors_outside(&BTreeSet::new()), 0);
    }

    #[test]
    fn three_at_risk_bits_expose_at_most_two_indirect_errors_at_once() {
        let code = BchCode::dec(16).unwrap();
        let space = ErrorSpace::enumerate(&code, &[0, 5, 11], FailureDependence::TrueCell);
        // Once the direct bits are repaired, at most t = 2 simultaneous
        // errors remain possible.
        let repaired: BTreeSet<usize> = space.direct_at_risk().clone();
        assert!(space.max_simultaneous_errors_outside(&repaired) <= 2);
    }

    #[test]
    fn enumeration_agrees_with_monte_carlo_observation() {
        // Every post-correction error observed by random simulation must lie
        // inside the enumerated at-risk set.
        let code = BchCode::dec(16).unwrap();
        let at_risk = [1usize, 4, 7, 20];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let mut rng = StdRng::seed_from_u64(11);
        let data = BitVec::ones(16);
        for _ in 0..2000 {
            let mut error = BitVec::zeros(code.codeword_len());
            for &pos in &at_risk {
                if rng.gen_bool(0.5) {
                    error.set(pos, true);
                }
            }
            let result = code.encode_corrupt_decode(&data, &error);
            for pos in result.post_correction_errors(&data) {
                assert!(
                    space.post_correction_at_risk().contains(&pos),
                    "observed error at {pos} outside the enumerated space"
                );
            }
        }
    }

    #[test]
    fn chargeability_of_data_bits_is_unconstrained() {
        let code = BchCode::dec(32).unwrap();
        assert!(is_chargeable(
            &code,
            &[0, 1, 2, 3, 31],
            FailureDependence::TrueCell
        ));
        assert!(is_chargeable(&code, &[], FailureDependence::TrueCell));
        assert!(is_chargeable(
            &code,
            &[40, 41],
            FailureDependence::DataIndependent
        ));
    }

    #[test]
    fn charging_dataword_satisfies_parity_constraints() {
        let code = BchCode::dec(16).unwrap();
        let positions = [2usize, 17, 20]; // one data bit, two parity bits
        if let Some(data) = charging_dataword(&code, &positions, FailureDependence::TrueCell) {
            let codeword = code.encode(&data);
            for &pos in &positions {
                assert!(codeword.get(pos), "position {pos} not charged");
            }
        }
    }

    #[test]
    fn direct_at_risk_excludes_parity_positions() {
        let code = BchCode::dec(16).unwrap();
        let space = ErrorSpace::enumerate(&code, &[3, 17, 19], FailureDependence::TrueCell);
        assert_eq!(
            space.direct_at_risk().iter().copied().collect::<Vec<_>>(),
            vec![3]
        );
        assert_eq!(space.at_risk_pre_correction().len(), 3);
    }

    #[test]
    fn predictions_exclude_the_direct_bits_themselves() {
        use harp_ecc::analysis::predict_indirect_from_direct;
        let code = BchCode::dec(16).unwrap();
        let direct = [0usize, 3, 9];
        let predicted = predict_indirect_from_direct(&code, &direct, FailureDependence::TrueCell);
        for d in direct {
            assert!(!predicted.contains(&d));
        }
        assert!(predict_indirect_from_direct(&code, &[], FailureDependence::TrueCell).is_empty());
    }

    #[test]
    fn coverage_and_missed_bookkeeping() {
        let code = BchCode::dec(16).unwrap();
        let space = ErrorSpace::enumerate(&code, &[0, 1, 2, 3], FailureDependence::TrueCell);
        let all: BTreeSet<usize> = space.post_correction_at_risk().clone();
        assert_eq!(space.coverage_of(&all), 1.0);
        assert!(space.missed_post_correction(&all).is_empty());
        let empty = BTreeSet::new();
        if !all.is_empty() {
            assert!(space.coverage_of(&empty) < 1.0);
            assert_eq!(space.missed_post_correction(&empty), all);
        }
        assert!(space.missed_indirect(&all).is_empty());
        assert!(!space.outcomes().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_positions_are_rejected() {
        let code = BchCode::dec(16).unwrap();
        ErrorSpace::enumerate(&code, &[1000], FailureDependence::TrueCell);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn secondary_requirement_never_exceeds_t(
                positions in proptest::collection::btree_set(0usize..26, 2..7),
            ) {
                // The paper's insight 2, generalized: once every direct-error
                // bit is repaired, at most t = 2 simultaneous post-correction
                // errors remain possible, whatever the at-risk set is.
                let code = BchCode::dec(16).unwrap();
                let positions: Vec<usize> = positions.into_iter().collect();
                let space =
                    ErrorSpace::enumerate(&code, &positions, FailureDependence::TrueCell);
                let repaired = space.direct_at_risk().clone();
                prop_assert!(space.max_simultaneous_errors_outside(&repaired) <= 2);
            }

            #[test]
            fn observed_errors_always_lie_in_the_enumerated_space(
                positions in proptest::collection::btree_set(0usize..26, 2..6),
                flips in proptest::collection::vec(any::<bool>(), 6),
            ) {
                let code = BchCode::dec(16).unwrap();
                let positions: Vec<usize> = positions.into_iter().collect();
                let space =
                    ErrorSpace::enumerate(&code, &positions, FailureDependence::TrueCell);
                // Build one concrete raw error pattern from the at-risk set.
                let data = BitVec::ones(16);
                let mut error = BitVec::zeros(code.codeword_len());
                for (index, &pos) in positions.iter().enumerate() {
                    if flips.get(index).copied().unwrap_or(false) {
                        error.set(pos, true);
                    }
                }
                let result = code.encode_corrupt_decode(&data, &error);
                for pos in result.post_correction_errors(&data) {
                    prop_assert!(space.post_correction_at_risk().contains(&pos));
                }
            }

            #[test]
            fn charging_datawords_charge_what_they_promise(
                positions in proptest::collection::btree_set(0usize..26, 1..5),
            ) {
                let code = BchCode::dec(16).unwrap();
                let positions: Vec<usize> = positions.into_iter().collect();
                if let Some(data) =
                    charging_dataword(&code, &positions, FailureDependence::TrueCell)
                {
                    let codeword = code.encode(&data);
                    for &pos in &positions {
                        prop_assert!(codeword.get(pos), "position {} not charged", pos);
                    }
                }
            }
        }
    }
}
