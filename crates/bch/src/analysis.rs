//! Post-correction error-space analysis for double-error-correcting BCH
//! on-die ECC.
//!
//! This mirrors [`harp_ecc::analysis`] for SEC Hamming codes, generalized to
//! `t = 2`. The purpose is to answer the paper's future-work question: with a
//! stronger on-die ECC,
//!
//! * how does the combinatorial amplification of at-risk bits change
//!   ([`combinatorics`])? — fewer pre-correction error patterns are
//!   uncorrectable, but each uncorrectable pattern can now introduce up to
//!   *two* indirect errors;
//! * what correction capability does HARP's secondary ECC need
//!   ([`BchErrorSpace::max_simultaneous_errors_outside`])? — exactly `t = 2`
//!   once all direct-error bits are identified, confirming that the paper's
//!   insight 2 generalizes.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use harp_ecc::analysis::FailureDependence;
use harp_gf2::{solve, BitVec, Gf2Matrix};

use crate::code::BchCode;

/// Closed-form pattern counts for a `t`-error-correcting code protecting `n`
/// at-risk pre-correction bits (the Table 2 analysis generalized beyond
/// `t = 1`).
pub mod combinatorics {
    /// Number of distinct non-empty pre-correction error patterns over `n`
    /// at-risk bits: `2^n − 1`.
    pub fn unique_error_patterns(n: u32) -> u64 {
        (1u64 << n) - 1
    }

    /// Number of patterns a `t = 2` code corrects: all single and double
    /// errors, `n + n·(n−1)/2`.
    pub fn correctable_patterns_dec(n: u32) -> u64 {
        let n = n as u64;
        n + n * n.saturating_sub(1) / 2
    }

    /// Number of pre-correction error patterns a `t = 2` code cannot correct.
    pub fn uncorrectable_patterns_dec(n: u32) -> u64 {
        unique_error_patterns(n).saturating_sub(correctable_patterns_dec(n))
    }

    /// Worst-case number of dataword bits at risk of post-correction error:
    /// every at-risk data bit plus, for every uncorrectable pattern, up to
    /// `t = 2` distinct indirect errors. The loose upper bound used in the
    /// extension table is `min(k, n + 2·uncorrectable)`, reported here
    /// without the `k` clamp.
    pub fn worst_case_post_correction_at_risk_dec(n: u32) -> u64 {
        n as u64 + 2 * uncorrectable_patterns_dec(n)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn correctable_counts() {
            assert_eq!(correctable_patterns_dec(1), 1);
            assert_eq!(correctable_patterns_dec(2), 3);
            assert_eq!(correctable_patterns_dec(3), 6);
            assert_eq!(correctable_patterns_dec(4), 10);
            assert_eq!(correctable_patterns_dec(8), 36);
        }

        #[test]
        fn uncorrectable_counts() {
            // For n ≤ 2 every pattern is correctable by a DEC code.
            assert_eq!(uncorrectable_patterns_dec(1), 0);
            assert_eq!(uncorrectable_patterns_dec(2), 0);
            assert_eq!(uncorrectable_patterns_dec(3), 1);
            assert_eq!(uncorrectable_patterns_dec(4), 5);
            assert_eq!(uncorrectable_patterns_dec(8), 219);
        }

        #[test]
        fn dec_has_fewer_uncorrectable_patterns_than_sec() {
            for n in 1..=10u32 {
                let sec = harp_ecc::analysis::combinatorics::uncorrectable_patterns(n);
                assert!(uncorrectable_patterns_dec(n) <= sec, "n = {n}");
            }
        }

        #[test]
        fn worst_case_bound_grows_with_n() {
            assert_eq!(worst_case_post_correction_at_risk_dec(2), 2);
            assert!(worst_case_post_correction_at_risk_dec(5) > 5);
        }
    }
}

/// Returns a dataword under which every codeword position in `positions`
/// stores the value required by `dependence`, or `None` if no such dataword
/// exists (same linear-feasibility computation as the Hamming analysis, with
/// the BCH parity matrix supplying the parity-bit constraints).
///
/// # Panics
///
/// Panics if any position is out of range.
pub fn charging_dataword(
    code: &BchCode,
    positions: &[usize],
    dependence: FailureDependence,
) -> Option<BitVec> {
    let k = code.data_len();
    if positions.is_empty() {
        return Some(BitVec::zeros(k));
    }
    for &pos in positions {
        assert!(
            pos < code.codeword_len(),
            "position {pos} out of range {}",
            code.codeword_len()
        );
    }
    let Some(required) = dependence.required_value() else {
        return Some(BitVec::zeros(k));
    };
    let parity_matrix = code.parity_matrix();
    let mut rows = Vec::with_capacity(positions.len());
    let mut rhs = BitVec::zeros(positions.len());
    for (idx, &pos) in positions.iter().enumerate() {
        let row = if pos < k {
            BitVec::from_indices(k, [pos])
        } else {
            parity_matrix.row(pos - k).clone()
        };
        rows.push(row);
        rhs.set(idx, required);
    }
    let a = Gf2Matrix::from_rows(&rows);
    match solve::solve(&a, &rhs) {
        solve::LinearSolution::Solvable { particular, .. } => Some(particular),
        solve::LinearSolution::Infeasible => None,
    }
}

/// Returns `true` if every position in `positions` can simultaneously store
/// the value its failure mode requires.
pub fn is_chargeable(
    code: &BchCode,
    positions: &[usize],
    dependence: FailureDependence,
) -> bool {
    positions.is_empty() || charging_dataword(code, positions, dependence).is_some()
}

/// The outcome of a single achievable pre-correction error pattern under a
/// DEC BCH on-die ECC.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BchPatternOutcome {
    /// The pre-correction error positions (codeword indices) that fail
    /// together in this pattern.
    pub raw_positions: Vec<usize>,
    /// The post-correction error positions (dataword indices) the memory
    /// controller observes when exactly this pattern occurs.
    pub post_correction_errors: Vec<usize>,
    /// The miscorrection positions introduced by the decoder (codeword
    /// indices, at most two).
    pub miscorrections: Vec<usize>,
}

/// The exact post-correction error space of a set of at-risk pre-correction
/// bits under a DEC BCH code.
///
/// # Example
///
/// ```
/// use harp_bch::{BchCode, BchErrorSpace};
/// use harp_ecc::analysis::FailureDependence;
///
/// let code = BchCode::dec(16)?;
/// // With only two at-risk bits, a DEC code corrects every combination:
/// // no indirect errors are possible at all.
/// let space = BchErrorSpace::enumerate(&code, &[0, 1], FailureDependence::TrueCell);
/// assert!(space.indirect_at_risk().is_empty());
/// assert_eq!(space.max_simultaneous_errors_outside(&Default::default()), 0);
/// # Ok::<(), harp_bch::BchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BchErrorSpace {
    at_risk_pre_correction: BTreeSet<usize>,
    direct_at_risk: BTreeSet<usize>,
    indirect_at_risk: BTreeSet<usize>,
    post_correction_at_risk: BTreeSet<usize>,
    outcomes: Vec<BchPatternOutcome>,
}

impl BchErrorSpace {
    /// Maximum number of at-risk pre-correction bits supported by exhaustive
    /// enumeration.
    pub const MAX_AT_RISK_BITS: usize = 20;

    /// Enumerates the full post-correction error space for the given at-risk
    /// pre-correction positions (codeword indices).
    ///
    /// # Panics
    ///
    /// Panics if more than [`Self::MAX_AT_RISK_BITS`] positions are given or
    /// if any position is out of range.
    pub fn enumerate(
        code: &BchCode,
        at_risk_positions: &[usize],
        dependence: FailureDependence,
    ) -> Self {
        let unique: BTreeSet<usize> = at_risk_positions.iter().copied().collect();
        assert!(
            unique.len() <= Self::MAX_AT_RISK_BITS,
            "at most {} at-risk bits supported, got {}",
            Self::MAX_AT_RISK_BITS,
            unique.len()
        );
        for &pos in &unique {
            assert!(
                pos < code.codeword_len(),
                "at-risk position {pos} out of range {}",
                code.codeword_len()
            );
        }
        let positions: Vec<usize> = unique.iter().copied().collect();
        let n = positions.len();
        let k = code.data_len();

        let mut outcomes = Vec::new();
        let mut post_at_risk = BTreeSet::new();

        for mask in 1u64..(1u64 << n) {
            let subset: Vec<usize> = (0..n)
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| positions[i])
                .collect();
            if charging_dataword(code, &subset, dependence).is_none() {
                continue;
            }

            // Decoding is data-independent for a linear code, so decode the
            // error pattern against the all-zero codeword.
            let error = BitVec::from_indices(code.codeword_len(), subset.iter().copied());
            let result = code.decode(&error);
            let flipped: BTreeSet<usize> =
                result.outcome.corrected_positions().into_iter().collect();

            let subset_set: BTreeSet<usize> = subset.iter().copied().collect();
            let mut post = BTreeSet::new();
            for p in 0..k {
                if subset_set.contains(&p) != flipped.contains(&p) {
                    post.insert(p);
                }
            }
            let miscorrections: Vec<usize> =
                flipped.difference(&subset_set).copied().collect();

            post_at_risk.extend(post.iter().copied());
            outcomes.push(BchPatternOutcome {
                raw_positions: subset,
                post_correction_errors: post.into_iter().collect(),
                miscorrections,
            });
        }

        let direct_at_risk: BTreeSet<usize> = unique
            .iter()
            .copied()
            .filter(|&p| p < k)
            .filter(|&p| is_chargeable(code, &[p], dependence))
            .collect();
        let indirect_at_risk: BTreeSet<usize> = post_at_risk
            .iter()
            .copied()
            .filter(|p| !direct_at_risk.contains(p))
            .collect();

        Self {
            at_risk_pre_correction: unique,
            direct_at_risk,
            indirect_at_risk,
            post_correction_at_risk: post_at_risk,
            outcomes,
        }
    }

    /// The at-risk pre-correction positions (codeword indices) this space was
    /// built from.
    pub fn at_risk_pre_correction(&self) -> &BTreeSet<usize> {
        &self.at_risk_pre_correction
    }

    /// Dataword positions at risk of *direct* error.
    pub fn direct_at_risk(&self) -> &BTreeSet<usize> {
        &self.direct_at_risk
    }

    /// Dataword positions at risk of *indirect* error only (miscorrections).
    pub fn indirect_at_risk(&self) -> &BTreeSet<usize> {
        &self.indirect_at_risk
    }

    /// All dataword positions at risk of post-correction error.
    pub fn post_correction_at_risk(&self) -> &BTreeSet<usize> {
        &self.post_correction_at_risk
    }

    /// Every achievable pre-correction error pattern and its consequences.
    pub fn outcomes(&self) -> &[BchPatternOutcome] {
        &self.outcomes
    }

    /// Dataword positions at risk of post-correction error not in `covered`.
    pub fn missed_post_correction(&self, covered: &BTreeSet<usize>) -> BTreeSet<usize> {
        self.post_correction_at_risk
            .difference(covered)
            .copied()
            .collect()
    }

    /// Dataword positions at risk of indirect error not in `covered`.
    pub fn missed_indirect(&self, covered: &BTreeSet<usize>) -> BTreeSet<usize> {
        self.indirect_at_risk.difference(covered).copied().collect()
    }

    /// The worst-case number of post-correction errors that can occur
    /// simultaneously outside `repaired` — the correction capability a
    /// secondary ECC needs to safely perform reactive profiling.
    pub fn max_simultaneous_errors_outside(&self, repaired: &BTreeSet<usize>) -> usize {
        self.outcomes
            .iter()
            .map(|o| {
                o.post_correction_errors
                    .iter()
                    .filter(|p| !repaired.contains(p))
                    .count()
            })
            .max()
            .unwrap_or(0)
    }

    /// Fraction of all at-risk post-correction bits contained in `covered`.
    /// Returns 1.0 when there are no at-risk bits.
    pub fn coverage_of(&self, covered: &BTreeSet<usize>) -> f64 {
        if self.post_correction_at_risk.is_empty() {
            return 1.0;
        }
        let hit = self
            .post_correction_at_risk
            .iter()
            .filter(|p| covered.contains(p))
            .count();
        hit as f64 / self.post_correction_at_risk.len() as f64
    }
}

/// HARP-A's precomputation generalized to DEC on-die ECC: given the
/// direct-error at-risk dataword positions identified during active
/// profiling, predict the dataword positions at risk of indirect error.
///
/// As with the SEC variant, miscorrections provoked by at-risk *parity* bits
/// cannot be predicted because the bypass read path does not expose them.
pub fn predict_indirect_from_direct(
    code: &BchCode,
    direct_positions: &[usize],
    dependence: FailureDependence,
) -> BTreeSet<usize> {
    if direct_positions.is_empty() {
        return BTreeSet::new();
    }
    let space = BchErrorSpace::enumerate(code, direct_positions, dependence);
    space
        .post_correction_at_risk()
        .iter()
        .copied()
        .filter(|p| !direct_positions.contains(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn two_at_risk_bits_cause_no_indirect_errors_under_dec() {
        // The headline difference from SEC on-die ECC: a DEC code corrects
        // every combination of two at-risk bits, so the post-correction
        // error space is empty.
        let code = BchCode::dec(16).unwrap();
        let space = BchErrorSpace::enumerate(&code, &[2, 9], FailureDependence::TrueCell);
        assert!(space.post_correction_at_risk().is_empty());
        assert_eq!(space.direct_at_risk().len(), 2);
        assert_eq!(space.max_simultaneous_errors_outside(&BTreeSet::new()), 0);
    }

    #[test]
    fn three_at_risk_bits_expose_at_most_two_indirect_errors_at_once() {
        let code = BchCode::dec(16).unwrap();
        let space =
            BchErrorSpace::enumerate(&code, &[0, 5, 11], FailureDependence::TrueCell);
        // Once the direct bits are repaired, at most t = 2 simultaneous
        // errors remain possible.
        let repaired: BTreeSet<usize> = space.direct_at_risk().clone();
        assert!(space.max_simultaneous_errors_outside(&repaired) <= 2);
    }

    #[test]
    fn enumeration_agrees_with_monte_carlo_observation() {
        // Every post-correction error observed by random simulation must lie
        // inside the enumerated at-risk set.
        let code = BchCode::dec(16).unwrap();
        let at_risk = [1usize, 4, 7, 20];
        let space = BchErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let mut rng = StdRng::seed_from_u64(11);
        let data = BitVec::ones(16);
        for _ in 0..2000 {
            let mut error = BitVec::zeros(code.codeword_len());
            for &pos in &at_risk {
                if rng.gen_bool(0.5) {
                    error.set(pos, true);
                }
            }
            let result = code.encode_corrupt_decode(&data, &error);
            for pos in result.post_correction_errors(&data) {
                assert!(
                    space.post_correction_at_risk().contains(&pos),
                    "observed error at {pos} outside the enumerated space"
                );
            }
        }
    }

    #[test]
    fn chargeability_of_data_bits_is_unconstrained() {
        let code = BchCode::dec(32).unwrap();
        assert!(is_chargeable(&code, &[0, 1, 2, 3, 31], FailureDependence::TrueCell));
        assert!(is_chargeable(&code, &[], FailureDependence::TrueCell));
        assert!(is_chargeable(&code, &[40, 41], FailureDependence::DataIndependent));
    }

    #[test]
    fn charging_dataword_satisfies_parity_constraints() {
        let code = BchCode::dec(16).unwrap();
        let positions = [2usize, 17, 20]; // one data bit, two parity bits
        if let Some(data) = charging_dataword(&code, &positions, FailureDependence::TrueCell) {
            let codeword = code.encode(&data);
            for &pos in &positions {
                assert!(codeword.get(pos), "position {pos} not charged");
            }
        }
    }

    #[test]
    fn direct_at_risk_excludes_parity_positions() {
        let code = BchCode::dec(16).unwrap();
        let space =
            BchErrorSpace::enumerate(&code, &[3, 17, 19], FailureDependence::TrueCell);
        assert_eq!(space.direct_at_risk().iter().copied().collect::<Vec<_>>(), vec![3]);
        assert_eq!(space.at_risk_pre_correction().len(), 3);
    }

    #[test]
    fn predictions_exclude_the_direct_bits_themselves() {
        let code = BchCode::dec(16).unwrap();
        let direct = [0usize, 3, 9];
        let predicted = predict_indirect_from_direct(&code, &direct, FailureDependence::TrueCell);
        for d in direct {
            assert!(!predicted.contains(&d));
        }
        assert!(predict_indirect_from_direct(&code, &[], FailureDependence::TrueCell).is_empty());
    }

    #[test]
    fn coverage_and_missed_bookkeeping() {
        let code = BchCode::dec(16).unwrap();
        let space =
            BchErrorSpace::enumerate(&code, &[0, 1, 2, 3], FailureDependence::TrueCell);
        let all: BTreeSet<usize> = space.post_correction_at_risk().clone();
        assert_eq!(space.coverage_of(&all), 1.0);
        assert!(space.missed_post_correction(&all).is_empty());
        let empty = BTreeSet::new();
        if !all.is_empty() {
            assert!(space.coverage_of(&empty) < 1.0);
            assert_eq!(space.missed_post_correction(&empty), all);
        }
        assert!(space.missed_indirect(&all).is_empty());
        assert!(!space.outcomes().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_positions_are_rejected() {
        let code = BchCode::dec(16).unwrap();
        BchErrorSpace::enumerate(&code, &[1000], FailureDependence::TrueCell);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn secondary_requirement_never_exceeds_t(
                positions in proptest::collection::btree_set(0usize..26, 2..7),
            ) {
                // The paper's insight 2, generalized: once every direct-error
                // bit is repaired, at most t = 2 simultaneous post-correction
                // errors remain possible, whatever the at-risk set is.
                let code = BchCode::dec(16).unwrap();
                let positions: Vec<usize> = positions.into_iter().collect();
                let space =
                    BchErrorSpace::enumerate(&code, &positions, FailureDependence::TrueCell);
                let repaired = space.direct_at_risk().clone();
                prop_assert!(space.max_simultaneous_errors_outside(&repaired) <= 2);
            }

            #[test]
            fn observed_errors_always_lie_in_the_enumerated_space(
                positions in proptest::collection::btree_set(0usize..26, 2..6),
                flips in proptest::collection::vec(any::<bool>(), 6),
            ) {
                let code = BchCode::dec(16).unwrap();
                let positions: Vec<usize> = positions.into_iter().collect();
                let space =
                    BchErrorSpace::enumerate(&code, &positions, FailureDependence::TrueCell);
                // Build one concrete raw error pattern from the at-risk set.
                let data = BitVec::ones(16);
                let mut error = BitVec::zeros(code.codeword_len());
                for (index, &pos) in positions.iter().enumerate() {
                    if flips.get(index).copied().unwrap_or(false) {
                        error.set(pos, true);
                    }
                }
                let result = code.encode_corrupt_decode(&data, &error);
                for pos in result.post_correction_errors(&data) {
                    prop_assert!(space.post_correction_at_risk().contains(&pos));
                }
            }

            #[test]
            fn charging_datawords_charge_what_they_promise(
                positions in proptest::collection::btree_set(0usize..26, 1..5),
            ) {
                let code = BchCode::dec(16).unwrap();
                let positions: Vec<usize> = positions.into_iter().collect();
                if let Some(data) =
                    charging_dataword(&code, &positions, FailureDependence::TrueCell)
                {
                    let codeword = code.encode(&data);
                    for &pos in &positions {
                        prop_assert!(codeword.get(pos), "position {} not charged", pos);
                    }
                }
            }
        }
    }
}
