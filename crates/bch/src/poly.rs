//! Polynomials over GF(2), used to construct BCH generator polynomials.
//!
//! A BCH code's generator polynomial is the least common multiple of the
//! minimal polynomials of consecutive powers of the primitive element `α`.
//! For the double-error-correcting codes used in this crate that means
//! `g(x) = lcm(m₁(x), m₃(x))`, each factor having degree at most `m`, so the
//! polynomials involved stay small; nevertheless [`BinaryPoly`] supports
//! arbitrary degrees so the `x^n + 1` divisibility sanity checks work for the
//! full-length (unshortened) codes as well.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::field::Gf2mField;

/// A polynomial over GF(2), stored as packed coefficient bits (bit `i` of
/// word `i / 64` is the coefficient of `x^(64·(i/64) + i % 64)`).
///
/// The zero polynomial is represented by an empty coefficient vector and has
/// degree `None`.
///
/// # Example
///
/// ```
/// use harp_bch::BinaryPoly;
///
/// // (x + 1)·(x^2 + x + 1) = x^3 + 1
/// let a = BinaryPoly::from_coefficients(&[0, 1]);
/// let b = BinaryPoly::from_coefficients(&[0, 1, 2]);
/// assert_eq!(a.mul(&b), BinaryPoly::from_coefficients(&[0, 3]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BinaryPoly {
    words: Vec<u64>,
}

impl BinaryPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { words: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Self::monomial(0)
    }

    /// The monomial `x^degree`.
    pub fn monomial(degree: usize) -> Self {
        let mut poly = Self::zero();
        poly.set_coefficient(degree, true);
        poly
    }

    /// Builds a polynomial from the exponents whose coefficients are `1`.
    pub fn from_coefficients(exponents: &[usize]) -> Self {
        let mut poly = Self::zero();
        for &e in exponents {
            poly.set_coefficient(e, !poly.coefficient(e));
        }
        poly
    }

    /// Builds a polynomial from an integer whose bit `i` is the coefficient
    /// of `x^i` (convenient for primitive polynomials).
    pub fn from_integer(bits: u64) -> Self {
        let mut poly = Self::zero();
        for i in 0..64 {
            if bits & (1 << i) != 0 {
                poly.set_coefficient(i, true);
            }
        }
        poly
    }

    /// The coefficient of `x^exponent`.
    pub fn coefficient(&self, exponent: usize) -> bool {
        self.words
            .get(exponent / 64)
            .map(|w| w & (1 << (exponent % 64)) != 0)
            .unwrap_or(false)
    }

    /// Sets the coefficient of `x^exponent`.
    pub fn set_coefficient(&mut self, exponent: usize, value: bool) {
        let word = exponent / 64;
        if word >= self.words.len() {
            if !value {
                return;
            }
            self.words.resize(word + 1, 0);
        }
        if value {
            self.words[word] |= 1 << (exponent % 64);
        } else {
            self.words[word] &= !(1 << (exponent % 64));
        }
        self.trim();
    }

    fn trim(&mut self) {
        while self.words.last() == Some(&0) {
            self.words.pop();
        }
    }

    /// Returns `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.words.is_empty()
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        let last = self.words.last()?;
        Some((self.words.len() - 1) * 64 + (63 - last.leading_zeros() as usize))
    }

    /// Polynomial addition (coefficient-wise XOR).
    pub fn add(&self, other: &Self) -> Self {
        let mut words = vec![0u64; self.words.len().max(other.words.len())];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words.get(i).copied().unwrap_or(0) ^ other.words.get(i).copied().unwrap_or(0);
        }
        let mut result = Self { words };
        result.trim();
        result
    }

    /// Carry-less polynomial multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut result = Self::zero();
        for exp in self.exponents() {
            result = result.add(&other.shifted(exp));
        }
        result
    }

    /// Returns `self · x^shift`.
    pub fn shifted(&self, shift: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let mut result = Self::zero();
        for exp in self.exponents() {
            result.set_coefficient(exp + shift, true);
        }
        result
    }

    /// Polynomial division: returns `(quotient, remainder)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is the zero polynomial.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        let divisor_degree = divisor.degree().expect("division by the zero polynomial");
        let mut remainder = self.clone();
        let mut quotient = Self::zero();
        while let Some(remainder_degree) = remainder.degree() {
            if remainder_degree < divisor_degree {
                break;
            }
            let shift = remainder_degree - divisor_degree;
            quotient.set_coefficient(shift, true);
            remainder = remainder.add(&divisor.shifted(shift));
        }
        (quotient, remainder)
    }

    /// Polynomial remainder `self mod divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is the zero polynomial.
    pub fn rem(&self, divisor: &Self) -> Self {
        self.div_rem(divisor).1
    }

    /// Returns `true` if `self` divides `other` exactly.
    pub fn divides(&self, other: &Self) -> bool {
        other.rem(self).is_zero()
    }

    /// Greatest common divisor (monic by construction over GF(2)).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Least common multiple.
    ///
    /// # Panics
    ///
    /// Panics if either polynomial is zero.
    pub fn lcm(&self, other: &Self) -> Self {
        assert!(
            !self.is_zero() && !other.is_zero(),
            "lcm of the zero polynomial"
        );
        let gcd = self.gcd(other);
        self.mul(other).div_rem(&gcd).0
    }

    /// Iterates over the exponents whose coefficients are `1`, ascending.
    pub fn exponents(&self) -> Vec<usize> {
        let mut result = Vec::new();
        for (word_index, word) in self.words.iter().enumerate() {
            let mut bits = *word;
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                result.push(word_index * 64 + bit);
                bits &= bits - 1;
            }
        }
        result
    }

    /// Evaluates the polynomial at a GF(2^m) element (the coefficients are
    /// 0/1, so evaluation is a sum of powers of the point).
    pub fn eval_in_field(&self, field: &Gf2mField, point: u32) -> u32 {
        let mut acc = 0;
        for exp in self.exponents() {
            acc ^= field.pow(point, exp as u32);
        }
        acc
    }

    /// The minimal polynomial over GF(2) of the field element `element`.
    ///
    /// Computed as `∏ (x − β)` over the conjugacy class `β ∈ {element^(2^i)}`,
    /// using arithmetic in GF(2^m) and verifying that the product's
    /// coefficients all collapse to GF(2).
    ///
    /// # Panics
    ///
    /// Panics if `element` is zero.
    pub fn minimal_polynomial(field: &Gf2mField, element: u32) -> Self {
        assert!(element != 0, "zero has no minimal polynomial over GF(2)");
        // Conjugacy class of the element under the Frobenius map.
        let mut conjugates = Vec::new();
        let mut current = element;
        loop {
            conjugates.push(current);
            current = field.mul(current, current);
            if current == element {
                break;
            }
        }
        // Product of (x + β) with coefficients in GF(2^m).
        let mut coeffs: Vec<u32> = vec![1]; // constant polynomial 1
        for &beta in &conjugates {
            let mut next = vec![0u32; coeffs.len() + 1];
            for (i, &c) in coeffs.iter().enumerate() {
                // multiply by x
                next[i + 1] ^= c;
                // multiply by β
                next[i] ^= field.mul(c, beta);
            }
            coeffs = next;
        }
        let mut poly = Self::zero();
        for (i, &c) in coeffs.iter().enumerate() {
            assert!(c <= 1, "minimal polynomial coefficient escaped GF(2)");
            if c == 1 {
                poly.set_coefficient(i, true);
            }
        }
        poly
    }
}

impl fmt::Debug for BinaryPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BinaryPoly({self})")
    }
}

impl fmt::Display for BinaryPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let terms: Vec<String> = self
            .exponents()
            .into_iter()
            .rev()
            .map(|e| match e {
                0 => "1".to_owned(),
                1 => "x".to_owned(),
                _ => format!("x^{e}"),
            })
            .collect();
        f.write_str(&terms.join(" + "))
    }
}

impl Default for BinaryPoly {
    fn default() -> Self {
        Self::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_and_zero_handling() {
        assert_eq!(BinaryPoly::zero().degree(), None);
        assert!(BinaryPoly::zero().is_zero());
        assert_eq!(BinaryPoly::one().degree(), Some(0));
        assert_eq!(BinaryPoly::monomial(100).degree(), Some(100));
    }

    #[test]
    fn addition_is_xor_of_coefficients() {
        let a = BinaryPoly::from_coefficients(&[0, 2, 5]);
        let b = BinaryPoly::from_coefficients(&[2, 3]);
        assert_eq!(a.add(&b), BinaryPoly::from_coefficients(&[0, 3, 5]));
        // Adding a polynomial to itself gives zero.
        assert!(a.add(&a).is_zero());
    }

    #[test]
    fn multiplication_small_cases() {
        let x_plus_1 = BinaryPoly::from_coefficients(&[0, 1]);
        let x2_x_1 = BinaryPoly::from_coefficients(&[0, 1, 2]);
        assert_eq!(
            x_plus_1.mul(&x2_x_1),
            BinaryPoly::from_coefficients(&[0, 3])
        );
        assert!(x_plus_1.mul(&BinaryPoly::zero()).is_zero());
        assert_eq!(x_plus_1.mul(&BinaryPoly::one()), x_plus_1);
    }

    #[test]
    fn division_round_trips() {
        let dividend = BinaryPoly::from_coefficients(&[0, 1, 4, 7, 9]);
        let divisor = BinaryPoly::from_coefficients(&[0, 2, 3]);
        let (q, r) = dividend.div_rem(&divisor);
        let recomposed = q.mul(&divisor).add(&r);
        assert_eq!(recomposed, dividend);
        assert!(r.degree().unwrap_or(0) < divisor.degree().unwrap());
    }

    #[test]
    fn gcd_and_lcm() {
        let a = BinaryPoly::from_coefficients(&[0, 1]); // x + 1
        let b = BinaryPoly::from_coefficients(&[0, 1, 2]); // x^2 + x + 1
                                                           // Coprime polynomials: gcd = 1, lcm = product.
        assert_eq!(a.gcd(&b), BinaryPoly::one());
        assert_eq!(a.lcm(&b), a.mul(&b));
        // gcd(a·b, a) = a.
        assert_eq!(a.mul(&b).gcd(&a), a);
    }

    #[test]
    fn minimal_polynomial_of_alpha_is_the_primitive_polynomial() {
        for m in [3u32, 4, 7, 8] {
            let field = Gf2mField::new(m);
            let minimal = BinaryPoly::minimal_polynomial(&field, field.alpha_pow(1));
            assert_eq!(
                minimal,
                BinaryPoly::from_integer(field.polynomial() as u64),
                "m = {m}"
            );
        }
    }

    #[test]
    fn minimal_polynomial_has_the_element_as_root() {
        let field = Gf2mField::new(7);
        for exponent in [1u32, 3, 5, 9] {
            let element = field.alpha_pow(exponent);
            let minimal = BinaryPoly::minimal_polynomial(&field, element);
            assert_eq!(minimal.eval_in_field(&field, element), 0, "α^{exponent}");
            // Degree divides m.
            assert_eq!(7 % minimal.degree().unwrap(), 0);
        }
    }

    #[test]
    fn minimal_polynomials_divide_x_order_plus_1() {
        let field = Gf2mField::new(6);
        let x_n_plus_1 = BinaryPoly::monomial(field.order() as usize).add(&BinaryPoly::one());
        for exponent in [1u32, 3, 7, 11] {
            let minimal = BinaryPoly::minimal_polynomial(&field, field.alpha_pow(exponent));
            assert!(minimal.divides(&x_n_plus_1), "α^{exponent}");
        }
    }

    #[test]
    fn eval_in_field_matches_direct_sum() {
        let field = Gf2mField::new(5);
        let poly = BinaryPoly::from_coefficients(&[0, 2, 3, 7]);
        let point = field.alpha_pow(11);
        let expected = 1 ^ field.pow(point, 2) ^ field.pow(point, 3) ^ field.pow(point, 7);
        assert_eq!(poly.eval_in_field(&field, point), expected);
    }

    #[test]
    fn display_formats_terms_in_descending_order() {
        let poly = BinaryPoly::from_coefficients(&[0, 1, 5]);
        assert_eq!(poly.to_string(), "x^5 + x + 1");
        assert_eq!(BinaryPoly::zero().to_string(), "0");
    }

    #[test]
    fn exponents_cross_word_boundaries() {
        let poly = BinaryPoly::from_coefficients(&[0, 63, 64, 130]);
        assert_eq!(poly.exponents(), vec![0, 63, 64, 130]);
        assert_eq!(poly.degree(), Some(130));
    }

    #[test]
    #[should_panic(expected = "zero polynomial")]
    fn division_by_zero_panics() {
        BinaryPoly::one().div_rem(&BinaryPoly::zero());
    }
}
