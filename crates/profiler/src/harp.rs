//! The HARP profilers (the paper's contribution, §6).
//!
//! HARP's key idea is to split post-correction errors into *direct* errors
//! (raw errors in the systematically encoded data bits) and *indirect* errors
//! (miscorrections), and to identify the two classes separately:
//!
//! * the **active phase** uses the on-die-ECC decode-bypass read path to see
//!   raw data-bit values, so identifying direct-error at-risk bits is exactly
//!   as easy as profiling a chip without on-die ECC;
//! * the **reactive phase** (see [`crate::reactive`]) safely identifies
//!   indirect errors at runtime, because once all direct bits are repaired at
//!   most one indirect error can occur at a time.
//!
//! [`HarpUProfiler`] implements the unaware variant; [`HarpAProfiler`] also
//! knows the parity-check matrix and precomputes indirect-error at-risk bits
//! from the direct bits found so far; [`HarpABeepProfiler`] additionally
//! crafts BEEP-style data patterns to actively expose the indirect errors
//! that HARP-A cannot predict (those provoked by at-risk parity bits).

use std::collections::BTreeSet;

use harp_ecc::analysis::{predict_indirect_from_direct, FailureDependence};
use harp_ecc::LinearBlockCode;
use harp_gf2::BitVec;
use harp_memsim::pattern::{DataPattern, PatternSchedule};
use harp_memsim::ReadObservation;

use crate::beep::craft_beep_pattern;
use crate::checkpoint::ProfilerState;
use crate::traits::Profiler;

/// HARP-Unaware: active profiling through the decode-bypass read path,
/// without knowledge of the on-die ECC parity-check matrix.
///
/// # Example
///
/// ```
/// use harp_profiler::{HarpUProfiler, Profiler};
/// use harp_memsim::pattern::DataPattern;
///
/// let profiler = HarpUProfiler::new(64, DataPattern::Random, 1);
/// assert!(profiler.uses_bypass_read());
/// ```
#[derive(Debug, Clone)]
pub struct HarpUProfiler {
    schedule: PatternSchedule,
    identified: BTreeSet<usize>,
}

impl HarpUProfiler {
    /// Creates a HARP-U profiler for a `data_bits`-bit dataword.
    pub fn new(data_bits: usize, pattern: DataPattern, seed: u64) -> Self {
        Self {
            schedule: PatternSchedule::new(pattern, data_bits, seed),
            identified: BTreeSet::new(),
        }
    }
}

impl Profiler for HarpUProfiler {
    fn name(&self) -> &'static str {
        "HARP-U"
    }

    fn dataword_for_round(&mut self, round: usize) -> BitVec {
        self.schedule.dataword_for_round(round)
    }

    fn observe_round(&mut self, _round: usize, observation: &ReadObservation) {
        // Raw data bits are read through the bypass path: every raw error in
        // the data region is visible directly, independent of what on-die ECC
        // would have done with it.
        self.identified.extend(observation.direct_errors());
    }

    fn identified(&self) -> &BTreeSet<usize> {
        &self.identified
    }

    fn uses_bypass_read(&self) -> bool {
        true
    }

    fn state(&self) -> ProfilerState {
        ProfilerState::with_identified(self.identified.clone())
    }

    fn restore(&mut self, state: &ProfilerState) {
        self.identified = state.identified.clone();
    }
}

/// HARP-Aware: HARP-U plus knowledge of the parity-check matrix, used to
/// precompute bits at risk of indirect error from the direct-error bits
/// identified so far (§6.3.1).
#[derive(Debug, Clone)]
pub struct HarpAProfiler<C: LinearBlockCode = harp_ecc::HammingCode> {
    code: C,
    inner: HarpUProfiler,
    predicted: BTreeSet<usize>,
}

impl<C: LinearBlockCode> HarpAProfiler<C> {
    /// Creates a HARP-A profiler for the given on-die ECC code.
    pub fn new(code: C, pattern: DataPattern, seed: u64) -> Self {
        let inner = HarpUProfiler::new(code.data_len(), pattern, seed);
        Self {
            code,
            inner,
            predicted: BTreeSet::new(),
        }
    }

    /// The dataword positions predicted (not yet observed) to be at risk of
    /// indirect error.
    pub fn predicted_indirect(&self) -> &BTreeSet<usize> {
        &self.predicted
    }

    fn refresh_predictions(&mut self) {
        let direct: Vec<usize> = self.inner.identified.iter().copied().collect();
        self.predicted =
            predict_indirect_from_direct(&self.code, &direct, FailureDependence::TrueCell);
        // Do not predict bits we have already identified as direct.
        for bit in &self.inner.identified {
            self.predicted.remove(bit);
        }
    }
}

impl<C: LinearBlockCode + Send> Profiler for HarpAProfiler<C> {
    fn name(&self) -> &'static str {
        "HARP-A"
    }

    fn dataword_for_round(&mut self, round: usize) -> BitVec {
        self.inner.dataword_for_round(round)
    }

    fn observe_round(&mut self, round: usize, observation: &ReadObservation) {
        let before = self.inner.identified.len();
        self.inner.observe_round(round, observation);
        if self.inner.identified.len() != before {
            self.refresh_predictions();
        }
    }

    fn identified(&self) -> &BTreeSet<usize> {
        self.inner.identified()
    }

    fn predicted(&self) -> BTreeSet<usize> {
        self.predicted.clone()
    }

    fn uses_bypass_read(&self) -> bool {
        true
    }

    fn state(&self) -> ProfilerState {
        ProfilerState::with_identified(self.inner.identified.clone())
    }

    fn restore(&mut self, state: &ProfilerState) {
        // Predictions are derived from the direct set; recompute rather than
        // store them so the checkpoint stays minimal and cannot go stale.
        self.inner.identified = state.identified.clone();
        self.refresh_predictions();
    }
}

/// HARP-A combined with BEEP (§7.3.1): once HARP-A has identified the direct
/// at-risk bits, BEEP-style data patterns are crafted to provoke the
/// remaining indirect errors (including those caused by at-risk parity bits,
/// which HARP-A cannot predict). Observed post-correction errors are added to
/// the identified set alongside the bypass observations.
#[derive(Debug, Clone)]
pub struct HarpABeepProfiler<C: LinearBlockCode = harp_ecc::HammingCode> {
    code: C,
    harp_a: HarpAProfiler<C>,
    observed_indirect: BTreeSet<usize>,
    union: BTreeSet<usize>,
    crafted_rounds: usize,
}

impl<C: LinearBlockCode + Clone> HarpABeepProfiler<C> {
    /// Creates a HARP-A+BEEP profiler for the given on-die ECC code.
    pub fn new(code: C, pattern: DataPattern, seed: u64) -> Self {
        Self {
            harp_a: HarpAProfiler::new(code.clone(), pattern, seed),
            code,
            observed_indirect: BTreeSet::new(),
            union: BTreeSet::new(),
            crafted_rounds: 0,
        }
    }
}

impl<C: LinearBlockCode> HarpABeepProfiler<C> {
    fn rebuild_union(&mut self) {
        self.union = self
            .harp_a
            .inner
            .identified
            .union(&self.observed_indirect)
            .copied()
            .collect();
    }
}

impl<C: LinearBlockCode + Send> Profiler for HarpABeepProfiler<C> {
    fn name(&self) -> &'static str {
        "HARP-A+BEEP"
    }

    fn dataword_for_round(&mut self, round: usize) -> BitVec {
        let known: Vec<usize> = self.harp_a.identified().iter().copied().collect();
        if known.len() >= 2 {
            // Alternate between BEEP-crafted patterns (to provoke indirect
            // errors from known direct bits) and standard patterns (to keep
            // finding direct bits that have not failed yet).
            if round.is_multiple_of(2) {
                self.crafted_rounds += 1;
                return craft_beep_pattern(&self.code, &known, self.crafted_rounds);
            }
        }
        self.harp_a.dataword_for_round(round)
    }

    fn observe_round(&mut self, round: usize, observation: &ReadObservation) {
        self.harp_a.observe_round(round, observation);
        // Unlike plain HARP, also watch the post-correction data so that
        // miscorrections provoked by the crafted patterns are recorded.
        let direct: BTreeSet<usize> = observation.direct_errors().into_iter().collect();
        for bit in observation.post_correction_errors() {
            if !direct.contains(&bit) {
                self.observed_indirect.insert(bit);
            }
        }
        self.rebuild_union();
    }

    fn identified(&self) -> &BTreeSet<usize> {
        &self.union
    }

    fn predicted(&self) -> BTreeSet<usize> {
        self.harp_a.predicted()
    }

    fn uses_bypass_read(&self) -> bool {
        true
    }

    fn state(&self) -> ProfilerState {
        ProfilerState {
            // The *direct* (bypass-observed) set, not the published union —
            // the union is derived state, rebuilt on restore.
            identified: self.harp_a.inner.identified.clone(),
            observed_indirect: self.observed_indirect.clone(),
            crafted_rounds: self.crafted_rounds,
        }
    }

    fn restore(&mut self, state: &ProfilerState) {
        self.harp_a.inner.identified = state.identified.clone();
        self.harp_a.refresh_predictions();
        self.observed_indirect = state.observed_indirect.clone();
        self.crafted_rounds = state.crafted_rounds;
        self.rebuild_union();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::{ErrorSpace, HammingCode};
    use harp_memsim::{FaultModel, MemoryChip};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_rounds(profiler: &mut dyn Profiler, chip: &mut MemoryChip, rounds: usize, seed: u64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for round in 0..rounds {
            let data = profiler.dataword_for_round(round);
            chip.write(0, &data);
            let obs = chip.read(0, &mut rng);
            profiler.observe_round(round, &obs);
        }
    }

    #[test]
    fn harp_u_identifies_single_corrected_errors_immediately() {
        let code = HammingCode::random(64, 8).unwrap();
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&[7], 1.0));
        let mut profiler = HarpUProfiler::new(64, DataPattern::Charged, 0);
        run_rounds(&mut profiler, &mut chip, 1, 1);
        // The error is corrected by on-die ECC, but the bypass path sees it.
        assert!(profiler.identified().contains(&7));
    }

    #[test]
    fn harp_u_achieves_full_direct_coverage_quickly() {
        let code = HammingCode::random(64, 9).unwrap();
        let at_risk = [2usize, 19, 44, 63];
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&at_risk, 0.5));
        let mut profiler = HarpUProfiler::new(64, DataPattern::Random, 3);
        run_rounds(&mut profiler, &mut chip, 32, 2);
        for bit in at_risk {
            assert!(profiler.identified().contains(&bit), "missed {bit}");
        }
    }

    #[test]
    fn harp_u_does_not_identify_indirect_errors() {
        // HARP-U bypasses the correction process, so miscorrection positions
        // never appear in its identified set (paper §7.3.1).
        let code = HammingCode::random(64, 10).unwrap();
        let at_risk = [1usize, 30];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let mut chip = MemoryChip::new(code, 1);
        chip.set_fault_model(0, FaultModel::uniform(&at_risk, 1.0));
        let mut profiler = HarpUProfiler::new(64, DataPattern::Charged, 0);
        run_rounds(&mut profiler, &mut chip, 16, 3);
        for bit in space.indirect_at_risk() {
            assert!(!profiler.identified().contains(bit));
        }
        assert_eq!(
            profiler.identified().iter().copied().collect::<Vec<_>>(),
            vec![1, 30]
        );
    }

    #[test]
    fn harp_a_predicts_indirect_errors_from_direct_bits() {
        let code = HammingCode::random(64, 11).unwrap();
        let at_risk = [4usize, 17, 52];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let mut chip = MemoryChip::new(code.clone(), 1);
        chip.set_fault_model(0, FaultModel::uniform(&at_risk, 1.0));
        let mut profiler = HarpAProfiler::new(code, DataPattern::Charged, 0);
        run_rounds(&mut profiler, &mut chip, 4, 4);
        // All direct bits identified -> the prediction equals the ground
        // truth indirect set (all at-risk bits are data bits here).
        assert_eq!(&profiler.predicted(), space.indirect_at_risk());
        assert_eq!(profiler.predicted_indirect(), space.indirect_at_risk());
        // Known-at-risk covers everything.
        let known = profiler.known_at_risk();
        assert!(space.post_correction_at_risk().is_subset(&known));
    }

    #[test]
    fn harp_a_cannot_predict_parity_driven_indirect_errors() {
        let code = HammingCode::random(64, 12).unwrap();
        // One data bit and one parity bit at risk.
        let at_risk = [5usize, 66];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let mut chip = MemoryChip::new(code.clone(), 1);
        chip.set_fault_model(0, FaultModel::uniform(&at_risk, 1.0));
        let mut profiler = HarpAProfiler::new(code, DataPattern::Charged, 0);
        run_rounds(&mut profiler, &mut chip, 8, 5);
        // The single direct bit is found...
        assert!(profiler.identified().contains(&5));
        // ...but any indirect error provoked by the parity bit is not
        // predictable from the direct set alone.
        for bit in &profiler.predicted() {
            assert!(space.indirect_at_risk().contains(bit));
        }
    }

    #[test]
    fn harp_a_identified_matches_harp_u() {
        // The paper notes HARP-A and HARP-U have identical coverage of bits
        // at risk of direct error.
        let code = HammingCode::random(64, 13).unwrap();
        let at_risk = [3usize, 9, 27, 55];
        let mut chip_u = MemoryChip::new(code.clone(), 1);
        chip_u.set_fault_model(0, FaultModel::uniform(&at_risk, 0.75));
        let mut chip_a = chip_u.clone();
        let mut harp_u = HarpUProfiler::new(64, DataPattern::Random, 17);
        let mut harp_a = HarpAProfiler::new(code, DataPattern::Random, 17);
        run_rounds(&mut harp_u, &mut chip_u, 32, 6);
        run_rounds(&mut harp_a, &mut chip_a, 32, 6);
        assert_eq!(harp_u.identified(), harp_a.identified());
    }

    #[test]
    fn harp_a_beep_observes_indirect_errors_it_provokes() {
        let code = HammingCode::random(64, 14).unwrap();
        let at_risk = [6usize, 21, 47];
        let space = ErrorSpace::enumerate(&code, &at_risk, FailureDependence::TrueCell);
        let mut chip = MemoryChip::new(code.clone(), 1);
        chip.set_fault_model(0, FaultModel::uniform(&at_risk, 1.0));
        let mut profiler = HarpABeepProfiler::new(code, DataPattern::Random, 23);
        run_rounds(&mut profiler, &mut chip, 64, 7);
        // Direct bits are all found (bypass path).
        for bit in at_risk {
            assert!(profiler.identified().contains(&bit), "missed direct {bit}");
        }
        // Anything else it reports must be genuinely at risk.
        for bit in profiler.identified() {
            assert!(
                space.post_correction_at_risk().contains(bit) || at_risk.contains(bit),
                "spurious identification of bit {bit}"
            );
        }
        assert_eq!(profiler.name(), "HARP-A+BEEP");
    }
}
