//! The per-word profiling campaign driver.
//!
//! The paper's Monte-Carlo evaluation treats each ECC word independently: a
//! word has a code, a fault model (its at-risk bits), and each profiler is
//! run against it for a fixed number of rounds. [`ProfilingCampaign`] owns
//! that per-word configuration and produces a [`CampaignResult`] containing a
//! per-round snapshot of what the profiler knew, which the evaluation crates
//! score against the exact [`ErrorSpace`] ground truth.

use std::collections::BTreeSet;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use harp_ecc::analysis::FailureDependence;
use harp_ecc::{ErrorSpace, LinearBlockCode};
use harp_memsim::pattern::DataPattern;
use harp_memsim::{BurstScratch, FaultModel, MemoryChip};

use crate::traits::{Profiler, ProfilerKind};

/// Salt folded into a word's campaign seed to derive its fault-injection RNG
/// stream. Shared by the scalar [`ProfilingCampaign::run_profiler`] reference
/// path and the cell-batched [`crate::batch::CampaignBatch`], so both derive
/// the *same* per-word stream — the invariant the differential equivalence
/// suite locks down.
pub(crate) const CAMPAIGN_RNG_SALT: u64 = 0x5EED_CAFE_F00D;

/// What a profiler knew at the end of one profiling round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundSnapshot {
    /// The 0-based round index.
    pub round: usize,
    /// Bits identified (observed to fail, or read raw as failing) so far.
    pub identified: BTreeSet<usize>,
    /// Bits additionally predicted to be at risk (HARP-A only).
    pub predicted: BTreeSet<usize>,
}

impl RoundSnapshot {
    /// Union of identified and predicted bits.
    pub fn known(&self) -> BTreeSet<usize> {
        self.identified.union(&self.predicted).copied().collect()
    }
}

/// The result of running one profiler against one ECC word.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The profiler's display name.
    pub profiler: String,
    /// One snapshot per completed round, in order.
    pub snapshots: Vec<RoundSnapshot>,
}

impl CampaignResult {
    /// Number of rounds executed.
    pub fn rounds(&self) -> usize {
        self.snapshots.len()
    }

    /// The snapshot after round `round`.
    ///
    /// # Panics
    ///
    /// Panics if `round >= rounds()`.
    pub fn snapshot(&self, round: usize) -> &RoundSnapshot {
        &self.snapshots[round]
    }

    /// The identified set after the final round (empty set if no rounds ran).
    pub fn final_identified(&self) -> BTreeSet<usize> {
        self.snapshots
            .last()
            .map(|s| s.identified.clone())
            .unwrap_or_default()
    }

    /// The union of identified and predicted bits after the final round.
    pub fn final_known(&self) -> BTreeSet<usize> {
        self.snapshots
            .last()
            .map(RoundSnapshot::known)
            .unwrap_or_default()
    }
}

/// The per-word profiling configuration: a code, a fault model, and the data
/// pattern family / seed shared by every profiler evaluated on this word.
#[derive(Debug, Clone)]
pub struct ProfilingCampaign<C: LinearBlockCode = harp_ecc::HammingCode> {
    code: C,
    faults: FaultModel,
    pattern: DataPattern,
    seed: u64,
}

impl<C: LinearBlockCode + Clone + Send + 'static> ProfilingCampaign<C> {
    /// Creates a campaign for one ECC word.
    pub fn new(code: C, faults: FaultModel, pattern: DataPattern, seed: u64) -> Self {
        Self {
            code,
            faults,
            pattern,
            seed,
        }
    }

    /// The on-die ECC code of this word.
    pub fn code(&self) -> &C {
        &self.code
    }

    /// The fault model of this word.
    pub fn faults(&self) -> &FaultModel {
        &self.faults
    }

    /// The data-pattern family used for standard testing rounds.
    pub fn pattern(&self) -> DataPattern {
        self.pattern
    }

    /// The campaign seed all per-word random streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The exact ground truth for this word: every bit at risk of
    /// post-correction error, split into direct and indirect sets.
    pub fn error_space(&self) -> ErrorSpace {
        ErrorSpace::enumerate(
            &self.code,
            &self.faults.at_risk_positions(),
            self.faults.dependence(),
        )
    }

    /// Runs a freshly instantiated profiler of the given kind for `rounds`
    /// rounds.
    pub fn run(&self, kind: ProfilerKind, rounds: usize) -> CampaignResult {
        let mut profiler = kind.instantiate(&self.code, self.pattern, self.seed);
        self.run_profiler(profiler.as_mut(), rounds)
    }

    /// Runs an existing profiler for `rounds` rounds.
    ///
    /// All profilers run against the same word see the same per-round random
    /// draws (the RNG is re-seeded from the campaign seed), preserving the
    /// paper's fairness requirement (§7.1.2) as closely as data-dependent
    /// errors allow.
    ///
    /// Each round's access goes through the chip's bit-sliced burst read
    /// path (a one-word scrub pass whose [`BurstScratch`] persists across
    /// rounds), so the whole campaign reuses one set of decode buffers
    /// instead of allocating a fresh observation per round, and clean rounds
    /// short-circuit through the kernel's nonzero-syndrome mask. The RNG
    /// stream — and therefore every snapshot — is identical to the scalar
    /// `MemoryChip::read` loop this replaces.
    ///
    /// This per-word path is the **scalar reference implementation** for the
    /// cell-batched [`crate::batch::CampaignBatch`]: the differential suite
    /// in `tests/campaign_equivalence.rs` asserts that batching a word with
    /// the rest of its sweep cell never changes a single snapshot.
    pub fn run_profiler(&self, profiler: &mut dyn Profiler, rounds: usize) -> CampaignResult {
        let mut chip = MemoryChip::new(self.code.clone(), 1);
        chip.set_fault_model(0, self.faults.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ CAMPAIGN_RNG_SALT);
        let mut scratch = BurstScratch::new();
        let mut snapshots = Vec::with_capacity(rounds);
        for round in 0..rounds {
            let data = profiler.dataword_for_round(round);
            chip.write(0, &data);
            let observation = &chip.read_burst(0..1, &mut rng, &mut scratch)[0];
            profiler.observe_round(round, observation);
            snapshots.push(RoundSnapshot {
                round,
                identified: profiler.identified().clone(),
                predicted: profiler.predicted(),
            });
        }
        CampaignResult {
            profiler: profiler.name().to_owned(),
            snapshots,
        }
    }

    /// Convenience: the dependence model of this word's cells.
    pub fn dependence(&self) -> FailureDependence {
        self.faults.dependence()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use harp_ecc::HammingCode;

    fn campaign(at_risk: &[usize], probability: f64, seed: u64) -> ProfilingCampaign {
        let code = HammingCode::random(64, seed).unwrap();
        ProfilingCampaign::new(
            code,
            FaultModel::uniform(at_risk, probability),
            DataPattern::Random,
            seed,
        )
    }

    #[test]
    fn snapshots_are_monotonic_and_one_per_round() {
        let campaign = campaign(&[2, 9, 44], 0.5, 3);
        let result = campaign.run(ProfilerKind::HarpU, 16);
        assert_eq!(result.rounds(), 16);
        assert_eq!(result.profiler, "HARP-U");
        for window in result.snapshots.windows(2) {
            assert!(window[0].identified.is_subset(&window[1].identified));
            assert_eq!(window[1].round, window[0].round + 1);
        }
        assert_eq!(result.snapshot(15).identified, result.final_identified());
    }

    #[test]
    fn harp_u_reaches_full_direct_coverage_and_naive_lags() {
        let campaign = campaign(&[2, 9, 44], 0.5, 5);
        let truth = campaign.error_space();
        let harp = campaign.run(ProfilerKind::HarpU, 8);
        let naive = campaign.run(ProfilerKind::Naive, 8);
        let direct = truth.direct_at_risk();
        let harp_hits = harp.final_identified().intersection(direct).count();
        let naive_hits = naive.final_identified().intersection(direct).count();
        assert_eq!(harp_hits, direct.len(), "HARP-U must find all direct bits");
        assert!(naive_hits <= harp_hits);
    }

    #[test]
    fn campaign_runs_are_deterministic() {
        let campaign = campaign(&[1, 7, 33, 60], 0.25, 11);
        let a = campaign.run(ProfilerKind::Naive, 32);
        let b = campaign.run(ProfilerKind::Naive, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn identified_bits_are_always_genuinely_at_risk() {
        let campaign = campaign(&[4, 18, 52, 63], 0.75, 13);
        let truth = campaign.error_space();
        for kind in ProfilerKind::ALL {
            let result = campaign.run(kind, 48);
            for bit in result.final_identified() {
                assert!(
                    truth.post_correction_at_risk().contains(&bit)
                        || truth.direct_at_risk().contains(&bit),
                    "{kind}: bit {bit} is not at risk"
                );
            }
        }
    }

    #[test]
    fn error_space_and_accessors_expose_configuration() {
        let campaign = campaign(&[3, 70], 1.0, 17);
        assert_eq!(campaign.pattern(), DataPattern::Random);
        assert_eq!(campaign.dependence(), FailureDependence::TrueCell);
        assert_eq!(campaign.faults().at_risk_positions(), vec![3, 70]);
        let space = campaign.error_space();
        assert!(space.direct_at_risk().contains(&3));
        assert_eq!(campaign.code().data_len(), 64);
    }

    #[test]
    fn empty_campaign_result_behaves() {
        let campaign = campaign(&[1], 1.0, 19);
        let result = campaign.run(ProfilerKind::Naive, 0);
        assert_eq!(result.rounds(), 0);
        assert!(result.final_identified().is_empty());
        assert!(result.final_known().is_empty());
    }
}
